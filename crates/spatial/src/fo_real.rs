//! The spatial query language `FO(R, <)`.
//!
//! First-order logic over real-valued variables, with one binary predicate
//! per region name (membership of the point `(x, y)` in the region) and the
//! order `<` on coordinates. This is the constraint-database query language
//! the paper takes as the source language of all translations.
//!
//! The crate only *represents* `FO(R,<)` queries (and measures them: size,
//! quantifier depth); evaluation goes through either
//!
//! * the point-based language [`crate::fo_point::PointFormula`] and the
//!   sample-point evaluator (direct strategy), or
//! * the invariant-side translations of the `topo-translate` crate.

use crate::schema::{RegionId, Schema};
use std::fmt;

/// A real-valued variable, identified by an index.
pub type RealVar = u32;

/// An `FO(R, <)` formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RealFormula {
    /// `R(x, y)`: the point whose coordinates are the values of `x` and `y`
    /// belongs to region `R`.
    Region {
        /// The region name.
        region: RegionId,
        /// Variable holding the x coordinate.
        x: RealVar,
        /// Variable holding the y coordinate.
        y: RealVar,
    },
    /// `x < y` on the reals.
    Less(RealVar, RealVar),
    /// `x = y` on the reals.
    Eq(RealVar, RealVar),
    /// Negation.
    Not(Box<RealFormula>),
    /// Conjunction of all sub-formulas (true when empty).
    And(Vec<RealFormula>),
    /// Disjunction of all sub-formulas (false when empty).
    Or(Vec<RealFormula>),
    /// Existential quantification over a real variable.
    Exists(RealVar, Box<RealFormula>),
    /// Universal quantification over a real variable.
    Forall(RealVar, Box<RealFormula>),
}

impl RealFormula {
    /// Quantifier depth, as defined in the paper's preliminaries.
    pub fn quantifier_depth(&self) -> usize {
        match self {
            RealFormula::Region { .. } | RealFormula::Less(..) | RealFormula::Eq(..) => 0,
            RealFormula::Not(f) => f.quantifier_depth(),
            RealFormula::And(fs) | RealFormula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_depth()).max().unwrap_or(0)
            }
            RealFormula::Exists(_, f) | RealFormula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }

    /// Size of the formula (number of AST nodes), the measure used by the
    /// linear-time translation results (Theorems 4.1 and 4.2).
    pub fn size(&self) -> usize {
        match self {
            RealFormula::Region { .. } | RealFormula::Less(..) | RealFormula::Eq(..) => 1,
            RealFormula::Not(f) => 1 + f.size(),
            RealFormula::And(fs) | RealFormula::Or(fs) => {
                1 + fs.iter().map(|f| f.size()).sum::<usize>()
            }
            RealFormula::Exists(_, f) | RealFormula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> Vec<RealVar> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<RealVar>, out: &mut Vec<RealVar>) {
        match self {
            RealFormula::Region { x, y, .. } => {
                for v in [x, y] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            RealFormula::Less(a, b) | RealFormula::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            RealFormula::Not(f) => f.collect_free(bound, out),
            RealFormula::And(fs) | RealFormula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            RealFormula::Exists(v, f) | RealFormula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// True iff the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Renders the formula with region names taken from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> RealFormulaDisplay<'a> {
        RealFormulaDisplay { formula: self, schema }
    }
}

/// Helper implementing [`fmt::Display`] for a formula with a schema.
pub struct RealFormulaDisplay<'a> {
    formula: &'a RealFormula,
    schema: &'a Schema,
}

impl fmt::Display for RealFormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(formula: &RealFormula, schema: &Schema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match formula {
                RealFormula::Region { region, x, y } => {
                    write!(f, "{}(r{}, r{})", schema.name(*region), x, y)
                }
                RealFormula::Less(a, b) => write!(f, "r{a} < r{b}"),
                RealFormula::Eq(a, b) => write!(f, "r{a} = r{b}"),
                RealFormula::Not(inner) => {
                    write!(f, "¬(")?;
                    go(inner, schema, f)?;
                    write!(f, ")")
                }
                RealFormula::And(fs) => {
                    write!(f, "(")?;
                    for (i, inner) in fs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        go(inner, schema, f)?;
                    }
                    write!(f, ")")
                }
                RealFormula::Or(fs) => {
                    write!(f, "(")?;
                    for (i, inner) in fs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∨ ")?;
                        }
                        go(inner, schema, f)?;
                    }
                    write!(f, ")")
                }
                RealFormula::Exists(v, inner) => {
                    write!(f, "∃r{v} ")?;
                    go(inner, schema, f)
                }
                RealFormula::Forall(v, inner) => {
                    write!(f, "∀r{v} ")?;
                    go(inner, schema, f)
                }
            }
        }
        go(self.formula, self.schema, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RealFormula {
        // ∀x ∀y (P(x,y) → Q(x,y)), written without implication sugar.
        RealFormula::Forall(
            0,
            Box::new(RealFormula::Forall(
                1,
                Box::new(RealFormula::Or(vec![
                    RealFormula::Not(Box::new(RealFormula::Region { region: 0, x: 0, y: 1 })),
                    RealFormula::Region { region: 1, x: 0, y: 1 },
                ])),
            )),
        )
    }

    #[test]
    fn depth_and_size() {
        let f = sample();
        assert_eq!(f.quantifier_depth(), 2);
        assert_eq!(f.size(), 6);
        assert!(f.is_sentence());
    }

    #[test]
    fn free_vars_tracking() {
        let open = RealFormula::And(vec![
            RealFormula::Less(0, 1),
            RealFormula::Exists(1, Box::new(RealFormula::Eq(1, 2))),
        ]);
        assert_eq!(open.free_vars(), vec![0, 1, 2]);
        assert!(!open.is_sentence());
    }

    #[test]
    fn display_uses_region_names() {
        let schema = Schema::from_names(["P", "Q"]);
        let f = sample();
        let rendered = format!("{}", f.display(&schema));
        assert!(rendered.contains("P(r0, r1)"));
        assert!(rendered.contains("Q(r0, r1)"));
        assert!(rendered.starts_with("∀r0"));
    }
}
