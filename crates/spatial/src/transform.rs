//! Plane homeomorphisms applied to spatial instances.
//!
//! Topological properties are exactly the properties invariant under
//! homeomorphisms of the plane, so the test suites use these transformations
//! heavily: applying any of them to an instance must leave the topological
//! invariant unchanged up to isomorphism.
//!
//! Only affine homeomorphisms are provided (translations, positive scalings,
//! rotations by 90 degrees, axis reflections, shears); they are exact over the
//! rationals and already cover both orientation-preserving and
//! orientation-reversing cases.

use crate::instance::SpatialInstance;
use crate::region::Region;
use topo_geometry::{Point, Rational};

/// An exact affine transformation `p -> A p + b` of the plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineMap {
    /// Matrix entries `[[a, b], [c, d]]`.
    pub a: Rational,
    /// Matrix entry (0,1).
    pub b: Rational,
    /// Matrix entry (1,0).
    pub c: Rational,
    /// Matrix entry (1,1).
    pub d: Rational,
    /// Translation in x.
    pub tx: Rational,
    /// Translation in y.
    pub ty: Rational,
}

impl AffineMap {
    /// The identity map.
    pub fn identity() -> Self {
        AffineMap {
            a: Rational::ONE,
            b: Rational::ZERO,
            c: Rational::ZERO,
            d: Rational::ONE,
            tx: Rational::ZERO,
            ty: Rational::ZERO,
        }
    }

    /// Translation by `(dx, dy)`.
    pub fn translation(dx: i64, dy: i64) -> Self {
        AffineMap {
            tx: Rational::from_int(dx),
            ty: Rational::from_int(dy),
            ..AffineMap::identity()
        }
    }

    /// Uniform scaling by a positive rational factor.
    ///
    /// # Panics
    /// Panics if the factor is not strictly positive (a non-positive scaling
    /// is not a homeomorphism or flips orientation unintentionally).
    pub fn scaling(factor: Rational) -> Self {
        assert!(factor.signum() > 0, "scaling factor must be positive");
        AffineMap { a: factor, d: factor, ..AffineMap::identity() }
    }

    /// Rotation by 90 degrees counterclockwise around the origin.
    pub fn rotation90() -> Self {
        AffineMap {
            a: Rational::ZERO,
            b: -Rational::ONE,
            c: Rational::ONE,
            d: Rational::ZERO,
            ..AffineMap::identity()
        }
    }

    /// Reflection across the y axis (orientation-reversing).
    pub fn reflection_x() -> Self {
        AffineMap { a: -Rational::ONE, ..AffineMap::identity() }
    }

    /// Shear `x -> x + k·y`.
    pub fn shear_x(k: Rational) -> Self {
        AffineMap { b: k, ..AffineMap::identity() }
    }

    /// True iff the map is invertible (a plane homeomorphism).
    pub fn is_homeomorphism(&self) -> bool {
        !(self.a * self.d - self.b * self.c).is_zero()
    }

    /// True iff the map preserves orientation (positive determinant).
    pub fn preserves_orientation(&self) -> bool {
        (self.a * self.d - self.b * self.c).signum() > 0
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        AffineMap {
            a: self.a * other.a + self.b * other.c,
            b: self.a * other.b + self.b * other.d,
            c: self.c * other.a + self.d * other.c,
            d: self.c * other.b + self.d * other.d,
            tx: self.a * other.tx + self.b * other.ty + self.tx,
            ty: self.c * other.tx + self.d * other.ty + self.ty,
        }
    }

    /// Applies the map to a point.
    pub fn apply_point(&self, p: &Point) -> Point {
        Point::new(self.a * p.x + self.b * p.y + self.tx, self.c * p.x + self.d * p.y + self.ty)
    }

    /// Applies the map to a region.
    pub fn apply_region(&self, region: &Region) -> Region {
        Region {
            rings: region
                .rings
                .iter()
                .map(|ring| ring.iter().map(|p| self.apply_point(p)).collect())
                .collect(),
            polylines: region
                .polylines
                .iter()
                .map(|chain| chain.iter().map(|p| self.apply_point(p)).collect())
                .collect(),
            points: region.points.iter().map(|p| self.apply_point(p)).collect(),
        }
    }

    /// Applies the map to every region of an instance.
    ///
    /// # Panics
    /// Panics if the map is not a homeomorphism.
    pub fn apply_instance(&self, instance: &SpatialInstance) -> SpatialInstance {
        assert!(self.is_homeomorphism(), "affine map is singular");
        let mut out = SpatialInstance::new(instance.schema().clone());
        for (id, region) in instance.iter() {
            out.set_region(id, self.apply_region(region));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn identity_and_translation() {
        let p = Point::from_ints(3, 4);
        assert_eq!(AffineMap::identity().apply_point(&p), p);
        assert_eq!(AffineMap::translation(1, -2).apply_point(&p), Point::from_ints(4, 2));
    }

    #[test]
    fn rotation_and_reflection() {
        let p = Point::from_ints(1, 0);
        assert_eq!(AffineMap::rotation90().apply_point(&p), Point::from_ints(0, 1));
        assert_eq!(AffineMap::reflection_x().apply_point(&p), Point::from_ints(-1, 0));
        assert!(AffineMap::rotation90().preserves_orientation());
        assert!(!AffineMap::reflection_x().preserves_orientation());
    }

    #[test]
    fn composition_matches_sequential_application() {
        let m1 = AffineMap::rotation90();
        let m2 = AffineMap::translation(5, 7);
        let composed = m2.compose(&m1);
        let p = Point::from_ints(2, 3);
        assert_eq!(composed.apply_point(&p), m2.apply_point(&m1.apply_point(&p)));
    }

    #[test]
    fn instance_transformation_preserves_membership() {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        let map = AffineMap::translation(100, 100);
        let moved = map.apply_instance(&instance);
        assert!(moved.region(0).contains_point(&Point::from_ints(105, 105)));
        assert!(!moved.region(0).contains_point(&Point::from_ints(5, 5)));
    }

    #[test]
    fn homeomorphism_detection() {
        assert!(AffineMap::scaling(Rational::new(3, 2)).is_homeomorphism());
        let singular = AffineMap { a: Rational::ZERO, d: Rational::ZERO, ..AffineMap::identity() };
        assert!(!singular.is_homeomorphism());
    }

    #[test]
    #[should_panic]
    fn negative_scaling_panics() {
        let _ = AffineMap::scaling(Rational::from_int(-1));
    }
}
