//! Spatial instances: assignments of regions to the names of a schema.

use crate::region::Region;
use crate::schema::{RegionId, Schema};
use topo_arrangement::ArrangementInput;

/// What kind of geometric piece a source tag refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// A segment of a polygon ring (contributes to the region's 2-D boundary,
    /// with even–odd multiplicity).
    RingBoundary,
    /// A segment of a polyline (a 1-D piece of the region).
    Polyline,
    /// An isolated point of the region.
    IsolatedPoint,
}

/// A source tag carried through the arrangement: which region contributed the
/// piece of geometry and as what kind of piece.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceTag {
    /// The region that contributed the geometry.
    pub region: RegionId,
    /// The kind of contribution.
    pub kind: SourceKind,
}

impl SourceTag {
    /// Packs the tag into the `u32` the arrangement crate carries around.
    pub fn encode(&self) -> u32 {
        let kind = match self.kind {
            SourceKind::RingBoundary => 0u32,
            SourceKind::Polyline => 1,
            SourceKind::IsolatedPoint => 2,
        };
        (self.region as u32) * 3 + kind
    }

    /// Unpacks a tag produced by [`SourceTag::encode`].
    pub fn decode(raw: u32) -> Self {
        let kind = match raw % 3 {
            0 => SourceKind::RingBoundary,
            1 => SourceKind::Polyline,
            _ => SourceKind::IsolatedPoint,
        };
        SourceTag { region: (raw / 3) as RegionId, kind }
    }
}

/// A spatial database instance over a schema: one region per region name.
#[derive(Clone, Debug, Default)]
pub struct SpatialInstance {
    schema: Schema,
    regions: Vec<Region>,
}

impl SpatialInstance {
    /// Creates an instance with empty regions for every name of the schema.
    pub fn new(schema: Schema) -> Self {
        let regions = vec![Region::new(); schema.len()];
        SpatialInstance { schema, regions }
    }

    /// Builds an instance from `(name, region)` pairs.
    pub fn from_regions<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Region)>,
        S: Into<String>,
    {
        let mut schema = Schema::new();
        let mut regions = Vec::new();
        for (name, region) in pairs {
            schema.add(name);
            regions.push(region);
        }
        SpatialInstance { schema, regions }
    }

    /// The schema of the instance.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The region assigned to `id`.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id]
    }

    /// The region assigned to `name`, if the name exists.
    pub fn region_by_name(&self, name: &str) -> Option<&Region> {
        self.schema.id(name).map(|id| &self.regions[id])
    }

    /// Mutable access to the region assigned to `id`.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id]
    }

    /// Replaces the region assigned to `id`.
    pub fn set_region(&mut self, id: RegionId, region: Region) {
        self.regions[id] = region;
    }

    /// Iterates over `(id, region)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions.iter().enumerate()
    }

    /// Total number of points used to describe the instance (the paper's
    /// "raw data" size statistic).
    pub fn point_count(&self) -> usize {
        self.regions.iter().map(|r| r.point_count()).sum()
    }

    /// Total number of polygon rings plus polylines (the paper's "polygons"
    /// statistic).
    pub fn polygon_count(&self) -> usize {
        self.regions.iter().map(|r| r.rings.len() + r.polylines.len()).sum()
    }

    /// Approximate storage footprint of the raw representation, using the
    /// paper's convention of a fixed number of bytes per stored point.
    pub fn raw_bytes(&self, bytes_per_point: usize) -> usize {
        self.point_count() * bytes_per_point
    }

    /// Lowers the instance to arrangement input, tagging every piece of
    /// geometry with its originating region and kind.
    pub fn to_arrangement_input(&self) -> ArrangementInput {
        let mut input = ArrangementInput::new();
        for (id, region) in self.iter() {
            let ring_tag = SourceTag { region: id, kind: SourceKind::RingBoundary }.encode();
            for s in region.ring_segments() {
                input.add_segment(s, ring_tag);
            }
            let line_tag = SourceTag { region: id, kind: SourceKind::Polyline }.encode();
            for s in region.polyline_segments() {
                input.add_segment(s, line_tag);
            }
            let point_tag = SourceTag { region: id, kind: SourceKind::IsolatedPoint }.encode();
            for p in &region.points {
                input.add_point(*p, point_tag);
            }
        }
        input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_geometry::Point;

    #[test]
    fn source_tag_roundtrip() {
        for region in 0..5 {
            for kind in [SourceKind::RingBoundary, SourceKind::Polyline, SourceKind::IsolatedPoint]
            {
                let tag = SourceTag { region, kind };
                assert_eq!(SourceTag::decode(tag.encode()), tag);
            }
        }
    }

    #[test]
    fn build_and_query_instance() {
        let mut instance = SpatialInstance::new(Schema::from_names(["P", "Q"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        instance.region_mut(1).add_point(Point::from_ints(5, 5));
        assert_eq!(instance.point_count(), 5);
        assert_eq!(instance.polygon_count(), 1);
        assert_eq!(instance.raw_bytes(20), 100);
        assert!(instance.region_by_name("P").unwrap().contains_point(&Point::from_ints(1, 1)));
        assert!(instance.region_by_name("R").is_none());
    }

    #[test]
    fn arrangement_input_tags() {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        let mut region = Region::rectangle(0, 0, 4, 4);
        region.add_polyline(vec![Point::from_ints(10, 0), Point::from_ints(12, 0)]);
        region.add_point(Point::from_ints(20, 20));
        instance.set_region(0, region);
        let input = instance.to_arrangement_input();
        assert_eq!(input.segments.len(), 5);
        assert_eq!(input.points.len(), 1);
        let kinds: Vec<SourceKind> =
            input.segments.iter().map(|(_, tag)| SourceTag::decode(*tag).kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == SourceKind::RingBoundary).count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == SourceKind::Polyline).count(), 1);
        assert_eq!(SourceTag::decode(input.points[0].1).kind, SourceKind::IsolatedPoint);
    }

    #[test]
    fn from_regions_builder() {
        let instance = SpatialInstance::from_regions([
            ("lake", Region::rectangle(0, 0, 2, 2)),
            ("forest", Region::rectangle(5, 5, 9, 9)),
        ]);
        assert_eq!(instance.schema().len(), 2);
        assert_eq!(instance.schema().name(1), "forest");
    }
}
