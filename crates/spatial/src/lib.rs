//! Spatial database model.
//!
//! This crate implements the spatial side of Segoufin–Vianu: schemas of
//! region names, compact *semi-linear* regions of the plane (the linear
//! stand-in for the paper's semi-algebraic regions — see DESIGN.md), spatial
//! instances, the two first-order spatial query languages of the paper
//! (`FO(R,<)` over real coordinates and `FO(P,<x,<y)` over points), and a
//! direct evaluator for topological `FO(P,<x,<y)` sentences that works on the
//! arrangement's sample points.
//!
//! A [`Region`] is a union of three kinds of pieces, matching the paper's
//! closed regions of dimension 0, 1 and 2:
//!
//! * polygon *rings* interpreted with even–odd semantics (dimension 2, with
//!   holes expressed as nested rings),
//! * *polylines* (dimension 1), and
//! * isolated *points* (dimension 0).
//!
//! A [`SpatialInstance`] assigns a region to every name of a [`Schema`] and
//! can be lowered to an [`topo_arrangement::ArrangementInput`] with source
//! tags that remember which region contributed which piece of geometry — the
//! topological invariant construction consumes exactly that.

pub mod direct_eval;
pub mod fo_point;
pub mod fo_real;
pub mod instance;
pub mod region;
pub mod schema;
pub mod transform;

pub use direct_eval::{sample_points, DirectEvaluator, SamplePointStructure};
pub use fo_point::PointFormula;
pub use fo_real::RealFormula;
pub use instance::{SourceKind, SourceTag, SpatialInstance};
pub use region::Region;
pub use schema::{RegionId, Schema};
