//! Compact semi-linear regions of the plane.

use topo_geometry::{point_on_segment, BBox, Point, Segment};

/// A compact semi-linear region: a finite union of polygon rings (interpreted
/// with even–odd semantics, so nested rings are holes), polylines and isolated
/// points, all closed.
///
/// This is the linear counterpart of the paper's compact semi-algebraic
/// regions; by Theorem 2.2 every semi-algebraic instance is topologically
/// equivalent to a linear one, so the invariant machinery is exercised in full
/// generality.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Region {
    /// Polygon rings. Each ring is a closed polygon given by its corner
    /// points (the closing segment back to the first point is implicit).
    /// Even–odd semantics: a point is in the 2-D part of the region iff a ray
    /// from it crosses the rings an odd number of times.
    pub rings: Vec<Vec<Point>>,
    /// Polylines: one-dimensional pieces given by their vertex chains.
    pub polylines: Vec<Vec<Point>>,
    /// Isolated points.
    pub points: Vec<Point>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// A region consisting of a single polygon ring.
    ///
    /// # Panics
    /// Panics if the ring has fewer than three points.
    pub fn polygon(ring: Vec<Point>) -> Self {
        let mut r = Region::new();
        r.add_ring(ring);
        r
    }

    /// A rectangle with integer corners `(x0, y0)` and `(x1, y1)`.
    pub fn rectangle(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        assert!(x0 < x1 && y0 < y1, "rectangle corners must be ordered");
        Region::polygon(vec![
            Point::from_ints(x0, y0),
            Point::from_ints(x1, y0),
            Point::from_ints(x1, y1),
            Point::from_ints(x0, y1),
        ])
    }

    /// A region consisting of a single polyline.
    ///
    /// # Panics
    /// Panics if the polyline has fewer than two points.
    pub fn polyline(chain: Vec<Point>) -> Self {
        let mut r = Region::new();
        r.add_polyline(chain);
        r
    }

    /// A region consisting of isolated points.
    pub fn point_set(points: Vec<Point>) -> Self {
        Region { rings: Vec::new(), polylines: Vec::new(), points }
    }

    /// Adds a polygon ring.
    ///
    /// # Panics
    /// Panics if the ring has fewer than three points or repeats consecutive
    /// points.
    pub fn add_ring(&mut self, ring: Vec<Point>) {
        assert!(ring.len() >= 3, "polygon ring needs at least three points");
        for i in 0..ring.len() {
            assert_ne!(ring[i], ring[(i + 1) % ring.len()], "repeated consecutive ring point");
        }
        self.rings.push(ring);
    }

    /// Adds a polyline.
    ///
    /// # Panics
    /// Panics if the polyline has fewer than two points or repeats consecutive
    /// points.
    pub fn add_polyline(&mut self, chain: Vec<Point>) {
        assert!(chain.len() >= 2, "polyline needs at least two points");
        for pair in chain.windows(2) {
            assert_ne!(pair[0], pair[1], "repeated consecutive polyline point");
        }
        self.polylines.push(chain);
    }

    /// Adds an isolated point.
    pub fn add_point(&mut self, p: Point) {
        self.points.push(p);
    }

    /// True iff the region has no geometry at all.
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty() && self.polylines.is_empty() && self.points.is_empty()
    }

    /// All boundary segments of the polygon rings.
    pub fn ring_segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        for ring in &self.rings {
            for i in 0..ring.len() {
                out.push(Segment::new(ring[i], ring[(i + 1) % ring.len()]));
            }
        }
        out
    }

    /// All segments of the polylines.
    pub fn polyline_segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        for chain in &self.polylines {
            for pair in chain.windows(2) {
                out.push(Segment::new(pair[0], pair[1]));
            }
        }
        out
    }

    /// Total number of points used to describe the region (the "raw size"
    /// statistic of the paper's practical-considerations section).
    pub fn point_count(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum::<usize>()
            + self.polylines.iter().map(|c| c.len()).sum::<usize>()
            + self.points.len()
    }

    /// Bounding box of the region, if it has any geometry.
    pub fn bbox(&self) -> Option<BBox> {
        let mut all: Vec<Point> = Vec::new();
        for ring in &self.rings {
            all.extend_from_slice(ring);
        }
        for chain in &self.polylines {
            all.extend_from_slice(chain);
        }
        all.extend_from_slice(&self.points);
        if all.is_empty() {
            None
        } else {
            Some(BBox::from_points(&all))
        }
    }

    /// True iff `p` lies in the closed region (2-D part, boundary, polylines
    /// or isolated points).
    pub fn contains_point(&self, p: &Point) -> bool {
        self.on_skeleton(p) || self.in_interior_2d(p)
    }

    /// True iff `p` lies on a ring, polyline or isolated point of the region.
    pub fn on_skeleton(&self, p: &Point) -> bool {
        if self.points.iter().any(|q| q == p) {
            return true;
        }
        for s in self.ring_segments().iter().chain(self.polyline_segments().iter()) {
            if point_on_segment(p, &s.a, &s.b) {
                return true;
            }
        }
        false
    }

    /// True iff `p` lies strictly inside the 2-D part of the region (even–odd
    /// over the rings), assuming it is not on any ring.
    pub fn in_interior_2d(&self, p: &Point) -> bool {
        let mut crossings = 0usize;
        for ring in &self.rings {
            for i in 0..ring.len() {
                let u = &ring[i];
                let w = &ring[(i + 1) % ring.len()];
                let u_above = u.y > p.y;
                let w_above = w.y > p.y;
                if u_above == w_above {
                    continue;
                }
                let t = (p.y - u.y) / (w.y - u.y);
                let x_cross = u.x + (w.x - u.x) * t;
                if x_cross > p.x {
                    crossings += 1;
                }
            }
        }
        crossings % 2 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn rectangle_membership() {
        let r = Region::rectangle(0, 0, 10, 10);
        assert!(r.contains_point(&p(5, 5)));
        assert!(r.contains_point(&p(0, 5))); // boundary
        assert!(r.contains_point(&p(0, 0))); // corner
        assert!(!r.contains_point(&p(11, 5)));
        assert!(!r.contains_point(&p(-1, -1)));
        assert_eq!(r.point_count(), 4);
        assert_eq!(r.ring_segments().len(), 4);
    }

    #[test]
    fn polygon_with_hole() {
        let mut r = Region::rectangle(0, 0, 10, 10);
        r.add_ring(vec![p(2, 2), p(8, 2), p(8, 8), p(2, 8)]);
        // Inside the hole: even number of crossings, not in the region.
        assert!(!r.contains_point(&p(5, 5)));
        // In the annulus.
        assert!(r.contains_point(&p(1, 5)));
        // On the hole boundary: still in the (closed) region.
        assert!(r.contains_point(&p(2, 5)));
    }

    #[test]
    fn polyline_and_points() {
        let mut r = Region::polyline(vec![p(0, 0), p(5, 0), p(5, 5)]);
        r.add_point(p(20, 20));
        assert!(r.contains_point(&p(3, 0)));
        assert!(r.contains_point(&p(5, 2)));
        assert!(r.contains_point(&p(20, 20)));
        assert!(!r.contains_point(&p(1, 1)));
        assert_eq!(r.polyline_segments().len(), 2);
        assert_eq!(r.point_count(), 4);
    }

    #[test]
    fn bbox_covers_everything() {
        let mut r = Region::rectangle(0, 0, 4, 4);
        r.add_point(p(10, -3));
        let b = r.bbox().unwrap();
        assert!(b.contains(&p(10, -3)));
        assert!(b.contains(&p(0, 4)));
        assert!(Region::new().bbox().is_none());
    }

    #[test]
    #[should_panic]
    fn degenerate_ring_panics() {
        let _ = Region::polygon(vec![p(0, 0), p(1, 1)]);
    }

    #[test]
    #[should_panic]
    fn bad_rectangle_panics() {
        let _ = Region::rectangle(5, 5, 1, 1);
    }
}
