//! Direct evaluation of topological `FO(P, <x, <y)` sentences.
//!
//! This is evaluation strategy (i) of the paper's practical-considerations
//! section: work on the raw spatial data, with no invariant. For semi-linear
//! instances, quantifier elimination over the reals is replaced by a finite
//! *sample-point structure*: one sample per cell of the instance's
//! arrangement (every vertex, the midpoint of every edge, an interior point
//! of every bounded face, plus one point of the exterior face). For
//! topological sentences the truth value only depends on which cell a point
//! lies in, so quantifiers may range over the samples; this substitution is
//! recorded in DESIGN.md.
//!
//! The cost of this strategy is what the paper predicts: it is polynomial in
//! the size of the *raw data* (and exponential in the quantifier depth), which
//! is exactly why querying the much smaller invariant is attractive.

use crate::fo_point::{PointFormula, PointVar};
use crate::instance::SpatialInstance;
use std::collections::HashMap;
use topo_arrangement::{build_arrangement, Arrangement, FaceId};
use topo_geometry::{Point, Rational};

/// The finite structure over which direct evaluation quantifies.
#[derive(Clone, Debug)]
pub struct SamplePointStructure {
    /// One sample point per arrangement cell (plus one for the exterior).
    pub points: Vec<Point>,
    /// `membership[i][r]` is true iff sample `i` belongs to region `r`.
    pub membership: Vec<Vec<bool>>,
}

impl SamplePointStructure {
    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff there are no sample points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Computes the sample-point structure of an instance.
pub fn sample_points(instance: &SpatialInstance) -> SamplePointStructure {
    let arrangement = build_arrangement(&instance.to_arrangement_input());
    let mut points: Vec<Point> = Vec::new();
    points.extend(arrangement.vertices.iter().copied());
    for e in &arrangement.edges {
        points.push(arrangement.vertices[e.v1].midpoint(&arrangement.vertices[e.v2]));
    }
    for face in 0..arrangement.face_count() {
        if arrangement.faces[face].bounded {
            if let Some(p) = face_interior_point(&arrangement, face) {
                points.push(p);
            }
        }
    }
    points.push(exterior_point(&arrangement));
    let membership = points
        .iter()
        .map(|p| instance.iter().map(|(_, region)| region.contains_point(p)).collect())
        .collect();
    SamplePointStructure { points, membership }
}

/// A point of the unbounded face: anything beyond the bounding box of all
/// vertices.
fn exterior_point(arrangement: &Arrangement) -> Point {
    let mut max_x = Rational::ZERO;
    let mut max_y = Rational::ZERO;
    for p in &arrangement.vertices {
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    Point::new(max_x + Rational::ONE, max_y + Rational::ONE)
}

/// An exact interior point of a bounded face: the midpoint of one of its
/// boundary edges, pushed into the face by half the distance to the first
/// other edge hit by the inward normal ray.
pub fn face_interior_point(arrangement: &Arrangement, face: FaceId) -> Option<Point> {
    let boundary = &arrangement.faces[face].boundary_edges;
    let edge_id = *boundary.iter().find(|&&e| {
        arrangement.edges[e].face_left == face || arrangement.edges[e].face_right == face
    })?;
    let edge = &arrangement.edges[edge_id];
    let a = arrangement.vertices[edge.v1];
    let b = arrangement.vertices[edge.v2];
    let m = a.midpoint(&b);
    let (dx, dy) = b.sub(&a);
    // Normal pointing into `face`.
    let (nx, ny) = if edge.face_left == face { (-dy, dx) } else { (dy, -dx) };
    let mut t_min: Option<Rational> = None;
    for (other_id, other) in arrangement.edges.iter().enumerate() {
        if other_id == edge_id {
            continue;
        }
        let p = arrangement.vertices[other.v1];
        let q = arrangement.vertices[other.v2];
        if let Some(t) = ray_segment_parameter(&m, nx, ny, &p, &q) {
            if t.signum() > 0 && t_min.as_ref().map_or(true, |cur| t < *cur) {
                t_min = Some(t);
            }
        }
    }
    let t = t_min?;
    let half = t / Rational::from_int(2);
    Some(Point::new(m.x + nx * half, m.y + ny * half))
}

/// Smallest positive parameter `t` such that `origin + t·(nx, ny)` lies on the
/// closed segment `[p, q]`, if any.
fn ray_segment_parameter(
    origin: &Point,
    nx: Rational,
    ny: Rational,
    p: &Point,
    q: &Point,
) -> Option<Rational> {
    let dx = q.x - p.x;
    let dy = q.y - p.y;
    let denom = nx * dy - ny * dx;
    let px = p.x - origin.x;
    let py = p.y - origin.y;
    if !denom.is_zero() {
        let t = (px * dy - py * dx) / denom;
        let s = (px * ny - py * nx) / denom;
        if t.signum() > 0 && s.signum() >= 0 && s <= Rational::ONE {
            Some(t)
        } else {
            None
        }
    } else {
        // Parallel: only relevant when collinear with the ray.
        if !(px * ny - py * nx).is_zero() {
            return None;
        }
        let norm = nx * nx + ny * ny;
        let tp = (px * nx + py * ny) / norm;
        let qx = q.x - origin.x;
        let qy = q.y - origin.y;
        let tq = (qx * nx + qy * ny) / norm;
        [tp, tq].into_iter().filter(|t| t.signum() > 0).min()
    }
}

/// Evaluates `FO(P, <x, <y)` formulas directly on a spatial instance.
pub struct DirectEvaluator {
    samples: SamplePointStructure,
}

impl DirectEvaluator {
    /// Builds the evaluator (computes the arrangement and the samples).
    pub fn new(instance: &SpatialInstance) -> Self {
        DirectEvaluator { samples: sample_points(instance) }
    }

    /// Builds the evaluator from precomputed samples.
    pub fn from_samples(samples: SamplePointStructure) -> Self {
        DirectEvaluator { samples }
    }

    /// The underlying sample structure.
    pub fn samples(&self) -> &SamplePointStructure {
        &self.samples
    }

    /// Evaluates a sentence.
    ///
    /// # Panics
    /// Panics if the formula has free variables.
    pub fn evaluate(&self, formula: &PointFormula) -> bool {
        assert!(formula.is_sentence(), "direct evaluation requires a sentence");
        self.eval(formula, &mut HashMap::new())
    }

    fn eval(&self, formula: &PointFormula, assignment: &mut HashMap<PointVar, usize>) -> bool {
        match formula {
            PointFormula::InRegion { region, var } => {
                let idx = assignment[var];
                self.samples.membership[idx][*region]
            }
            PointFormula::LessX(a, b) => {
                self.samples.points[assignment[a]].x < self.samples.points[assignment[b]].x
            }
            PointFormula::LessY(a, b) => {
                self.samples.points[assignment[a]].y < self.samples.points[assignment[b]].y
            }
            PointFormula::Eq(a, b) => {
                self.samples.points[assignment[a]] == self.samples.points[assignment[b]]
            }
            PointFormula::Not(f) => !self.eval(f, assignment),
            PointFormula::And(fs) => fs.iter().all(|f| self.eval(f, assignment)),
            PointFormula::Or(fs) => fs.iter().any(|f| self.eval(f, assignment)),
            PointFormula::Exists(v, f) => {
                let previous = assignment.get(v).copied();
                let mut result = false;
                for idx in 0..self.samples.len() {
                    assignment.insert(*v, idx);
                    if self.eval(f, assignment) {
                        result = true;
                        break;
                    }
                }
                restore(assignment, *v, previous);
                result
            }
            PointFormula::Forall(v, f) => {
                let previous = assignment.get(v).copied();
                let mut result = true;
                for idx in 0..self.samples.len() {
                    assignment.insert(*v, idx);
                    if !self.eval(f, assignment) {
                        result = false;
                        break;
                    }
                }
                restore(assignment, *v, previous);
                result
            }
        }
    }
}

fn restore(assignment: &mut HashMap<PointVar, usize>, var: PointVar, previous: Option<usize>) {
    match previous {
        Some(idx) => {
            assignment.insert(var, idx);
        }
        None => {
            assignment.remove(&var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use crate::schema::Schema;

    fn two_region_instance() -> SpatialInstance {
        // P: big square, Q: small square inside P.
        let mut instance = SpatialInstance::new(Schema::from_names(["P", "Q"]));
        instance.set_region(0, Region::rectangle(0, 0, 100, 100));
        instance.set_region(1, Region::rectangle(20, 20, 40, 40));
        instance
    }

    fn contained(inner: usize, outer: usize) -> PointFormula {
        PointFormula::Forall(
            0,
            Box::new(
                PointFormula::InRegion { region: inner, var: 0 }
                    .implies(PointFormula::InRegion { region: outer, var: 0 }),
            ),
        )
    }

    fn intersects(a: usize, b: usize) -> PointFormula {
        PointFormula::Exists(
            0,
            Box::new(PointFormula::And(vec![
                PointFormula::InRegion { region: a, var: 0 },
                PointFormula::InRegion { region: b, var: 0 },
            ])),
        )
    }

    #[test]
    fn sample_structure_covers_all_cells() {
        let instance = two_region_instance();
        let samples = sample_points(&instance);
        // 8 vertices + 8 edge midpoints + 2 bounded faces + 1 exterior point.
        assert_eq!(samples.len(), 19);
        // At least one sample is in Q (and hence in P), and at least one is in
        // P but not Q, and at least one is outside both.
        assert!(samples.membership.iter().any(|m| m[0] && m[1]));
        assert!(samples.membership.iter().any(|m| m[0] && !m[1]));
        assert!(samples.membership.iter().any(|m| !m[0] && !m[1]));
    }

    #[test]
    fn containment_query() {
        let instance = two_region_instance();
        let eval = DirectEvaluator::new(&instance);
        assert!(eval.evaluate(&contained(1, 0)));
        assert!(!eval.evaluate(&contained(0, 1)));
    }

    #[test]
    fn intersection_query() {
        let instance = two_region_instance();
        let eval = DirectEvaluator::new(&instance);
        assert!(eval.evaluate(&intersects(0, 1)));

        let mut disjoint = SpatialInstance::new(Schema::from_names(["P", "Q"]));
        disjoint.set_region(0, Region::rectangle(0, 0, 10, 10));
        disjoint.set_region(1, Region::rectangle(20, 0, 30, 10));
        let eval = DirectEvaluator::new(&disjoint);
        assert!(!eval.evaluate(&intersects(0, 1)));
    }

    #[test]
    fn boundary_only_intersection() {
        // P and Q share exactly one boundary edge.
        let mut instance = SpatialInstance::new(Schema::from_names(["P", "Q"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        instance.set_region(1, Region::rectangle(10, 0, 20, 10));
        let eval = DirectEvaluator::new(&instance);
        assert!(eval.evaluate(&intersects(0, 1)));
        // There is no point in the interior of both.
        let interior_overlap = PointFormula::Exists(
            0,
            Box::new(PointFormula::And(vec![
                PointFormula::InRegion { region: 0, var: 0 },
                PointFormula::InRegion { region: 1, var: 0 },
                // Strictly inside both: there are points of both regions in
                // every direction — approximated here by asking for a point of
                // the intersection that is not <x-extremal among intersection
                // points, which fails when the intersection is a vertical
                // segment shared by the boundaries only.
                PointFormula::Exists(
                    1,
                    Box::new(PointFormula::And(vec![
                        PointFormula::InRegion { region: 0, var: 1 },
                        PointFormula::InRegion { region: 1, var: 1 },
                        PointFormula::LessX(1, 0),
                    ])),
                ),
            ])),
        );
        assert!(!eval.evaluate(&interior_overlap));
    }

    #[test]
    fn face_interior_points_are_inside() {
        let instance = two_region_instance();
        let arrangement = build_arrangement(&instance.to_arrangement_input());
        for face in 0..arrangement.face_count() {
            if !arrangement.faces[face].bounded {
                continue;
            }
            let p = face_interior_point(&arrangement, face).expect("interior point exists");
            // The point must not lie on any edge.
            for e in &arrangement.edges {
                let a = arrangement.vertices[e.v1];
                let b = arrangement.vertices[e.v2];
                assert!(!topo_geometry::point_on_segment(&p, &a, &b));
            }
        }
    }
}
