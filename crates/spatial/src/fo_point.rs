//! The point-based spatial query language `FO(P, <x, <y)`.
//!
//! Variables range over points of the plane; atoms are region membership of a
//! point, the two coordinate orders `<x` and `<y`, and point equality. The
//! paper shows (after \[PSV99\]) that this language expresses exactly the same
//! *topological* properties as `FO(R,<)`, and all of Section 4's translation
//! machinery works through it, so the query library of `topo-queries` is
//! written in this language and lifted to `FO(R,<)` when needed.

use crate::fo_real::{RealFormula, RealVar};
use crate::schema::{RegionId, Schema};
use std::fmt;

/// A point-valued variable, identified by an index.
pub type PointVar = u32;

/// An `FO(P, <x, <y)` formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointFormula {
    /// `R(p)`: the point `p` belongs to region `R`.
    InRegion {
        /// The region name.
        region: RegionId,
        /// The point variable.
        var: PointVar,
    },
    /// `p <x q`: the x coordinate of `p` is smaller than that of `q`.
    LessX(PointVar, PointVar),
    /// `p <y q`: the y coordinate of `p` is smaller than that of `q`.
    LessY(PointVar, PointVar),
    /// `p = q`.
    Eq(PointVar, PointVar),
    /// Negation.
    Not(Box<PointFormula>),
    /// Conjunction (true when empty).
    And(Vec<PointFormula>),
    /// Disjunction (false when empty).
    Or(Vec<PointFormula>),
    /// Existential quantification over a point variable.
    Exists(PointVar, Box<PointFormula>),
    /// Universal quantification over a point variable.
    Forall(PointVar, Box<PointFormula>),
}

impl PointFormula {
    /// `φ → ψ`, written as `¬φ ∨ ψ`.
    pub fn implies(self, other: PointFormula) -> PointFormula {
        PointFormula::Or(vec![PointFormula::Not(Box::new(self)), other])
    }

    /// Quantifier depth.
    pub fn quantifier_depth(&self) -> usize {
        match self {
            PointFormula::InRegion { .. }
            | PointFormula::LessX(..)
            | PointFormula::LessY(..)
            | PointFormula::Eq(..) => 0,
            PointFormula::Not(f) => f.quantifier_depth(),
            PointFormula::And(fs) | PointFormula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_depth()).max().unwrap_or(0)
            }
            PointFormula::Exists(_, f) | PointFormula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }

    /// Size of the formula (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            PointFormula::InRegion { .. }
            | PointFormula::LessX(..)
            | PointFormula::LessY(..)
            | PointFormula::Eq(..) => 1,
            PointFormula::Not(f) => 1 + f.size(),
            PointFormula::And(fs) | PointFormula::Or(fs) => {
                1 + fs.iter().map(|f| f.size()).sum::<usize>()
            }
            PointFormula::Exists(_, f) | PointFormula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> Vec<PointVar> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<PointVar>, out: &mut Vec<PointVar>) {
        match self {
            PointFormula::InRegion { var, .. } => {
                if !bound.contains(var) {
                    out.push(*var);
                }
            }
            PointFormula::LessX(a, b) | PointFormula::LessY(a, b) | PointFormula::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            PointFormula::Not(f) => f.collect_free(bound, out),
            PointFormula::And(fs) | PointFormula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            PointFormula::Exists(v, f) | PointFormula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// True iff the formula is a sentence.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Translates the formula into `FO(R,<)`: every point variable `p`
    /// becomes the pair of real variables `(2p, 2p + 1)` holding its x and y
    /// coordinates. The translation is linear in the size of the formula, as
    /// used by the paper when moving between the two spatial languages.
    pub fn to_real(&self) -> RealFormula {
        let xv = |p: PointVar| -> RealVar { 2 * p };
        let yv = |p: PointVar| -> RealVar { 2 * p + 1 };
        match self {
            PointFormula::InRegion { region, var } => {
                RealFormula::Region { region: *region, x: xv(*var), y: yv(*var) }
            }
            PointFormula::LessX(a, b) => RealFormula::Less(xv(*a), xv(*b)),
            PointFormula::LessY(a, b) => RealFormula::Less(yv(*a), yv(*b)),
            PointFormula::Eq(a, b) => RealFormula::And(vec![
                RealFormula::Eq(xv(*a), xv(*b)),
                RealFormula::Eq(yv(*a), yv(*b)),
            ]),
            PointFormula::Not(f) => RealFormula::Not(Box::new(f.to_real())),
            PointFormula::And(fs) => RealFormula::And(fs.iter().map(|f| f.to_real()).collect()),
            PointFormula::Or(fs) => RealFormula::Or(fs.iter().map(|f| f.to_real()).collect()),
            PointFormula::Exists(v, f) => RealFormula::Exists(
                xv(*v),
                Box::new(RealFormula::Exists(yv(*v), Box::new(f.to_real()))),
            ),
            PointFormula::Forall(v, f) => RealFormula::Forall(
                xv(*v),
                Box::new(RealFormula::Forall(yv(*v), Box::new(f.to_real()))),
            ),
        }
    }

    /// Renders the formula with region names taken from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> PointFormulaDisplay<'a> {
        PointFormulaDisplay { formula: self, schema }
    }
}

/// Helper implementing [`fmt::Display`] for a formula with a schema.
pub struct PointFormulaDisplay<'a> {
    formula: &'a PointFormula,
    schema: &'a Schema,
}

impl fmt::Display for PointFormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(formula: &PointFormula, schema: &Schema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match formula {
                PointFormula::InRegion { region, var } => {
                    write!(f, "{}(p{})", schema.name(*region), var)
                }
                PointFormula::LessX(a, b) => write!(f, "p{a} <x p{b}"),
                PointFormula::LessY(a, b) => write!(f, "p{a} <y p{b}"),
                PointFormula::Eq(a, b) => write!(f, "p{a} = p{b}"),
                PointFormula::Not(inner) => {
                    write!(f, "¬(")?;
                    go(inner, schema, f)?;
                    write!(f, ")")
                }
                PointFormula::And(fs) => {
                    write!(f, "(")?;
                    for (i, inner) in fs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        go(inner, schema, f)?;
                    }
                    write!(f, ")")
                }
                PointFormula::Or(fs) => {
                    write!(f, "(")?;
                    for (i, inner) in fs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∨ ")?;
                        }
                        go(inner, schema, f)?;
                    }
                    write!(f, ")")
                }
                PointFormula::Exists(v, inner) => {
                    write!(f, "∃p{v} ")?;
                    go(inner, schema, f)
                }
                PointFormula::Forall(v, inner) => {
                    write!(f, "∀p{v} ")?;
                    go(inner, schema, f)
                }
            }
        }
        go(self.formula, self.schema, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn containment_formula() -> PointFormula {
        // ∀p (P(p) → Q(p))
        PointFormula::Forall(
            0,
            Box::new(
                PointFormula::InRegion { region: 0, var: 0 }
                    .implies(PointFormula::InRegion { region: 1, var: 0 }),
            ),
        )
    }

    #[test]
    fn depth_size_sentence() {
        let f = containment_formula();
        assert_eq!(f.quantifier_depth(), 1);
        assert!(f.is_sentence());
        assert_eq!(f.free_vars(), Vec::<PointVar>::new());
    }

    #[test]
    fn to_real_doubles_quantifier_depth() {
        let f = containment_formula();
        let real = f.to_real();
        assert_eq!(real.quantifier_depth(), 2);
        assert!(real.is_sentence());
    }

    #[test]
    fn free_vars_in_open_formula() {
        let f = PointFormula::And(vec![
            PointFormula::LessX(0, 1),
            PointFormula::Exists(1, Box::new(PointFormula::Eq(1, 2))),
        ]);
        assert_eq!(f.free_vars(), vec![0, 1, 2]);
    }

    #[test]
    fn display_readable() {
        let schema = Schema::from_names(["P", "Q"]);
        let rendered = format!("{}", containment_formula().display(&schema));
        assert!(rendered.contains("P(p0)"));
        assert!(rendered.contains("Q(p0)"));
    }
}
