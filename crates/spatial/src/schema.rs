//! Spatial database schemas: finite, ordered sets of region names.

use std::collections::HashMap;
use std::fmt;

/// Index of a region name within a [`Schema`].
pub type RegionId = usize;

/// A spatial database schema: a finite set of region names.
///
/// Names are kept in insertion order; the order is used whenever the paper's
/// constructions need "some fixed order of the region names in the schema"
/// (e.g. when gluing the per-component orderings of Lemma 3.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    by_name: HashMap<String, RegionId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Creates a schema from a list of names.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut schema = Schema::new();
        for name in names {
            schema.add(name);
        }
        schema
    }

    /// Adds a region name, returning its id.
    ///
    /// # Panics
    /// Panics if the name is already present.
    pub fn add<S: Into<String>>(&mut self, name: S) -> RegionId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate region name {name:?} in schema");
        let id = self.names.len();
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Number of region names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff the schema has no region names.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a region id.
    pub fn name(&self, id: RegionId) -> &str {
        &self.names[id]
    }

    /// The id of a region name, if present.
    pub fn id(&self, name: &str) -> Option<RegionId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(id, name)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }

    /// All ids in schema order.
    pub fn ids(&self) -> impl Iterator<Item = RegionId> {
        0..self.names.len()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let p = s.add("P");
        let q = s.add("Q");
        assert_eq!(p, 0);
        assert_eq!(q, 1);
        assert_eq!(s.id("P"), Some(0));
        assert_eq!(s.id("R"), None);
        assert_eq!(s.name(1), "Q");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn from_names_preserves_order() {
        let s = Schema::from_names(["forest", "lake", "urban"]);
        let collected: Vec<&str> = s.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, vec!["forest", "lake", "urban"]);
        assert_eq!(format!("{s}"), "{forest, lake, urban}");
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let _ = Schema::from_names(["P", "P"]);
    }
}
