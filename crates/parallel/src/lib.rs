//! In-tree scoped thread pool for the construction pipeline.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small slice of rayon-style fan-out the pipeline actually needs, on
//! [`std::thread::scope`] alone and entirely in safe Rust:
//!
//! - [`Pool::par_chunks`] — split a slice into contiguous chunks, run a
//!   closure per chunk on the pool, return the per-chunk results **in chunk
//!   order**. Because chunks are contiguous and results are concatenated in
//!   order, any caller that only concatenates (or order-insensitively merges)
//!   per-chunk output sees a result independent of the chunk boundaries —
//!   and therefore of the thread count.
//! - [`Pool::par_map_collect`] — per-item map with the output in item order,
//!   bit-identical to `items.iter().map(f).collect()` by construction.
//! - [`Pool::par_chunks_mut`] — in-place per-chunk mutation (disjoint
//!   `chunks_mut` slices, so element-local work like per-vertex sorting is
//!   deterministic trivially).
//! - [`Pool::scope`] — run a vector of heterogeneous-workload closures,
//!   results in spawn order; [`Pool::join`] is the two-task special case.
//!
//! There is no work stealing and no persistent worker state: every call
//! spawns scoped threads that pull chunk indices from one atomic counter and
//! write results into per-index slots, so scheduling order can never leak
//! into the output. The calling thread participates as a worker.
//!
//! **Pool size.** [`Pool::global`] sizes itself from the `TOPO_THREADS`
//! environment variable (read once), falling back to
//! [`std::thread::available_parallelism`]; [`set_global_threads`] overrides
//! it at runtime (used by the determinism test sweeps and by services that
//! size the pool from their own config). At 1 thread every entry point runs
//! the plain sequential loop on the calling thread — no spawns, guaranteed
//! identical to not using the pool at all.
//!
//! **Nesting.** A task running on the pool that calls back into the pool
//! runs sequentially (a thread-local in-pool flag): parallelism is applied
//! at the outermost call site only, so e.g. a batch-ingest fan-out whose
//! workers each build an arrangement does not oversubscribe the machine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on configurable pool sizes — far above any real machine, it
/// only guards against absurd `TOPO_THREADS` values spawning unbounded
/// threads.
const MAX_THREADS: usize = 1024;

/// Global pool size; `0` means "not yet initialised" (the first reader
/// resolves `TOPO_THREADS` / available parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing a pool task: nested pool calls
    /// fall back to sequential execution instead of spawning again.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A claimable chunk for [`Pool::par_chunks_mut`]: the chunk's start offset
/// in the original slice plus the disjoint sub-slice itself, taken exactly
/// once by whichever worker claims its index.
type ChunkSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

fn clamp_threads(n: usize) -> usize {
    n.clamp(1, MAX_THREADS)
}

/// Pool size from the environment: `TOPO_THREADS` if set and parseable,
/// otherwise the scheduler-reported available parallelism (1 if unknown).
fn threads_from_env() -> usize {
    let configured = std::env::var("TOPO_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    clamp_threads(
        configured.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
    )
}

/// Overrides the global pool size at runtime (clamped to `1..=1024`).
/// Takes effect for every subsequent [`Pool::global`] call; in-flight pool
/// operations are unaffected.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(clamp_threads(n), Ordering::SeqCst);
}

/// The global pool size ([`Pool::global`]`.threads()`).
pub fn global_threads() -> usize {
    Pool::global().threads()
}

/// A fixed-size scoped thread pool handle. Copyable and stateless: the only
/// state is the thread count, so handles can be passed by value and the
/// "pool" spins up scoped threads per call.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `n` threads (clamped to `1..=1024`). At `n == 1`
    /// every operation is the plain sequential loop.
    pub fn with_threads(n: usize) -> Self {
        Pool { threads: clamp_threads(n) }
    }

    /// The process-global pool: sized by [`set_global_threads`] if called,
    /// else `TOPO_THREADS`, else available parallelism.
    pub fn global() -> Self {
        let mut n = GLOBAL_THREADS.load(Ordering::SeqCst);
        if n == 0 {
            let resolved = threads_from_env();
            // Racing first readers resolve the same value; whoever stores
            // first wins and the rest agree.
            let _ =
                GLOBAL_THREADS.compare_exchange(0, resolved, Ordering::SeqCst, Ordering::SeqCst);
            n = GLOBAL_THREADS.load(Ordering::SeqCst);
        }
        Pool { threads: n }
    }

    /// This pool's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True if a call entered now would actually fan out (more than one
    /// thread and not already inside a pool task).
    pub fn is_parallel(&self) -> bool {
        self.threads > 1 && !IN_POOL.with(|f| f.get())
    }

    /// Runs `task(0..n_tasks)` across the pool, caller thread included,
    /// returning results indexed by task id. The scheduling order is
    /// arbitrary; the output order is not.
    fn run_indexed<R, F>(&self, n_tasks: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_tasks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n_tasks);
        if workers <= 1 || !self.is_parallel() {
            return (0..n_tasks).map(task).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            let result = task(i);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(|| {
                    IN_POOL.with(|f| f.set(true));
                    work();
                    // Scoped worker threads die at scope exit; resetting the
                    // flag is just hygiene for clarity.
                    IN_POOL.with(|f| f.set(false));
                });
            }
            // The caller is worker 0; mark it in-pool so tasks it runs do
            // not recursively fan out, and restore the flag afterwards.
            IN_POOL.with(|f| f.set(true));
            work();
            IN_POOL.with(|f| f.set(false));
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every task index was executed")
            })
            .collect()
    }

    /// Number of chunks to split `n` items into: enough for load balance
    /// (4 per worker) but never below `min_chunk` items per chunk.
    fn chunk_size(&self, n: usize, min_chunk: usize) -> usize {
        let min_chunk = min_chunk.max(1);
        let target_chunks = (self.threads * 4).max(1);
        n.div_ceil(target_chunks).max(min_chunk)
    }

    /// Splits `items` into contiguous chunks of at least `min_chunk`
    /// elements and runs `f(chunk_start_offset, chunk)` per chunk on the
    /// pool. Results come back in chunk order, so concatenating them
    /// reproduces the sequential iteration order exactly.
    pub fn par_chunks<T, R, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let size = self.chunk_size(items.len(), min_chunk);
        let n_chunks = items.len().div_ceil(size);
        self.run_indexed(n_chunks, |i| {
            let start = i * size;
            let end = (start + size).min(items.len());
            f(start, &items[start..end])
        })
    }

    /// In-place variant of [`Pool::par_chunks`]: `f(chunk_start_offset,
    /// chunk)` mutates disjoint contiguous sub-slices. Element-local work
    /// (e.g. sorting each element of a `Vec<Vec<_>>`) is trivially
    /// chunk-boundary independent.
    pub fn par_chunks_mut<T, F>(&self, items: &mut [T], min_chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let size = self.chunk_size(items.len(), min_chunk);
        if self.threads <= 1 || !self.is_parallel() || items.len() <= size {
            for (i, chunk) in items.chunks_mut(size).enumerate() {
                f(i * size, chunk);
            }
            return;
        }
        let slots: Vec<ChunkSlot<'_, T>> = items
            .chunks_mut(size)
            .enumerate()
            .map(|(i, chunk)| Mutex::new(Some((i * size, chunk))))
            .collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= slots.len() {
                break;
            }
            let (offset, chunk) = slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each chunk is taken exactly once");
            f(offset, chunk);
        };
        let workers = self.threads.min(slots.len());
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(|| {
                    IN_POOL.with(|flag| flag.set(true));
                    work();
                    IN_POOL.with(|flag| flag.set(false));
                });
            }
            IN_POOL.with(|flag| flag.set(true));
            work();
            IN_POOL.with(|flag| flag.set(false));
        });
    }

    /// Parallel map with the output in item order: bit-identical to
    /// `items.iter().map(f).collect()`.
    pub fn par_map_collect<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let per_chunk =
            self.par_chunks(items, 1, |_, chunk| chunk.iter().map(&f).collect::<Vec<R>>());
        let mut out = Vec::with_capacity(items.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        out
    }

    /// Runs a vector of independent closures on the pool; results in spawn
    /// order. For workloads where per-task cost varies wildly (e.g. one
    /// giant component and many small ones) the atomic hand-out keeps every
    /// worker busy until the queue drains.
    pub fn scope<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.run_indexed(cells.len(), |i| {
            let task = cells[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each task runs exactly once");
            task()
        })
    }

    /// Runs two closures, in parallel when the pool allows it, returning
    /// both results.
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if !self.is_parallel() {
            return (fa(), fb());
        }
        let mut a = None;
        let mut b = None;
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                IN_POOL.with(|f| f.set(true));
                let r = fb();
                IN_POOL.with(|f| f.set(false));
                r
            });
            IN_POOL.with(|f| f.set(true));
            a = Some(fa());
            IN_POOL.with(|f| f.set(false));
            b = Some(handle.join().expect("join task panicked"));
        });
        (a.expect("ran"), b.expect("joined"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> Vec<Pool> {
        vec![
            Pool::with_threads(1),
            Pool::with_threads(2),
            Pool::with_threads(8),
            Pool::with_threads(64), // oversubscribed on any test machine
        ]
    }

    #[test]
    fn par_map_collect_matches_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for pool in pools() {
            assert_eq!(pool.par_map_collect(&items, |x| x * x + 1), expect);
        }
    }

    #[test]
    fn par_chunks_concatenation_is_boundary_independent() {
        let items: Vec<u32> = (0..5_000).collect();
        let expect: Vec<u32> = items.iter().map(|x| x ^ 0xdead).collect();
        for pool in pools() {
            let per_chunk =
                pool.par_chunks(&items, 7, |_, c| c.iter().map(|x| x ^ 0xdead).collect::<Vec<_>>());
            let flat: Vec<u32> = per_chunk.into_iter().flatten().collect();
            assert_eq!(flat, expect);
        }
    }

    #[test]
    fn par_chunks_offsets_address_the_original_slice() {
        let items: Vec<usize> = (0..999).collect();
        for pool in pools() {
            let ok = pool.par_chunks(&items, 10, |offset, chunk| {
                chunk.iter().enumerate().all(|(i, &v)| v == offset + i)
            });
            assert!(ok.into_iter().all(|b| b));
        }
    }

    #[test]
    fn par_chunks_mut_matches_sequential_mutation() {
        let base: Vec<i64> = (0..4_321).map(|x| x * 3 - 500).collect();
        let mut expect = base.clone();
        for v in &mut expect {
            *v = v.wrapping_mul(7) + 11;
        }
        for pool in pools() {
            let mut got = base.clone();
            pool.par_chunks_mut(&mut got, 5, |_, chunk| {
                for v in chunk {
                    *v = v.wrapping_mul(7) + 11;
                }
            });
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn scope_results_in_spawn_order() {
        for pool in pools() {
            let tasks: Vec<_> = (0..37).map(|i| move || i * 10).collect();
            let got = pool.scope(tasks);
            let expect: Vec<_> = (0..37).map(|i| i * 10).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn join_returns_both() {
        for pool in pools() {
            let (a, b) = pool.join(|| "left".to_string(), || 42);
            assert_eq!(a, "left");
            assert_eq!(b, 42);
        }
    }

    #[test]
    fn nested_calls_run_sequentially_without_deadlock() {
        let pool = Pool::with_threads(4);
        let outer: Vec<usize> = (0..16).collect();
        let got = pool.par_map_collect(&outer, |&i| {
            // A nested call from inside a pool task must not fan out again;
            // it must still produce the right answer.
            let inner: Vec<usize> = (0..100).collect();
            let inner_sum: usize = pool.par_map_collect(&inner, |&x| x + i).iter().sum();
            inner_sum
        });
        let expect: Vec<usize> = (0..16).map(|i| (0..100).map(|x| x + i).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_inputs() {
        let pool = Pool::with_threads(8);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.par_map_collect(&empty, |x| *x).is_empty());
        assert!(pool.par_chunks(&empty, 4, |_, c| c.len()).is_empty());
        let mut empty_mut: Vec<u8> = Vec::new();
        pool.par_chunks_mut(&mut empty_mut, 4, |_, _| {});
        let no_tasks: Vec<fn() -> u8> = Vec::new();
        assert!(pool.scope(no_tasks).is_empty());
    }

    #[test]
    fn thread_count_clamped() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert_eq!(Pool::with_threads(1_000_000).threads(), MAX_THREADS);
    }
}
