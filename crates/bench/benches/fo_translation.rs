//! E7 — the first-order translation for single-region schemas (Theorem 4.9):
//! the cost of the cycles/r-type machinery as `r` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topo_core::{PointFormula, Region, Schema, SpatialInstance};
use topo_translate::{cycles_of, equivalent_lemma_4_7, SingleRegionTranslator};

fn star(arms: usize) -> SpatialInstance {
    let mut region = Region::new();
    for i in 0..arms {
        region.add_polyline(vec![
            topo_core::Point::origin(),
            topo_core::Point::from_ints(100 + 37 * i as i64, 100 - 23 * i as i64),
        ]);
    }
    let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
    instance.set_region(0, region);
    instance
}

fn bench_fo_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fo_translation");
    group.sample_size(10);
    let a = topo_core::top(&star(3));
    let b = topo_core::top(&star(4));
    group.bench_function("cycles_of", |bch| bch.iter(|| cycles_of(&a, 0).len()));
    for r in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("lemma_4_7_equivalence", r), &r, |bch, &r| {
            bch.iter(|| equivalent_lemma_4_7(&a, &b, 0, r))
        });
    }
    let sentence = PointFormula::Exists(0, Box::new(PointFormula::InRegion { region: 0, var: 0 }));
    for r in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("translate_single_region", r), &r, |bch, &r| {
            let candidates: Vec<SpatialInstance> = (1..=3).map(star).collect();
            bch.iter(|| {
                let translator = SingleRegionTranslator::new(r, 0, candidates.clone());
                translator.translate(&sentence).1
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fo_translation);
criterion_main!(benches);
