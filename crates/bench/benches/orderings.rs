//! E4 — generating the parameterised orderings of Lemma 3.1 and the canonical
//! code built on top of them (Theorems 3.2 / 3.4).

use criterion::{criterion_group, criterion_main, Criterion};
use topo_datagen::{figure1, nested_rings};
use topo_translate::all_invariant_orderings;

fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("orderings");
    group.sample_size(10);
    let fig1 = topo_core::top(&figure1());
    group.bench_function("lemma_3_1_orderings_figure1", |b| {
        b.iter(|| all_invariant_orderings(&fig1, 256).len())
    });
    // The free function recomputes every iteration; the inherent method would
    // hit the invariant's cache after the first call and measure nothing.
    group.bench_function("canonical_code_figure1", |b| {
        b.iter(|| topo_core::invariant::canonical_code(&fig1))
    });
    let rings = topo_core::top(&nested_rings(6, 3));
    group.bench_function("canonical_code_nested_rings", |b| {
        b.iter(|| topo_core::invariant::canonical_code(&rings))
    });
    group.bench_function("canonical_code_cached_nested_rings", |b| {
        b.iter(|| rings.canonical_code())
    });
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
