//! E8 — the four evaluation strategies of the practical-considerations
//! section, on the same workload and query suite.

use criterion::{criterion_group, criterion_main, Criterion};
use topo_bench::strategy_queries;
use topo_core::{evaluate_direct, evaluate_on_invariant, invert, Semantics};
use topo_datagen::{sequoia_hydro, Scale};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation_strategies");
    group.sample_size(10);
    let instance = sequoia_hydro(Scale { grid: 4 }, 11);
    let invariant = topo_core::top(&instance);
    let structure = topo_core::program_structure(&invariant);
    let rebuilt = invert(&invariant).expect("hydro workload is invertible");
    let queries = strategy_queries();

    group.bench_function("i_direct_on_raw_data", |b| {
        b.iter(|| queries.iter().filter(|q| evaluate_direct(q, &instance)).count())
    });
    group.bench_function("iii_algorithms_on_invariant", |b| {
        b.iter(|| queries.iter().filter(|q| evaluate_on_invariant(q, &invariant)).count())
    });
    group.bench_function("ii_datalog_on_invariant", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter_map(|q| topo_core::datalog_program(q, instance.schema()))
                .filter(|p| {
                    let out = p.run(&structure, Semantics::Stratified, usize::MAX).unwrap();
                    out.relation(&p.output).map(|r| !r.is_empty()).unwrap_or(false)
                })
                .count()
        })
    });
    group.bench_function("ii_datalog_goal_directed", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter_map(|q| topo_core::datalog_program(q, instance.schema()))
                .filter(|p| p.run_goal_boolean(&structure, Semantics::Stratified))
                .count()
        })
    });
    group.bench_function("iv_direct_on_rebuilt_instance", |b| {
        b.iter(|| queries.iter().filter(|q| evaluate_direct(q, &rebuilt)).count())
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
