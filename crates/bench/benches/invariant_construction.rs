//! E2 — invariant construction time as a function of the raw data size
//! (Theorem 2.1's polynomial-time bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topo_datagen::{sequoia_landcover, Scale};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("invariant_construction");
    group.sample_size(10);
    for grid in [4usize, 8, 16] {
        let instance = sequoia_landcover(Scale { grid }, 7);
        group.bench_with_input(BenchmarkId::new("landcover_grid", grid), &instance, |b, inst| {
            b.iter(|| topo_core::top(inst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
