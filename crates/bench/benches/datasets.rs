//! E1 — the dataset-statistics measurement: raw representation vs invariant
//! size for the three cartographic workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use topo_bench::{dataset_row, IGN_BYTES_PER_POINT, SEQUOIA_BYTES_PER_POINT};
use topo_datagen::{ign_city, sequoia_hydro, sequoia_landcover, Scale};

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_statistics");
    group.sample_size(10);
    group.bench_function("sequoia_landcover", |b| {
        let instance = sequoia_landcover(Scale::medium(), 1);
        b.iter(|| dataset_row("landcover", &instance, SEQUOIA_BYTES_PER_POINT))
    });
    group.bench_function("sequoia_hydro", |b| {
        let instance = sequoia_hydro(Scale::medium(), 2);
        b.iter(|| dataset_row("hydro", &instance, SEQUOIA_BYTES_PER_POINT))
    });
    group.bench_function("ign_city", |b| {
        let instance = ign_city(Scale::tiny(), 3);
        b.iter(|| dataset_row("city", &instance, IGN_BYTES_PER_POINT))
    });
    group.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
