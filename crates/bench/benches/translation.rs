//! E6 — the linear-time translation of topological sentences into
//! invariant-side queries (Theorem 4.1) and their evaluation via inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topo_core::PointFormula;
use topo_translate::TranslatedQuery;

fn sentence_of_depth(depth: usize) -> PointFormula {
    let mut conjuncts: Vec<PointFormula> =
        (0..depth as u32).map(|v| PointFormula::InRegion { region: 0, var: v }).collect();
    for v in 1..depth as u32 {
        conjuncts.push(PointFormula::LessX(v - 1, v));
    }
    let mut formula = PointFormula::And(conjuncts);
    for v in (0..depth as u32).rev() {
        formula = PointFormula::Exists(v, Box::new(formula));
    }
    formula
}

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint_translation");
    group.sample_size(10);
    let invariant = topo_core::top(&topo_datagen::nested_rings(3, 1));
    for depth in [1usize, 2, 3] {
        let formula = sentence_of_depth(depth);
        group.bench_with_input(BenchmarkId::new("translate", depth), &formula, |b, f| {
            b.iter(|| TranslatedQuery::new(f.clone()).size())
        });
        let query = TranslatedQuery::new(formula.clone());
        group.bench_with_input(BenchmarkId::new("evaluate_on_invariant", depth), &query, |b, q| {
            b.iter(|| q.evaluate(&invariant).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
