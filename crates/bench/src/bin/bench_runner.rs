//! Machine-readable perf baseline runner.
//!
//! Measures the `geometry → arrangement → invariant` construction path stage
//! by stage, the canonicalisation stage (`canonical_code`, cached re-reads,
//! cached isomorphism checks, plus the giant-component sweep statistics
//! behind the lazy Lemma 3.1 serialisation) *and* the datalog
//! query-evaluation stage (the `topo_queries::programs` fixpoint programs on
//! invariant exports, delta-driven engine vs the frozen naive engine) on the
//! seeded cartographic workloads, each at three datagen scales, against the
//! frozen pre-optimisation reference paths (`topo_core::top_naive`,
//! `topo_core::canonical_code_naive`, `datalog::naive`), and writes the
//! medians to a JSON file so every perf PR has a recorded trajectory to
//! beat. A fourth stage throws the duplicate-heavy store mix at the
//! concurrent [`InvariantStore`] from scoped threads — multi-threaded
//! ingest throughput, then the same query sweep against a memoising store
//! and the memo-disabled baseline. A fifth stage measures the durability
//! layer: WAL-logged ingest, WAL replay, snapshot write/load, and mixed
//! snapshot+WAL recovery at three workload sizes. A sixth stage sweeps the
//! in-tree thread pool (`topo-parallel`) over pool sizes 1/2/4/8: end-to-end
//! `top(I)`, cold canonicalisation and the batched store ingest at each pool
//! size, recording the speedup-vs-threads curve (and the host's core count,
//! so a single-core CI run is honest about what it could measure). A seventh
//! stage — `demand` — measures the goal-directed path introduced with the
//! magic-set rewrite: the library's linear connectivity program under
//! `run_goal` vs plain bottom-up `run`, against the retired quadratic
//! connectivity program (semi-naive and the frozen naive oracle), plus a
//! bound-goal single-source reachability demo where the rewrite's demand
//! restriction is asymptotic, not constant-factor. An eighth stage —
//! `incremental` — measures single-region edit latency through the
//! incremental maintenance layer (`MaintainedInvariant`: remove a region,
//! read the repaired canonical hash, re-insert it, read again) against the
//! same state sequence as two cold `top(I)` rebuilds, on each cartographic
//! workload at two scales.
//! `BENCH_10.json` at the repository root is the committed baseline
//! (`BENCH_9.json`/`BENCH_8.json`/`BENCH_7.json`/`BENCH_6.json`/
//! `BENCH_5.json`/`BENCH_4.json`/`BENCH_3.json`/`BENCH_2.json` record the
//! earlier trajectory; BENCHMARKS.md tabulates it); see DESIGN.md,
//! "Performance", "Canonicalisation", "Datalog engine", "Demand-driven
//! evaluation", "Invariant store", "Durability & degradation",
//! "Parallelism" and "Incremental maintenance".
//!
//! ```text
//! bench_runner [--quick] [--stage NAME]... [--out PATH]
//! ```
//!
//! `--quick` drops the sample count and skips the reference canonicalisation
//! on the scales where it is intractable (for CI smoke coverage); the default
//! sample count matches the committed baseline. `--stage` (repeatable)
//! restricts the run to the named stages — `construction`, `datalog`,
//! `demand`, `store`, `recovery`, `parallel`, `incremental` — and the JSON
//! records which
//! stages were actually run, so a filtered record is honest about what it
//! holds. Every median in the JSON is accompanied by the sample count
//! actually used for it, so quick-mode records are honest about how little
//! they measured. Requires the `naive-reference` feature:
//!
//! ```text
//! cargo run --release -p topo-bench --features naive-reference \
//!     --bin bench_runner -- --quick --stage demand --out BENCH_ci.json
//! ```

use std::sync::Arc;
use std::time::Instant;
use topo_bench::{median_ns, median_ns_with};
use topo_core::relational::datalog::naive as datalog_naive;
use topo_core::relational::Term;
use topo_core::spatial::transform::AffineMap;
use topo_core::{
    datalog_program, program_structure, quadratic_connectivity_program, Goal, InvariantStore,
    MaintainedInvariant, MemoryBackend, Region, Semantics, SpatialInstance, StoreConfig,
    TopologicalInvariant, TopologicalQuery,
};
use topo_datagen::{figure1, ign_city, nested_rings, sequoia_hydro, sequoia_landcover, Scale};

const FULL_SAMPLES: usize = 15;
const QUICK_SAMPLES: usize = 5;
const GRIDS: [usize; 3] = [8, 16, 28];
/// Scales for the datalog query-evaluation stage: the naive engine's
/// connectivity cost grows with `|region cells|² × |adjacency|`, so its
/// tractable range ends far below the construction scales (a city grid-5
/// naive run takes over two minutes).
const DATALOG_GRIDS: [usize; 3] = [3, 5, 8];
const SEED: u64 = 7;
/// The reference canonicalisation is super-quadratic; above this cell count a
/// single sample would take tens of minutes, so it is recorded as `null`.
const NAIVE_CANONICAL_CELL_LIMIT: usize = 3000;
/// Inner repetitions when timing the (sub-microsecond) cached paths.
const CACHED_REPS: u32 = 1024;
/// Once a workload's naive datalog median exceeds this budget, larger scales
/// of that workload record the reference engine as `null` instead of
/// spending minutes per sample on it.
const NAIVE_DATALOG_BUDGET_NS: u128 = 1_500_000_000;
const NAIVE_DATALOG_BUDGET_QUICK_NS: u128 = 400_000_000;
/// Store stage: ingest and query thread counts for the scoped-thread sweeps.
const STORE_INGEST_THREADS: usize = 8;
const STORE_QUERY_THREADS: usize = 8;
/// Homeomorphic copies per base topology in the duplicate-heavy store mix.
const STORE_COPIES: usize = 100;
const STORE_COPIES_QUICK: usize = 20;
/// Full passes over every (instance, query) pair each query thread makes.
const STORE_QUERY_ROUNDS: usize = 2;
const STORE_QUERY_ROUNDS_QUICK: usize = 1;
/// Pool sizes the parallel stage sweeps (1 is the sequential fallback and the
/// baseline every speedup is measured against).
const PARALLEL_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Workload grid for the parallel stage: the largest construction scale (the
/// hot case the pool exists for), smaller in quick mode.
const PARALLEL_GRID: usize = 28;
const PARALLEL_GRID_QUICK: usize = 12;
/// Scales for the incremental-maintenance stage: a small grid where full
/// rebuilds are cheap (the honest case for incremental repair) and a medium
/// grid where they are not.
const INCREMENTAL_GRIDS: [usize; 2] = [4, 16];

struct ScaleReport {
    grid: usize,
    cells: usize,
    /// (stage name, optimised median ns).
    stages: Vec<(&'static str, u128)>,
    naive_arrangement_ns: u128,
    naive_top_ns: u128,
    /// First `canonical_code()` call on a fresh invariant (cache cold).
    canonical_first_ns: u128,
    /// Re-reading the code from the cache (per call; fractional because a
    /// cache hit costs under a nanosecond).
    canonical_cached_ns: f64,
    /// `is_isomorphic_to` between two warmed invariants (per call).
    iso_cached_ns: f64,
    /// The frozen reference canonicalisation, when tractable at this scale.
    naive_canonical_ns: Option<u128>,
    /// Samples actually used for the construction stages at this scale.
    stage_samples: usize,
    /// Samples actually used for the cold canonical median (≤ `samples`).
    canonical_samples: usize,
    /// Samples actually used for the reference canonical median.
    naive_canonical_samples: Option<usize>,
    /// Giant-component sweep statistics: skeleton cells of the largest
    /// component, its Lemma 3.1 start choices, and the choices surviving the
    /// refined start filter (each survivor streams until its first losing
    /// token).
    giant: topo_core::SweepStats,
}

impl ScaleReport {
    fn stage(&self, name: &str) -> u128 {
        self.stages.iter().find(|(n, _)| *n == name).expect("stage present").1
    }

    fn top_speedup(&self) -> f64 {
        self.naive_top_ns as f64 / self.stage("top") as f64
    }

    fn arrangement_speedup(&self) -> f64 {
        self.naive_arrangement_ns as f64 / self.stage("arrangement") as f64
    }

    fn canonical_speedup(&self) -> Option<f64> {
        self.naive_canonical_ns.map(|n| n as f64 / self.canonical_first_ns as f64)
    }
}

/// Per-scale canonicalisation measurements (cold, cached, warmed isomorphism,
/// reference path) plus the sample counts actually used.
struct CanonicalReport {
    first_ns: u128,
    cached_ns: f64,
    iso_ns: f64,
    naive_ns: Option<u128>,
    samples: usize,
    naive_samples: Option<usize>,
}

/// Measures the canonicalisation stage on already-built invariants.
fn measure_canonical(
    instance: &SpatialInstance,
    cells: usize,
    samples: usize,
    quick: bool,
) -> CanonicalReport {
    // Cold canonicalisation: a fresh invariant per sample (construction is
    // untimed setup; the canonicalisation itself dominates anyway).
    let canonical_samples = samples.min(5);
    let canonical_first_ns = median_ns_with(
        canonical_samples,
        || topo_core::top(instance),
        |invariant| {
            invariant.canonical_code();
            invariant
        },
    );
    // Cached paths: warm two invariants once, then time per-call medians over
    // batches (a single call is tens of nanoseconds).
    let warm_a = topo_core::top(instance);
    let warm_b = topo_core::top(instance);
    warm_a.canonical_code();
    warm_b.canonical_code();
    let canonical_cached_ns = median_ns(samples, || {
        for _ in 0..CACHED_REPS {
            std::hint::black_box(std::hint::black_box(&warm_a).canonical_code());
        }
    }) as f64
        / CACHED_REPS as f64;
    let iso_cached_ns = median_ns(samples, || {
        for _ in 0..CACHED_REPS {
            std::hint::black_box(std::hint::black_box(&warm_a).is_isomorphic_to(&warm_b));
        }
    }) as f64
        / CACHED_REPS as f64;
    // The frozen reference path: super-quadratic, so sample sparsely and skip
    // entirely where a single run would take tens of minutes (or in quick/CI
    // mode, anything beyond the small scales).
    let cell_limit = if quick { 1100 } else { NAIVE_CANONICAL_CELL_LIMIT };
    let naive_samples =
        (cells <= cell_limit).then(|| if cells <= 500 { samples.min(3) } else { 1 });
    let naive_canonical_ns =
        naive_samples.map(|n| median_ns(n, || topo_core::canonical_code_naive(&warm_a)));
    CanonicalReport {
        first_ns: canonical_first_ns,
        cached_ns: canonical_cached_ns,
        iso_ns: iso_cached_ns,
        naive_ns: naive_canonical_ns,
        samples: canonical_samples,
        naive_samples,
    }
}

fn measure_scale(
    instance: &SpatialInstance,
    grid: usize,
    samples: usize,
    quick: bool,
) -> ScaleReport {
    // Every stage is timed in isolation (its inputs are prepared untimed),
    // so the recorded medians are genuinely per-stage; `top` is the
    // end-to-end total.
    let input = instance.to_arrangement_input();
    let arrangement_ns = median_ns(samples, || topo_core::arrangement::build_arrangement(&input));
    let arrangement = topo_core::arrangement::build_arrangement(&input);
    let classify_ns = median_ns(samples, || {
        topo_core::invariant::construct::classify_arrangement(instance, &input, &arrangement)
    });
    let reduce_ns = median_ns_with(
        samples,
        || topo_core::invariant::construct::classify_arrangement(instance, &input, &arrangement),
        |mut complex| {
            complex.reduce();
            complex
        },
    );
    let complex = {
        let mut complex = topo_core::invariant::build_complex(instance);
        complex.reduce();
        complex
    };
    let freeze_ns = median_ns(samples, || {
        TopologicalInvariant::from_complex(&complex, instance.schema().clone())
    });
    let top_ns = median_ns(samples, || topo_core::top(instance));
    let naive_arrangement_ns =
        median_ns(samples, || topo_core::arrangement::build_arrangement_naive(&input));
    let naive_top_ns = median_ns(samples, || topo_core::top_naive(instance));
    // Cheap re-freeze of the already-reduced complex; avoids one more full
    // end-to-end run just to read the cell count and sweep statistics.
    let frozen = TopologicalInvariant::from_complex(&complex, instance.schema().clone());
    let cells = frozen.cell_count();
    let giant = topo_core::sweep_stats(&frozen);
    let canonical = measure_canonical(instance, cells, samples, quick);
    ScaleReport {
        grid,
        cells,
        stages: vec![
            ("arrangement", arrangement_ns),
            ("classify", classify_ns),
            ("reduce", reduce_ns),
            ("freeze", freeze_ns),
            ("top", top_ns),
        ],
        naive_arrangement_ns,
        naive_top_ns,
        canonical_first_ns: canonical.first_ns,
        canonical_cached_ns: canonical.cached_ns,
        iso_cached_ns: canonical.iso_ns,
        naive_canonical_ns: canonical.naive_ns,
        stage_samples: samples,
        canonical_samples: canonical.samples,
        naive_canonical_samples: canonical.naive_samples,
        giant,
    }
}

/// One program of the datalog stage at one scale.
struct DatalogProgramReport {
    name: &'static str,
    semi_ns: u128,
    naive_ns: Option<u128>,
    semi_samples: usize,
    naive_samples: Option<usize>,
}

impl DatalogProgramReport {
    fn speedup(&self) -> Option<f64> {
        self.naive_ns.map(|n| n as f64 / self.semi_ns as f64)
    }
}

/// The datalog query-evaluation stage at one scale of one workload.
struct DatalogScaleReport {
    grid: usize,
    cells: usize,
    programs: Vec<DatalogProgramReport>,
}

/// Measures the `topo_queries::programs` fixpoint programs (stratified — the
/// mode the query library evaluates under) on the prepared invariant export
/// (`program_structure`, which adds the successor scaffolding the linear
/// connectivity program walks) of each scale: the delta-driven engine
/// against the frozen `datalog::naive` oracle. The reference engine stops
/// being measured for a workload once a median exceeds the time budget; the
/// budget-crossing scale itself is still recorded. (Since the library's
/// connectivity program became linear-size, the naive budget mostly matters
/// for the quadratic reference program measured by the demand stage.)
fn measure_datalog(
    gen: &dyn Fn(usize) -> SpatialInstance,
    samples: usize,
    quick: bool,
) -> Vec<DatalogScaleReport> {
    let budget = if quick { NAIVE_DATALOG_BUDGET_QUICK_NS } else { NAIVE_DATALOG_BUDGET_NS };
    let queries: [(&'static str, TopologicalQuery); 2] = [
        ("is_connected", TopologicalQuery::IsConnected(0)),
        ("has_hole", TopologicalQuery::HasHole(0)),
    ];
    let mut over_budget = [false; 2];
    let mut out = Vec::new();
    for &grid in &DATALOG_GRIDS {
        let instance = gen(grid);
        let invariant = topo_core::top(&instance);
        let structure = program_structure(&invariant);
        let mut programs = Vec::new();
        for (p, (name, query)) in queries.iter().enumerate() {
            let program = datalog_program(query, instance.schema()).expect("program available");
            let semi_ns =
                median_ns(samples, || program.run(&structure, Semantics::Stratified, usize::MAX));
            let (naive_ns, naive_samples) = if over_budget[p] {
                (None, None)
            } else {
                // One probe run decides how many samples the reference can
                // afford; slow probes stand alone as a 1-sample median.
                let probe = median_ns(1, || {
                    datalog_naive::run(&program, &structure, Semantics::Stratified, usize::MAX)
                });
                let (ns, used) = if probe <= 100_000_000 {
                    let extra = samples.min(3);
                    (
                        median_ns(extra, || {
                            datalog_naive::run(
                                &program,
                                &structure,
                                Semantics::Stratified,
                                usize::MAX,
                            )
                        }),
                        extra,
                    )
                } else {
                    (probe, 1)
                };
                if ns > budget {
                    over_budget[p] = true;
                }
                (Some(ns), Some(used))
            };
            programs.push(DatalogProgramReport {
                name,
                semi_ns,
                naive_ns,
                semi_samples: samples,
                naive_samples,
            });
        }
        out.push(DatalogScaleReport { grid, cells: invariant.cell_count(), programs });
    }
    out
}

/// The invariant-store service stage: a duplicate-heavy mixed workload
/// ingested and queried from scoped threads.
struct StoreReport {
    instances: usize,
    classes: usize,
    bases: usize,
    ingest_threads: usize,
    query_threads: usize,
    ingest_ns: u128,
    ingest_per_sec: f64,
    /// Queries issued per sweep (threads × rounds × instances × mix size).
    queries: u64,
    memo_ns: u128,
    memo_qps: f64,
    memo_hit_rate: f64,
    nomemo_ns: u128,
    nomemo_qps: f64,
    dedup_hits: u64,
}

impl StoreReport {
    fn memo_speedup(&self) -> f64 {
        self.memo_qps / self.nomemo_qps
    }
}

/// The store mix: the three cartographic generators over two seeds and three
/// small grids, plus the running examples, each repeated under `copies`
/// homeomorphic images (translation / rotation / reflection round-robin).
/// Copy-major order spreads the duplicates across the ingest stream, the way
/// a service would see them arrive.
fn store_workload(quick: bool) -> (usize, Vec<SpatialInstance>) {
    let copies = if quick { STORE_COPIES_QUICK } else { STORE_COPIES };
    let mut bases: Vec<SpatialInstance> = Vec::new();
    for seed in [1u64, 7] {
        for grid in [3usize, 4, 5] {
            let scale = Scale { grid };
            bases.push(sequoia_landcover(scale, seed));
            bases.push(sequoia_hydro(scale, seed));
            bases.push(ign_city(scale, seed));
        }
    }
    bases.push(figure1());
    bases.push(nested_rings(3, 2));
    bases.push(nested_rings(2, 3));
    let mut out = Vec::with_capacity(bases.len() * copies);
    for k in 0..copies {
        let shift = AffineMap::translation(k as i64 * 130_001, -(k as i64) * 70_003);
        let map = match k % 4 {
            1 => AffineMap::rotation90().compose(&shift),
            2 => AffineMap::reflection_x().compose(&shift),
            3 => AffineMap::rotation90().compose(&AffineMap::reflection_x()).compose(&shift),
            _ => shift,
        };
        for base in &bases {
            out.push(map.apply_instance(base));
        }
    }
    (bases.len(), out)
}

/// One timed sweep: every query thread walks every (instance, query) pair
/// `rounds` times, staggered so threads touch different keys at any moment.
fn store_query_sweep(
    store: &InvariantStore,
    instances: usize,
    queries: &[TopologicalQuery],
    rounds: usize,
) -> u128 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..STORE_QUERY_THREADS {
            s.spawn(move || {
                for _ in 0..rounds {
                    for step in 0..instances {
                        let id = (step + t * 101) % instances;
                        for query in queries {
                            std::hint::black_box(store.query(id, query));
                        }
                    }
                }
            });
        }
    });
    start.elapsed().as_nanos()
}

/// Measures the store stage: multi-threaded ingest throughput (the full
/// `top(I)` + canonicalisation + content-addressing pipeline per instance),
/// then the same query sweep against a memoising store and the
/// memo-disabled baseline — the speedup is what class-level memoisation
/// buys on a duplicate-heavy mix.
fn measure_store(quick: bool) -> StoreReport {
    let (bases, instances) = store_workload(quick);
    let queries = topo_bench::strategy_queries();
    let rounds = if quick { STORE_QUERY_ROUNDS_QUICK } else { STORE_QUERY_ROUNDS };

    let store = InvariantStore::default();
    let chunk = instances.len().div_ceil(STORE_INGEST_THREADS);
    let start = Instant::now();
    std::thread::scope(|s| {
        for slice in instances.chunks(chunk) {
            let store = &store;
            s.spawn(move || {
                for instance in slice {
                    store.ingest(instance);
                }
            });
        }
    });
    let ingest_ns = start.elapsed().as_nanos();

    let memo_ns = store_query_sweep(&store, instances.len(), &queries, rounds);
    let stats = store.stats();

    // The baseline store deduplicates identically but answers every query by
    // evaluating on the class representative (ingested untimed).
    let baseline = InvariantStore::new(StoreConfig::without_memo());
    std::thread::scope(|s| {
        for slice in instances.chunks(chunk) {
            let baseline = &baseline;
            s.spawn(move || {
                for instance in slice {
                    baseline.ingest(instance);
                }
            });
        }
    });
    let nomemo_ns = store_query_sweep(&baseline, instances.len(), &queries, rounds);

    let queries_per_sweep = (STORE_QUERY_THREADS * rounds * instances.len() * queries.len()) as u64;
    let per_sec = |count: u64, ns: u128| count as f64 / (ns as f64 / 1e9);
    StoreReport {
        instances: instances.len(),
        classes: store.class_count(),
        bases,
        ingest_threads: STORE_INGEST_THREADS,
        query_threads: STORE_QUERY_THREADS,
        ingest_ns,
        ingest_per_sec: per_sec(instances.len() as u64, ingest_ns),
        queries: queries_per_sweep,
        memo_ns,
        memo_qps: per_sec(queries_per_sweep, memo_ns),
        memo_hit_rate: stats.hit_rate(),
        nomemo_ns,
        nomemo_qps: per_sec(queries_per_sweep, nomemo_ns),
        dedup_hits: stats.dedup_hits,
    }
}

/// The durability stage at one workload size: snapshot write/load, WAL
/// append and replay throughput, and end-to-end recovery time.
struct RecoveryReport {
    copies: usize,
    instances: usize,
    classes: usize,
    wal_records: u64,
    wal_bytes: usize,
    ingest_log_ns: u128,
    ingest_log_per_sec: f64,
    wal_replay_ns: u128,
    wal_replay_records_per_sec: f64,
    snapshot_write_ns: u128,
    snapshot_bytes: usize,
    snapshot_load_ns: u128,
    mixed_recover_ns: u128,
    samples: usize,
}

/// A compact duplicate-heavy invariant pool for the durability stage: six
/// small bases, `copies` homeomorphic images each, pre-canonicalised so the
/// timed sections measure the persistence layer rather than `top(I)`.
fn persist_workload(copies: usize) -> Vec<Arc<TopologicalInvariant>> {
    let scale = Scale { grid: 3 };
    let bases = [
        sequoia_landcover(scale, 1),
        sequoia_hydro(scale, 1),
        ign_city(scale, 1),
        figure1(),
        nested_rings(2, 2),
        nested_rings(3, 2),
    ];
    let mut out = Vec::with_capacity(bases.len() * copies);
    for k in 0..copies {
        let shift = AffineMap::translation(k as i64 * 91_003, -(k as i64) * 47_057);
        let map = match k % 3 {
            1 => AffineMap::rotation90().compose(&shift),
            2 => AffineMap::reflection_x().compose(&shift),
            _ => shift,
        };
        for base in &bases {
            let invariant = Arc::new(topo_core::top(&map.apply_instance(base)));
            invariant.canonical_code();
            out.push(invariant);
        }
    }
    out
}

/// Measures the snapshot + WAL durability layer at three workload sizes:
/// WAL-logged ingest (append throughput), WAL-only recovery (replay
/// throughput), checkpoint (snapshot write), snapshot-only recovery
/// (snapshot load + decode) and a mixed snapshot + WAL recovery — all on
/// the in-memory backend, so the medium costs nothing and the format and
/// replay machinery are what is timed.
fn measure_persist(quick: bool) -> Vec<RecoveryReport> {
    let copies_list: [usize; 3] = if quick { [2, 4, 8] } else { [4, 10, 24] };
    let samples = if quick { 3 } else { 7 };
    let mut out = Vec::new();
    for &copies in &copies_list {
        let invariants = persist_workload(copies);

        // WAL-logged ingest (codes pre-warmed: locking + content addressing
        // + record encoding + append), plus a removal tail so the log holds
        // the full operation vocabulary.
        let backend = MemoryBackend::new();
        let store = InvariantStore::open(StoreConfig::default(), backend.clone())
            .expect("open empty store");
        let start = Instant::now();
        for invariant in &invariants {
            store.ingest_invariant(invariant.clone());
        }
        let ingest_log_ns = start.elapsed().as_nanos();
        let mut removed = 0u64;
        for id in (0..invariants.len()).step_by(10) {
            store.remove_instance(id);
            removed += 1;
        }
        let wal_records = invariants.len() as u64 + removed;
        let wal_bytes = backend.wal_bytes().len();

        // WAL-only recovery: replay every record from an empty base state.
        let wal_replay_ns = median_ns(samples, || {
            InvariantStore::open(StoreConfig::default(), backend.clone()).expect("wal replay")
        });

        // Checkpoint: encode + write the snapshot (the first call also
        // resets the WAL; later samples re-write the same state).
        let snapshot_write_ns = median_ns(samples, || store.checkpoint().expect("checkpoint"));
        let snapshot_bytes = backend.snapshot_bytes().map_or(0, |b| b.len());

        // Snapshot-only recovery (the WAL is empty after the checkpoint).
        let snapshot_load_ns = median_ns(samples, || {
            InvariantStore::open(StoreConfig::default(), backend.clone()).expect("snapshot load")
        });

        // Mixed recovery: a second generation of ingests (all dedup hits)
        // lands in the fresh WAL on top of the snapshot.
        for invariant in &invariants {
            store.ingest_invariant(invariant.clone());
        }
        let mixed_recover_ns = median_ns(samples, || {
            InvariantStore::open(StoreConfig::default(), backend.clone()).expect("mixed recovery")
        });

        let per_sec = |count: u64, ns: u128| count as f64 / (ns as f64 / 1e9);
        out.push(RecoveryReport {
            copies,
            instances: store.instance_count(),
            classes: store.class_count(),
            wal_records,
            wal_bytes,
            ingest_log_ns,
            ingest_log_per_sec: per_sec(invariants.len() as u64, ingest_log_ns),
            wal_replay_ns,
            wal_replay_records_per_sec: per_sec(wal_records, wal_replay_ns),
            snapshot_write_ns,
            snapshot_bytes,
            snapshot_load_ns,
            mixed_recover_ns,
            samples,
        });
    }
    out
}

/// The parallel stage at one pool size.
struct ParallelReport {
    threads: usize,
    top_ns: u128,
    canonical_ns: u128,
    batch_ingest_ns: u128,
}

/// The whole parallel stage: the sweep plus the context needed to read it.
struct ParallelStage {
    host_threads: usize,
    grid: usize,
    cells: usize,
    batch_size: usize,
    samples: usize,
    sweep: Vec<ParallelReport>,
}

impl ParallelStage {
    fn baseline(&self) -> &ParallelReport {
        self.sweep.iter().find(|r| r.threads == 1).expect("sweep includes 1 thread")
    }
}

/// Sweeps the in-tree thread pool over [`PARALLEL_THREADS`], measuring the
/// end-to-end `top(I)` build, a cold canonicalisation and the batched store
/// ingest at each pool size on the hydro workload (the grid-28 case the
/// ROADMAP names). The pool size is set via
/// `topo_parallel::set_global_threads` — the same switch `TOPO_THREADS`
/// feeds — and restored afterwards. On a host with fewer cores than the
/// sweep asks for, the curve goes flat instead of up; `host_threads` in the
/// JSON records how many cores the numbers were measured on.
fn measure_parallel(quick: bool) -> ParallelStage {
    let grid = if quick { PARALLEL_GRID_QUICK } else { PARALLEL_GRID };
    let samples = if quick { 3 } else { 5 };
    let instance = sequoia_hydro(Scale { grid }, SEED);
    let cells = topo_core::top(&instance).cell_count();

    // The batch the store stage ingests at each pool size: homeomorphic
    // copies of three small bases, so canonicalisation dominates and the
    // dedup path is exercised.
    let small = Scale { grid: 4 };
    let bases = [sequoia_landcover(small, SEED), sequoia_hydro(small, SEED), ign_city(small, SEED)];
    let mut batch: Vec<SpatialInstance> = Vec::new();
    for k in 0..8usize {
        let map = AffineMap::translation(k as i64 * 130_001, -(k as i64) * 70_003);
        for base in &bases {
            batch.push(map.apply_instance(base));
        }
    }

    let previous = topo_core::parallel::global_threads();
    let mut sweep = Vec::new();
    for &threads in &PARALLEL_THREADS {
        topo_core::parallel::set_global_threads(threads);
        let top_ns = median_ns(samples, || topo_core::top(&instance));
        let canonical_ns = median_ns_with(
            samples,
            || topo_core::top(&instance),
            |invariant| {
                invariant.canonical_code();
                invariant
            },
        );
        let batch_ingest_ns = median_ns_with(samples, InvariantStore::default, |store| {
            store.try_ingest_batch(&batch);
            store
        });
        sweep.push(ParallelReport { threads, top_ns, canonical_ns, batch_ingest_ns });
    }
    topo_core::parallel::set_global_threads(previous);

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    ParallelStage { host_threads, grid, cells, batch_size: batch.len(), samples, sweep }
}

/// The bound-goal single-source reachability demo at one scale: the
/// quadratic program's `Reach` relation queried as `Reach(seed, y)`, where
/// the magic-set rewrite restricts derivation to the seed's own component.
struct ReachDemo {
    seed: u32,
    answers: usize,
    goal_ns: u128,
    full_ns: u128,
}

impl ReachDemo {
    fn speedup(&self) -> f64 {
        self.full_ns as f64 / self.goal_ns as f64
    }
}

/// The demand stage at one scale of one workload.
struct DemandScaleReport {
    grid: usize,
    cells: usize,
    /// The library's linear connectivity program through `run_goal` (the
    /// magic-set rewrite + semi-naive engine + goal lookup).
    goal_ns: u128,
    /// The same program through plain bottom-up `run`.
    bottomup_ns: u128,
    /// The retired quadratic connectivity program, semi-naive bottom-up —
    /// the path BENCH_8 measured as `is_connected`.
    quadratic_ns: u128,
    /// The frozen naive oracle on the quadratic program, budget-capped.
    naive_ns: Option<u128>,
    samples: usize,
    naive_samples: Option<usize>,
    reach: Option<ReachDemo>,
}

impl DemandScaleReport {
    fn goal_vs_quadratic(&self) -> f64 {
        self.quadratic_ns as f64 / self.goal_ns as f64
    }

    fn goal_vs_bottomup(&self) -> f64 {
        self.bottomup_ns as f64 / self.goal_ns as f64
    }

    fn goal_vs_naive(&self) -> Option<f64> {
        self.naive_ns.map(|n| n as f64 / self.goal_ns as f64)
    }
}

/// Measures the goal-directed demand path on each scale's prepared export:
/// the library's linear connectivity program under `run_goal` (magic-set
/// rewrite, then the unchanged semi-naive engine) vs plain bottom-up `run`,
/// both against the quadratic connectivity program the query library used
/// before this stage existed (semi-naive, and the frozen naive oracle under
/// the usual budget). The `reach_from_seed` demo rewrites the quadratic
/// program for the bound goal `Reach(seed, y)` — single-source instead of
/// all-pairs reachability — which is where the rewrite's restriction is
/// asymptotic rather than constant-factor.
fn measure_demand(
    gen: &dyn Fn(usize) -> SpatialInstance,
    samples: usize,
    quick: bool,
) -> Vec<DemandScaleReport> {
    let budget = if quick { NAIVE_DATALOG_BUDGET_QUICK_NS } else { NAIVE_DATALOG_BUDGET_NS };
    let mut naive_over_budget = false;
    let mut out = Vec::new();
    for &grid in &DATALOG_GRIDS {
        let instance = gen(grid);
        let invariant = topo_core::top(&instance);
        let structure = program_structure(&invariant);
        let linear = datalog_program(&TopologicalQuery::IsConnected(0), instance.schema())
            .expect("connectivity program available");
        let goal = linear.goal_atom();
        let goal_ns = median_ns(samples, || {
            linear.run_goal(&goal, &structure, Semantics::Stratified, usize::MAX)
        });
        let bottomup_ns =
            median_ns(samples, || linear.run(&structure, Semantics::Stratified, usize::MAX));
        let quadratic = quadratic_connectivity_program(instance.schema(), 0);
        let quadratic_ns =
            median_ns(samples, || quadratic.run(&structure, Semantics::Stratified, usize::MAX));
        let (naive_ns, naive_samples) = if naive_over_budget {
            (None, None)
        } else {
            let probe = median_ns(1, || {
                datalog_naive::run(&quadratic, &structure, Semantics::Stratified, usize::MAX)
            });
            let (ns, used) = if probe <= 100_000_000 {
                let extra = samples.min(3);
                (
                    median_ns(extra, || {
                        datalog_naive::run(
                            &quadratic,
                            &structure,
                            Semantics::Stratified,
                            usize::MAX,
                        )
                    }),
                    extra,
                )
            } else {
                (probe, 1)
            };
            if ns > budget {
                naive_over_budget = true;
            }
            (Some(ns), Some(used))
        };
        // Bound-goal demo: seed from the first derived Reach tuple (any cell
        // of the region), then Reach(seed, y) goal-directed vs the full
        // bottom-up run + answer lookup.
        let full = quadratic
            .run(&structure, Semantics::Stratified, usize::MAX)
            .expect("quadratic program runs");
        let seed = full.relation("Reach").and_then(|r| r.sorted_tuples().first().map(|t| t[0]));
        let reach = seed.map(|s| {
            let reach_goal = Goal::new("Reach", vec![Term::Const(s), Term::Var(0)]);
            let answers = quadratic
                .run_goal(&reach_goal, &structure, Semantics::Stratified, usize::MAX)
                .expect("goal-directed run succeeds")
                .len();
            let reach_goal_ns = median_ns(samples, || {
                quadratic.run_goal(&reach_goal, &structure, Semantics::Stratified, usize::MAX)
            });
            let reach_full_ns = median_ns(samples, || {
                quadratic.run(&structure, Semantics::Stratified, usize::MAX).map(|r| {
                    topo_core::relational::datalog::magic::goal_answers(&r, "Reach", &reach_goal)
                })
            });
            ReachDemo { seed: s, answers, goal_ns: reach_goal_ns, full_ns: reach_full_ns }
        });
        out.push(DemandScaleReport {
            grid,
            cells: invariant.cell_count(),
            goal_ns,
            bottomup_ns,
            quadratic_ns,
            naive_ns,
            samples,
            naive_samples,
            reach,
        });
    }
    out
}

/// The incremental-maintenance stage at one scale of one workload: the
/// latency of a single-region edit round trip (remove one region, read the
/// repaired canonical hash, re-insert it, read again) through
/// [`MaintainedInvariant`], against the same state sequence via two cold
/// `top(I)` rebuilds.
struct IncrementalScaleReport {
    grid: usize,
    cells: usize,
    regions: usize,
    /// Median maintained round trip (two edits + two hash reads).
    incremental_ns: u128,
    /// Median cold round trip (two full `top` + canonicalisation runs).
    rebuild_ns: u128,
    samples: usize,
    /// Maintenance-cache counters accumulated over the whole measurement —
    /// the honesty record of how much work the repairs actually did.
    stats: topo_core::MaintainStats,
}

impl IncrementalScaleReport {
    fn speedup(&self) -> f64 {
        self.rebuild_ns as f64 / self.incremental_ns as f64
    }
}

/// Measures the incremental stage on one workload: per scale, a maintained
/// instance absorbs remove + re-insert round trips (rotating over the
/// regions) with the canonical hash read back after every edit, vs the two
/// cold rebuilds the same state sequence costs without maintenance. One
/// warm-up pass per region runs untimed, so the medians report the caches'
/// steady state — the regime maintenance exists for; the cold baseline has
/// no corresponding cache to warm.
fn measure_incremental(
    gen: &dyn Fn(usize) -> SpatialInstance,
    samples: usize,
) -> Vec<IncrementalScaleReport> {
    let mut out = Vec::new();
    for &grid in &INCREMENTAL_GRIDS {
        let instance = gen(grid);
        let regions = instance.schema().len();
        let mut maintained = MaintainedInvariant::from_instance(&instance);
        for r in 0..regions {
            let region = maintained.region(r).clone();
            maintained.remove_region(r);
            maintained.insert_region(r, region);
        }
        let cells = maintained.invariant().cell_count();
        let stats_before = maintained.stats();

        let mut turn = 0usize;
        let incremental_ns = median_ns(samples, || {
            let r = turn % regions;
            turn += 1;
            let region = maintained.region(r).clone();
            maintained.remove_region(r);
            std::hint::black_box(maintained.invariant().code_hash());
            maintained.insert_region(r, region);
            std::hint::black_box(maintained.invariant().code_hash());
        });
        let stats_after = maintained.stats();

        // The cold baseline over the identical state sequence: the edited
        // instances are prepared untimed; the rebuilds (and their cold
        // canonicalisations) are what is timed.
        let without: Vec<SpatialInstance> = (0..regions)
            .map(|r| {
                let mut w = instance.clone();
                w.set_region(r, Region::new());
                w
            })
            .collect();
        let mut turn = 0usize;
        let rebuild_ns = median_ns(samples, || {
            let r = turn % regions;
            turn += 1;
            std::hint::black_box(topo_core::top(&without[r]).code_hash());
            std::hint::black_box(topo_core::top(&instance).code_hash());
        });

        // Differential guard: the maintained invariant ends the measurement
        // bit-identical to a cold rebuild of the same state.
        assert_eq!(
            maintained.invariant().canonical_code(),
            topo_core::top(&instance).canonical_code(),
            "maintained invariant diverged from cold rebuild"
        );

        out.push(IncrementalScaleReport {
            grid,
            cells,
            regions,
            incremental_ns,
            rebuild_ns,
            samples,
            stats: topo_core::MaintainStats {
                edits: stats_after.edits - stats_before.edits,
                group_builds: stats_after.group_builds - stats_before.group_builds,
                group_reuses: stats_after.group_reuses - stats_before.group_reuses,
                pair_computes: stats_after.pair_computes - stats_before.pair_computes,
                pair_reuses: stats_after.pair_reuses - stats_before.pair_reuses,
            },
        });
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Stage names accepted by `--stage`, in run order.
const STAGE_NAMES: [&str; 7] =
    ["construction", "datalog", "demand", "store", "recovery", "parallel", "incremental"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench_runner [--quick] [--stage NAME]... [--out PATH]");
        eprintln!("stages: {}", STAGE_NAMES.join(", "));
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut selected: Vec<&str> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--stage" {
            match args.get(i + 1).map(String::as_str) {
                Some(name) => match STAGE_NAMES.iter().find(|s| **s == name) {
                    Some(stage) => selected.push(stage),
                    None => {
                        eprintln!("unknown stage {name:?}; stages: {}", STAGE_NAMES.join(", "));
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("--stage needs a name; stages: {}", STAGE_NAMES.join(", "));
                    std::process::exit(2);
                }
            }
        }
    }
    let run_stage = |name: &str| selected.is_empty() || selected.contains(&name);
    let stages_run: Vec<&str> = STAGE_NAMES.iter().copied().filter(|s| run_stage(s)).collect();
    // Quick mode never overwrites the committed 15-sample baseline unless
    // the caller passes `--out BENCH_9.json` explicitly.
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "BENCH_quick.json".to_string()
            } else {
                "BENCH_10.json".to_string()
            }
        });
    let samples = if quick { QUICK_SAMPLES } else { FULL_SAMPLES };

    type Workload = Box<dyn Fn(usize) -> SpatialInstance>;
    let workloads: Vec<(&str, Workload)> = vec![
        ("sequoia_landcover", Box::new(|grid| sequoia_landcover(Scale { grid }, SEED))),
        ("sequoia_hydro", Box::new(|grid| sequoia_hydro(Scale { grid }, SEED))),
        ("ign_city", Box::new(|grid| ign_city(Scale { grid }, SEED))),
    ];

    // Each stage contributes one complete `"key": value` fragment to
    // `sections`; joining them with commas keeps the JSON valid whichever
    // subset of stages `--stage` selects.
    let mut sections: Vec<String> = Vec::new();
    let mut header = String::new();
    header.push_str("  \"id\": \"BENCH_10\",\n");
    header.push_str(
        "  \"description\": \"top(I) construction, canonicalisation, datalog query \
         evaluation, the goal-directed demand path and the concurrent invariant store: \
         per-stage medians and speedups vs the frozen reference paths (naive seed \
         arrangement + slow-mode rational arithmetic; PR 2 String canonical codes; pre-PR 5 \
         naive datalog evaluator; the pre-PR 9 quadratic connectivity program). \
         canonical.first is a cold canonical_code() on a fresh invariant (the lazy \
         streamed Lemma 3.1 sweep); cached/iso are per-call costs on warmed invariants; \
         giant_component records the largest skeleton component and its start-choice \
         pruning; the datalog section runs the query library's fixpoint programs \
         (stratified) on prepared invariant exports (program_structure = to_structure + \
         successor scaffolding), semi-naive vs datalog::naive; the demand section compares \
         the library's linear connectivity program under the magic-set goal-directed path \
         (run_goal) with plain bottom-up evaluation, both against the retired quadratic \
         connectivity program (semi-naive and the naive oracle), and times a bound-goal \
         Reach(seed, y) rewrite where demand prunes derivation to one source's component; \
         the store section ingests a duplicate-heavy mix into the InvariantStore from \
         scoped threads and runs one query sweep against the memoising store and one \
         against the memo-disabled baseline (speedup = memo_qps / nomemo_qps); the \
         recovery section measures the snapshot + WAL durability layer on the in-memory \
         backend at three workload sizes: WAL-logged ingest and replay throughput, \
         snapshot write/load, and a mixed snapshot+WAL recovery; the parallel section \
         sweeps the in-tree topo-parallel pool over 1/2/4/8 threads on the hydro workload \
         — end-to-end top(I), cold canonicalisation and the batched store ingest per pool \
         size, with host_threads recording how many cores the sweep actually had (on a \
         single-core host the curve is honestly flat); the incremental section measures \
         single-region edit latency through MaintainedInvariant — remove one region, read \
         the repaired canonical hash, re-insert, read again, rotating over the regions — \
         against the same state sequence as two cold top(I) rebuilds, on warmed maintenance \
         caches (one untimed pass per region), with maintain_stats recording how many group \
         invariants each measurement rebuilt vs reused; stages_run records which stages \
         this file actually holds (--stage filtering); samples objects record the sample \
         counts actually used per median; naive medians are null where the reference path \
         is intractable\",\n",
    );
    header.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    header.push_str(&format!("  \"samples\": {samples},\n"));
    header.push_str(&format!("  \"cached_reps\": {CACHED_REPS},\n"));
    header.push_str(&format!("  \"datagen_seed\": {SEED},\n"));
    header.push_str(&format!(
        "  \"stages_run\": [{}]",
        stages_run.iter().map(|s| format!("\"{s}\"")).collect::<Vec<_>>().join(", ")
    ));
    sections.push(header);

    // (workload, grid, cells, cold canonical ns, giant stats) rows for the
    // end-of-run summary that CI greps out of the log.
    let mut summary: Vec<(String, usize, usize, u128, topo_core::SweepStats)> = Vec::new();
    if run_stage("construction") {
        let mut sec = String::new();
        sec.push_str("  \"workloads\": [\n");
        for (w, (name, gen)) in workloads.iter().enumerate() {
            eprintln!("== {name} ==");
            sec.push_str("    {\n");
            sec.push_str(&format!("      \"name\": \"{}\",\n", json_escape(name)));
            sec.push_str("      \"scales\": [\n");
            for (g, &grid) in GRIDS.iter().enumerate() {
                let instance = gen(grid);
                let report = measure_scale(&instance, grid, samples, quick);
                eprintln!(
                    "  grid {:>2}: cells {:>6}  top {:>12} ns  naive_top {:>12} ns  speedup {:>5.2}x \
                     (arrangement {:>5.2}x)",
                    grid,
                    report.cells,
                    report.stage("top"),
                    report.naive_top_ns,
                    report.top_speedup(),
                    report.arrangement_speedup(),
                );
                eprintln!(
                    "           canonical {:>12} ns  cached {:>8.2} ns  iso {:>8.2} ns  naive {}  \
                     speedup {}",
                    report.canonical_first_ns,
                    report.canonical_cached_ns,
                    report.iso_cached_ns,
                    report
                        .naive_canonical_ns
                        .map_or("(skipped)".to_string(), |n| format!("{n} ns")),
                    report.canonical_speedup().map_or("n/a".to_string(), |s| format!("{s:.0}x")),
                );
                summary.push((
                    name.to_string(),
                    report.grid,
                    report.cells,
                    report.canonical_first_ns,
                    report.giant,
                ));
                sec.push_str("        {\n");
                sec.push_str(&format!("          \"grid\": {},\n", report.grid));
                sec.push_str(&format!("          \"cells\": {},\n", report.cells));
                sec.push_str("          \"stages_median_ns\": {");
                for (s, (stage, ns)) in report.stages.iter().enumerate() {
                    if s > 0 {
                        sec.push_str(", ");
                    }
                    sec.push_str(&format!("\"{stage}\": {ns}"));
                }
                sec.push_str("},\n");
                sec.push_str(&format!(
                    "          \"canonical_median_ns\": {{\"first\": {}, \"cached\": {:.3}, \
                     \"iso_cached\": {:.3}}},\n",
                    report.canonical_first_ns, report.canonical_cached_ns, report.iso_cached_ns
                ));
                sec.push_str(&format!(
                    "          \"giant_component\": {{\"skeleton_cells\": {}, \"choices\": {}, \
                     \"surviving_choices\": {}}},\n",
                    report.giant.giant_skeleton_cells,
                    report.giant.giant_choices,
                    report.giant.giant_surviving_choices,
                ));
                sec.push_str(&format!(
                    "          \"samples_used\": {{\"stages\": {}, \"canonical_first\": {}, \
                     \"naive_canonical\": {}}},\n",
                    report.stage_samples,
                    report.canonical_samples,
                    report.naive_canonical_samples.map_or("null".to_string(), |n| n.to_string()),
                ));
                sec.push_str(&format!(
                    "          \"naive_median_ns\": {{\"arrangement\": {}, \"top\": {}, \
                     \"canonical\": {}}},\n",
                    report.naive_arrangement_ns,
                    report.naive_top_ns,
                    report.naive_canonical_ns.map_or("null".to_string(), |n| n.to_string()),
                ));
                sec.push_str(&format!(
                    "          \"speedup\": {{\"arrangement\": {:.2}, \"top\": {:.2}, \
                     \"canonical\": {}}}\n",
                    report.arrangement_speedup(),
                    report.top_speedup(),
                    report.canonical_speedup().map_or("null".to_string(), |s| format!("{s:.2}")),
                ));
                sec.push_str(if g + 1 < GRIDS.len() { "        },\n" } else { "        }\n" });
            }
            sec.push_str("      ]\n");
            sec.push_str(if w + 1 < workloads.len() { "    },\n" } else { "    }\n" });
        }
        sec.push_str("  ]");
        sections.push(sec);
    }

    // The datalog query-evaluation stage, at its own (smaller) scales.
    // Per-workload reports, kept for the end-of-run summary that CI greps
    // out of the log.
    let mut datalog_reports: Vec<(&str, Vec<DatalogScaleReport>)> = Vec::new();
    if run_stage("datalog") {
        let mut sec = String::new();
        sec.push_str("  \"datalog\": {\n");
        sec.push_str("    \"semantics\": \"stratified\",\n");
        sec.push_str(&format!(
            "    \"grids\": [{}],\n",
            DATALOG_GRIDS.map(|g| g.to_string()).join(", ")
        ));
        sec.push_str("    \"workloads\": [\n");
        for (w, (name, gen)) in workloads.iter().enumerate() {
            eprintln!("== {name} (datalog) ==");
            let scales = measure_datalog(gen, samples, quick);
            sec.push_str("      {\n");
            sec.push_str(&format!("        \"name\": \"{}\",\n", json_escape(name)));
            sec.push_str("        \"scales\": [\n");
            for (g, scale) in scales.iter().enumerate() {
                sec.push_str("          {\n");
                sec.push_str(&format!("            \"grid\": {},\n", scale.grid));
                sec.push_str(&format!("            \"cells\": {},\n", scale.cells));
                sec.push_str("            \"programs\": {");
                for (p, program) in scale.programs.iter().enumerate() {
                    if p > 0 {
                        sec.push_str(", ");
                    }
                    sec.push_str(&format!(
                        "\"{}\": {{\"semi_ns\": {}, \"naive_ns\": {}, \"speedup\": {}, \
                         \"samples_used\": {{\"semi\": {}, \"naive\": {}}}}}",
                        program.name,
                        program.semi_ns,
                        program.naive_ns.map_or("null".to_string(), |n| n.to_string()),
                        program.speedup().map_or("null".to_string(), |s| format!("{s:.2}")),
                        program.semi_samples,
                        program.naive_samples.map_or("null".to_string(), |n| n.to_string()),
                    ));
                    eprintln!(
                        "  grid {:>2}: cells {:>5} {:<13} semi {:>12} ns  naive {:>14}  speedup {}",
                        scale.grid,
                        scale.cells,
                        program.name,
                        program.semi_ns,
                        program.naive_ns.map_or("(skipped)".to_string(), |n| format!("{n} ns")),
                        program.speedup().map_or("n/a".to_string(), |s| format!("{s:.1}x")),
                    );
                }
                sec.push_str("}\n");
                sec.push_str(if g + 1 < scales.len() { "          },\n" } else { "          }\n" });
            }
            sec.push_str("        ]\n");
            sec.push_str(if w + 1 < workloads.len() { "      },\n" } else { "      }\n" });
            datalog_reports.push((name, scales));
        }
        sec.push_str("    ]\n");
        sec.push_str("  }");
        sections.push(sec);
    }

    // The demand stage: the goal-directed path vs bottom-up, vs the retired
    // quadratic program, plus the bound-goal reachability demo.
    let mut demand_reports: Vec<(&str, Vec<DemandScaleReport>)> = Vec::new();
    if run_stage("demand") {
        let mut sec = String::new();
        sec.push_str("  \"demand\": {\n");
        sec.push_str("    \"semantics\": \"stratified\",\n");
        sec.push_str("    \"query\": \"is_connected\",\n");
        sec.push_str(&format!(
            "    \"grids\": [{}],\n",
            DATALOG_GRIDS.map(|g| g.to_string()).join(", ")
        ));
        sec.push_str("    \"workloads\": [\n");
        for (w, (name, gen)) in workloads.iter().enumerate() {
            eprintln!("== {name} (demand) ==");
            let scales = measure_demand(gen, samples, quick);
            sec.push_str("      {\n");
            sec.push_str(&format!("        \"name\": \"{}\",\n", json_escape(name)));
            sec.push_str("        \"scales\": [\n");
            for (g, scale) in scales.iter().enumerate() {
                eprintln!(
                    "  grid {:>2}: cells {:>5} goal {:>12} ns  bottomup {:>12} ns  quadratic \
                     {:>12} ns  naive {:>14}  goal-vs-quadratic {:.1}x",
                    scale.grid,
                    scale.cells,
                    scale.goal_ns,
                    scale.bottomup_ns,
                    scale.quadratic_ns,
                    scale.naive_ns.map_or("(skipped)".to_string(), |n| format!("{n} ns")),
                    scale.goal_vs_quadratic(),
                );
                if let Some(reach) = &scale.reach {
                    eprintln!(
                        "           reach_from_seed {}: {} answers  goal {:>12} ns  full {:>12} \
                         ns  speedup {:.1}x",
                        reach.seed,
                        reach.answers,
                        reach.goal_ns,
                        reach.full_ns,
                        reach.speedup(),
                    );
                }
                sec.push_str("          {\n");
                sec.push_str(&format!("            \"grid\": {},\n", scale.grid));
                sec.push_str(&format!("            \"cells\": {},\n", scale.cells));
                sec.push_str(&format!(
                    "            \"library_linear\": {{\"goal_ns\": {}, \"bottomup_ns\": {}, \
                     \"samples\": {}}},\n",
                    scale.goal_ns, scale.bottomup_ns, scale.samples
                ));
                sec.push_str(&format!(
                    "            \"quadratic_reference\": {{\"semi_ns\": {}, \"naive_ns\": {}, \
                     \"samples_used\": {{\"semi\": {}, \"naive\": {}}}}},\n",
                    scale.quadratic_ns,
                    scale.naive_ns.map_or("null".to_string(), |n| n.to_string()),
                    scale.samples,
                    scale.naive_samples.map_or("null".to_string(), |n| n.to_string()),
                ));
                sec.push_str(&format!(
                    "            \"speedup\": {{\"goal_vs_quadratic\": {:.2}, \
                     \"goal_vs_bottomup\": {:.2}, \"goal_vs_naive\": {}}},\n",
                    scale.goal_vs_quadratic(),
                    scale.goal_vs_bottomup(),
                    scale.goal_vs_naive().map_or("null".to_string(), |s| format!("{s:.2}")),
                ));
                match &scale.reach {
                    Some(reach) => sec.push_str(&format!(
                        "            \"reach_from_seed\": {{\"seed\": {}, \"answers\": {}, \
                         \"goal_ns\": {}, \"full_ns\": {}, \"speedup\": {:.2}}}\n",
                        reach.seed,
                        reach.answers,
                        reach.goal_ns,
                        reach.full_ns,
                        reach.speedup(),
                    )),
                    None => sec.push_str("            \"reach_from_seed\": null\n"),
                }
                sec.push_str(if g + 1 < scales.len() { "          },\n" } else { "          }\n" });
            }
            sec.push_str("        ]\n");
            sec.push_str(if w + 1 < workloads.len() { "      },\n" } else { "      }\n" });
            demand_reports.push((name, scales));
        }
        sec.push_str("    ]\n");
        sec.push_str("  }");
        sections.push(sec);
    }

    // The concurrent invariant-store stage.
    if run_stage("store") {
        eprintln!("== store stage ==");
        let store = measure_store(quick);
        eprintln!(
            "  ingest  {:>6} instances ({} bases, {} classes) on {} threads: {:>12} ns  \
             ({:.0} instances/sec, {} dedup hits)",
            store.instances,
            store.bases,
            store.classes,
            store.ingest_threads,
            store.ingest_ns,
            store.ingest_per_sec,
            store.dedup_hits,
        );
        eprintln!(
            "  query   {:>6} queries on {} threads: memo {:>12} ns ({:.0} q/s, hit rate {:.4})  \
             no-memo {:>12} ns ({:.0} q/s)  memo speedup {:.1}x",
            store.queries,
            store.query_threads,
            store.memo_ns,
            store.memo_qps,
            store.memo_hit_rate,
            store.nomemo_ns,
            store.nomemo_qps,
            store.memo_speedup(),
        );
        let mut sec = String::new();
        sec.push_str("  \"store\": {\n");
        sec.push_str(&format!("    \"instances\": {},\n", store.instances));
        sec.push_str(&format!("    \"bases\": {},\n", store.bases));
        sec.push_str(&format!("    \"classes\": {},\n", store.classes));
        sec.push_str(&format!("    \"dedup_hits\": {},\n", store.dedup_hits));
        sec.push_str(&format!("    \"ingest_threads\": {},\n", store.ingest_threads));
        sec.push_str(&format!("    \"query_threads\": {},\n", store.query_threads));
        sec.push_str(&format!("    \"ingest_ns\": {},\n", store.ingest_ns));
        sec.push_str(&format!("    \"ingest_instances_per_sec\": {:.1},\n", store.ingest_per_sec));
        sec.push_str(&format!("    \"queries_per_sweep\": {},\n", store.queries));
        sec.push_str(&format!("    \"memo_sweep_ns\": {},\n", store.memo_ns));
        sec.push_str(&format!("    \"memo_queries_per_sec\": {:.1},\n", store.memo_qps));
        sec.push_str(&format!("    \"memo_hit_rate\": {:.6},\n", store.memo_hit_rate));
        sec.push_str(&format!("    \"nomemo_sweep_ns\": {},\n", store.nomemo_ns));
        sec.push_str(&format!("    \"nomemo_queries_per_sec\": {:.1},\n", store.nomemo_qps));
        sec.push_str(&format!("    \"memo_speedup\": {:.2}\n", store.memo_speedup()));
        sec.push_str("  }");
        sections.push(sec);
    }

    // The durability stage: snapshot + WAL persistence over the in-memory
    // backend, so the numbers isolate the encode/replay cost from disk I/O.
    if run_stage("recovery") {
        eprintln!("== recovery stage ==");
        let recovery = measure_persist(quick);
        let mut sec = String::new();
        sec.push_str("  \"recovery\": {\n");
        sec.push_str("    \"scales\": [\n");
        for (i, r) in recovery.iter().enumerate() {
            eprintln!(
                "  {:>5} instances ({} classes, {} wal records): ingest+log {:>11} ns \
                 ({:.0}/sec), replay {:>10} ns ({:.0} records/sec), snapshot write \
                 {:>9} ns ({} bytes), load {:>9} ns, mixed recover {:>10} ns",
                r.instances,
                r.classes,
                r.wal_records,
                r.ingest_log_ns,
                r.ingest_log_per_sec,
                r.wal_replay_ns,
                r.wal_replay_records_per_sec,
                r.snapshot_write_ns,
                r.snapshot_bytes,
                r.snapshot_load_ns,
                r.mixed_recover_ns,
            );
            sec.push_str("      {\n");
            sec.push_str(&format!("        \"copies\": {},\n", r.copies));
            sec.push_str(&format!("        \"instances\": {},\n", r.instances));
            sec.push_str(&format!("        \"classes\": {},\n", r.classes));
            sec.push_str(&format!("        \"wal_records\": {},\n", r.wal_records));
            sec.push_str(&format!("        \"wal_bytes\": {},\n", r.wal_bytes));
            sec.push_str(&format!("        \"ingest_log_ns\": {},\n", r.ingest_log_ns));
            sec.push_str(&format!(
                "        \"ingest_log_per_sec\": {:.1},\n",
                r.ingest_log_per_sec
            ));
            sec.push_str(&format!("        \"wal_replay_ns\": {},\n", r.wal_replay_ns));
            sec.push_str(&format!(
                "        \"wal_replay_records_per_sec\": {:.1},\n",
                r.wal_replay_records_per_sec
            ));
            sec.push_str(&format!("        \"snapshot_write_ns\": {},\n", r.snapshot_write_ns));
            sec.push_str(&format!("        \"snapshot_bytes\": {},\n", r.snapshot_bytes));
            sec.push_str(&format!("        \"snapshot_load_ns\": {},\n", r.snapshot_load_ns));
            sec.push_str(&format!("        \"mixed_recover_ns\": {},\n", r.mixed_recover_ns));
            sec.push_str(&format!("        \"samples\": {}\n", r.samples));
            sec.push_str(if i + 1 < recovery.len() { "      },\n" } else { "      }\n" });
        }
        sec.push_str("    ]\n");
        sec.push_str("  }");
        sections.push(sec);
    }

    // The thread-pool sweep: speedup-vs-threads curves for the parallel
    // construction pipeline and the batched store ingest.
    if run_stage("parallel") {
        eprintln!("== parallel stage ==");
        let parallel = measure_parallel(quick);
        let base = parallel.baseline();
        let (base_top, base_canonical, base_batch) =
            (base.top_ns, base.canonical_ns, base.batch_ingest_ns);
        eprintln!(
            "  hydro grid {} ({} cells), batch of {} instances, host threads {}",
            parallel.grid, parallel.cells, parallel.batch_size, parallel.host_threads,
        );
        let mut sec = String::new();
        sec.push_str("  \"parallel\": {\n");
        sec.push_str(&format!("    \"host_threads\": {},\n", parallel.host_threads));
        sec.push_str("    \"workload\": \"sequoia_hydro\",\n");
        sec.push_str(&format!("    \"grid\": {},\n", parallel.grid));
        sec.push_str(&format!("    \"cells\": {},\n", parallel.cells));
        sec.push_str(&format!("    \"batch_size\": {},\n", parallel.batch_size));
        sec.push_str(&format!("    \"samples\": {},\n", parallel.samples));
        sec.push_str("    \"sweep\": [\n");
        for (i, r) in parallel.sweep.iter().enumerate() {
            let speedup = |baseline: u128, ns: u128| baseline as f64 / ns as f64;
            eprintln!(
                "  threads {:>2}: top {:>12} ns ({:.2}x)  canonical {:>12} ns ({:.2}x)  \
                 batch ingest {:>12} ns ({:.2}x)",
                r.threads,
                r.top_ns,
                speedup(base_top, r.top_ns),
                r.canonical_ns,
                speedup(base_canonical, r.canonical_ns),
                r.batch_ingest_ns,
                speedup(base_batch, r.batch_ingest_ns),
            );
            sec.push_str("      {\n");
            sec.push_str(&format!("        \"threads\": {},\n", r.threads));
            sec.push_str(&format!("        \"top_ns\": {},\n", r.top_ns));
            sec.push_str(&format!("        \"canonical_ns\": {},\n", r.canonical_ns));
            sec.push_str(&format!("        \"batch_ingest_ns\": {},\n", r.batch_ingest_ns));
            sec.push_str(&format!(
                "        \"speedup_vs_1\": {{\"top\": {:.2}, \"canonical\": {:.2}, \
                 \"batch_ingest\": {:.2}}}\n",
                speedup(base_top, r.top_ns),
                speedup(base_canonical, r.canonical_ns),
                speedup(base_batch, r.batch_ingest_ns),
            ));
            sec.push_str(if i + 1 < parallel.sweep.len() { "      },\n" } else { "      }\n" });
        }
        sec.push_str("    ]\n");
        sec.push_str("  }");
        sections.push(sec);
    }

    // The incremental-maintenance stage: single-region edit latency through
    // MaintainedInvariant vs cold rebuilds of the same states.
    let mut incremental_reports: Vec<(&str, Vec<IncrementalScaleReport>)> = Vec::new();
    if run_stage("incremental") {
        let host_threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut sec = String::new();
        sec.push_str("  \"incremental\": {\n");
        sec.push_str(&format!("    \"host_threads\": {host_threads},\n"));
        sec.push_str(&format!(
            "    \"grids\": [{}],\n",
            INCREMENTAL_GRIDS.map(|g| g.to_string()).join(", ")
        ));
        sec.push_str("    \"workloads\": [\n");
        for (w, (name, gen)) in workloads.iter().enumerate() {
            eprintln!("== {name} (incremental) ==");
            let scales = measure_incremental(gen, samples);
            sec.push_str("      {\n");
            sec.push_str(&format!("        \"name\": \"{}\",\n", json_escape(name)));
            sec.push_str("        \"scales\": [\n");
            for (g, scale) in scales.iter().enumerate() {
                eprintln!(
                    "  grid {:>2}: cells {:>6}  edit round trip {:>12} ns  rebuild {:>12} ns  \
                     speedup {:>5.1}x  (groups rebuilt {} / reused {})",
                    scale.grid,
                    scale.cells,
                    scale.incremental_ns,
                    scale.rebuild_ns,
                    scale.speedup(),
                    scale.stats.group_builds,
                    scale.stats.group_reuses,
                );
                sec.push_str("          {\n");
                sec.push_str(&format!("            \"grid\": {},\n", scale.grid));
                sec.push_str(&format!("            \"cells\": {},\n", scale.cells));
                sec.push_str(&format!("            \"regions\": {},\n", scale.regions));
                sec.push_str(&format!(
                    "            \"edit_round_trip_ns\": {},\n",
                    scale.incremental_ns
                ));
                sec.push_str(&format!(
                    "            \"rebuild_round_trip_ns\": {},\n",
                    scale.rebuild_ns
                ));
                sec.push_str(&format!("            \"speedup\": {:.2},\n", scale.speedup()));
                sec.push_str(&format!("            \"samples_used\": {},\n", scale.samples));
                sec.push_str(&format!(
                    "            \"maintain_stats\": {{\"edits\": {}, \"group_builds\": {}, \
                     \"group_reuses\": {}, \"pair_computes\": {}, \"pair_reuses\": {}}}\n",
                    scale.stats.edits,
                    scale.stats.group_builds,
                    scale.stats.group_reuses,
                    scale.stats.pair_computes,
                    scale.stats.pair_reuses,
                ));
                sec.push_str(if g + 1 < scales.len() { "          },\n" } else { "          }\n" });
            }
            sec.push_str("        ]\n");
            sec.push_str(if w + 1 < workloads.len() { "      },\n" } else { "      }\n" });
            incremental_reports.push((name, scales));
        }
        sec.push_str("    ]\n");
        sec.push_str("  }");
        sections.push(sec);
    }

    let out = format!("{{\n{}\n}}\n", sections.join(",\n"));
    std::fs::write(&out_path, &out).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");

    // Cold-canonicalisation summary, one line per workload/scale, so CI logs
    // (and humans skimming them) see canonicalisation regressions at a
    // glance without opening the JSON.
    if !summary.is_empty() {
        eprintln!("== cold canonical_code() per workload ==");
        for (name, grid, cells, first_ns, giant) in &summary {
            eprintln!(
                "  {name:<20} grid {grid:>2}  cells {cells:>6}  giant {:>6}  choices {:>6} -> \
                 {:<4} cold {:>12} ns",
                giant.giant_skeleton_cells,
                giant.giant_choices,
                giant.giant_surviving_choices,
                first_ns,
            );
        }
    }

    // Same for the datalog query-evaluation stage: one line per
    // workload/scale/program, semi-naive vs the frozen reference engine.
    if !datalog_reports.is_empty() {
        eprintln!("== datalog stage per workload ==");
        for (name, scales) in &datalog_reports {
            for scale in scales {
                for program in &scale.programs {
                    eprintln!(
                        "  {name:<20} grid {:>2}  cells {:>6}  {:<13} semi {:>12} ns  \
                         naive {:>14}  speedup {}",
                        scale.grid,
                        scale.cells,
                        program.name,
                        program.semi_ns,
                        program.naive_ns.map_or("(skipped)".to_string(), |n| format!("{n} ns")),
                        program.speedup().map_or("n/a".to_string(), |s| format!("{s:.1}x")),
                    );
                }
            }
        }
    }

    // The incremental stage: maintained edit latency vs cold rebuilds, one
    // line per workload/scale, greppable from CI logs.
    if !incremental_reports.is_empty() {
        eprintln!("== incremental stage per workload ==");
        for (name, scales) in &incremental_reports {
            for scale in scales {
                eprintln!(
                    "  {name:<20} grid {:>2}  cells {:>6}  edit {:>12} ns  rebuild {:>12} ns  \
                     speedup {:>5.1}x",
                    scale.grid,
                    scale.cells,
                    scale.incremental_ns,
                    scale.rebuild_ns,
                    scale.speedup(),
                );
            }
        }
    }

    // And the demand stage: goal-directed vs bottom-up vs the retired
    // quadratic program, one line per workload/scale.
    if !demand_reports.is_empty() {
        eprintln!("== demand stage per workload ==");
        for (name, scales) in &demand_reports {
            for scale in scales {
                eprintln!(
                    "  {name:<20} grid {:>2}  cells {:>6}  goal {:>12} ns  bottomup {:>12} ns  \
                     quadratic {:>12} ns  goal-vs-quadratic {:.1}x  goal-vs-bottomup {:.2}x",
                    scale.grid,
                    scale.cells,
                    scale.goal_ns,
                    scale.bottomup_ns,
                    scale.quadratic_ns,
                    scale.goal_vs_quadratic(),
                    scale.goal_vs_bottomup(),
                );
            }
        }
    }
}
