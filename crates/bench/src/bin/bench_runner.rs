//! Machine-readable perf baseline runner.
//!
//! Measures the `geometry → arrangement → invariant` construction path stage
//! by stage *and* the canonicalisation stage (`canonical_code`, cached
//! re-reads, cached isomorphism checks, plus the giant-component sweep
//! statistics behind the lazy Lemma 3.1 serialisation) on the seeded
//! cartographic workloads, at three datagen scales, against the frozen
//! pre-optimisation reference paths (`topo_core::top_naive`,
//! `topo_core::canonical_code_naive`), and writes the medians to a JSON file
//! so every perf PR has a recorded trajectory to beat. `BENCH_4.json` at the
//! repository root is the committed baseline (`BENCH_3.json` is the PR 3
//! record, `BENCH_2.json` the PR 2 construction-only one); see DESIGN.md,
//! "Performance" and "Canonicalisation".
//!
//! ```text
//! bench_runner [--quick] [--out PATH]
//! ```
//!
//! `--quick` drops the sample count and skips the reference canonicalisation
//! on the scales where it is intractable (for CI smoke coverage); the default
//! sample count matches the committed baseline. Every median in the JSON is
//! accompanied by the sample count actually used for it, so quick-mode
//! records are honest about how little they measured. Requires the
//! `naive-reference` feature:
//!
//! ```text
//! cargo run --release -p topo-bench --features naive-reference \
//!     --bin bench_runner -- --quick --out BENCH_ci.json
//! ```

use topo_bench::{median_ns, median_ns_with};
use topo_core::{SpatialInstance, TopologicalInvariant};
use topo_datagen::{ign_city, sequoia_hydro, sequoia_landcover, Scale};

const FULL_SAMPLES: usize = 15;
const QUICK_SAMPLES: usize = 5;
const GRIDS: [usize; 3] = [8, 16, 28];
const SEED: u64 = 7;
/// The reference canonicalisation is super-quadratic; above this cell count a
/// single sample would take tens of minutes, so it is recorded as `null`.
const NAIVE_CANONICAL_CELL_LIMIT: usize = 3000;
/// Inner repetitions when timing the (sub-microsecond) cached paths.
const CACHED_REPS: u32 = 1024;

struct ScaleReport {
    grid: usize,
    cells: usize,
    /// (stage name, optimised median ns).
    stages: Vec<(&'static str, u128)>,
    naive_arrangement_ns: u128,
    naive_top_ns: u128,
    /// First `canonical_code()` call on a fresh invariant (cache cold).
    canonical_first_ns: u128,
    /// Re-reading the code from the cache (per call; fractional because a
    /// cache hit costs under a nanosecond).
    canonical_cached_ns: f64,
    /// `is_isomorphic_to` between two warmed invariants (per call).
    iso_cached_ns: f64,
    /// The frozen reference canonicalisation, when tractable at this scale.
    naive_canonical_ns: Option<u128>,
    /// Samples actually used for the construction stages at this scale.
    stage_samples: usize,
    /// Samples actually used for the cold canonical median (≤ `samples`).
    canonical_samples: usize,
    /// Samples actually used for the reference canonical median.
    naive_canonical_samples: Option<usize>,
    /// Giant-component sweep statistics: skeleton cells of the largest
    /// component, its Lemma 3.1 start choices, and the choices surviving the
    /// refined start filter (each survivor streams until its first losing
    /// token).
    giant: topo_core::SweepStats,
}

impl ScaleReport {
    fn stage(&self, name: &str) -> u128 {
        self.stages.iter().find(|(n, _)| *n == name).expect("stage present").1
    }

    fn top_speedup(&self) -> f64 {
        self.naive_top_ns as f64 / self.stage("top") as f64
    }

    fn arrangement_speedup(&self) -> f64 {
        self.naive_arrangement_ns as f64 / self.stage("arrangement") as f64
    }

    fn canonical_speedup(&self) -> Option<f64> {
        self.naive_canonical_ns.map(|n| n as f64 / self.canonical_first_ns as f64)
    }
}

/// Per-scale canonicalisation measurements (cold, cached, warmed isomorphism,
/// reference path) plus the sample counts actually used.
struct CanonicalReport {
    first_ns: u128,
    cached_ns: f64,
    iso_ns: f64,
    naive_ns: Option<u128>,
    samples: usize,
    naive_samples: Option<usize>,
}

/// Measures the canonicalisation stage on already-built invariants.
fn measure_canonical(
    instance: &SpatialInstance,
    cells: usize,
    samples: usize,
    quick: bool,
) -> CanonicalReport {
    // Cold canonicalisation: a fresh invariant per sample (construction is
    // untimed setup; the canonicalisation itself dominates anyway).
    let canonical_samples = samples.min(5);
    let canonical_first_ns = median_ns_with(
        canonical_samples,
        || topo_core::top(instance),
        |invariant| {
            invariant.canonical_code();
            invariant
        },
    );
    // Cached paths: warm two invariants once, then time per-call medians over
    // batches (a single call is tens of nanoseconds).
    let warm_a = topo_core::top(instance);
    let warm_b = topo_core::top(instance);
    warm_a.canonical_code();
    warm_b.canonical_code();
    let canonical_cached_ns = median_ns(samples, || {
        for _ in 0..CACHED_REPS {
            std::hint::black_box(std::hint::black_box(&warm_a).canonical_code());
        }
    }) as f64
        / CACHED_REPS as f64;
    let iso_cached_ns = median_ns(samples, || {
        for _ in 0..CACHED_REPS {
            std::hint::black_box(std::hint::black_box(&warm_a).is_isomorphic_to(&warm_b));
        }
    }) as f64
        / CACHED_REPS as f64;
    // The frozen reference path: super-quadratic, so sample sparsely and skip
    // entirely where a single run would take tens of minutes (or in quick/CI
    // mode, anything beyond the small scales).
    let cell_limit = if quick { 1100 } else { NAIVE_CANONICAL_CELL_LIMIT };
    let naive_samples =
        (cells <= cell_limit).then(|| if cells <= 500 { samples.min(3) } else { 1 });
    let naive_canonical_ns =
        naive_samples.map(|n| median_ns(n, || topo_core::canonical_code_naive(&warm_a)));
    CanonicalReport {
        first_ns: canonical_first_ns,
        cached_ns: canonical_cached_ns,
        iso_ns: iso_cached_ns,
        naive_ns: naive_canonical_ns,
        samples: canonical_samples,
        naive_samples,
    }
}

fn measure_scale(
    instance: &SpatialInstance,
    grid: usize,
    samples: usize,
    quick: bool,
) -> ScaleReport {
    // Every stage is timed in isolation (its inputs are prepared untimed),
    // so the recorded medians are genuinely per-stage; `top` is the
    // end-to-end total.
    let input = instance.to_arrangement_input();
    let arrangement_ns = median_ns(samples, || topo_core::arrangement::build_arrangement(&input));
    let arrangement = topo_core::arrangement::build_arrangement(&input);
    let classify_ns = median_ns(samples, || {
        topo_core::invariant::construct::classify_arrangement(instance, &input, &arrangement)
    });
    let reduce_ns = median_ns_with(
        samples,
        || topo_core::invariant::construct::classify_arrangement(instance, &input, &arrangement),
        |mut complex| {
            complex.reduce();
            complex
        },
    );
    let complex = {
        let mut complex = topo_core::invariant::build_complex(instance);
        complex.reduce();
        complex
    };
    let freeze_ns = median_ns(samples, || {
        TopologicalInvariant::from_complex(&complex, instance.schema().clone())
    });
    let top_ns = median_ns(samples, || topo_core::top(instance));
    let naive_arrangement_ns =
        median_ns(samples, || topo_core::arrangement::build_arrangement_naive(&input));
    let naive_top_ns = median_ns(samples, || topo_core::top_naive(instance));
    // Cheap re-freeze of the already-reduced complex; avoids one more full
    // end-to-end run just to read the cell count and sweep statistics.
    let frozen = TopologicalInvariant::from_complex(&complex, instance.schema().clone());
    let cells = frozen.cell_count();
    let giant = topo_core::sweep_stats(&frozen);
    let canonical = measure_canonical(instance, cells, samples, quick);
    ScaleReport {
        grid,
        cells,
        stages: vec![
            ("arrangement", arrangement_ns),
            ("classify", classify_ns),
            ("reduce", reduce_ns),
            ("freeze", freeze_ns),
            ("top", top_ns),
        ],
        naive_arrangement_ns,
        naive_top_ns,
        canonical_first_ns: canonical.first_ns,
        canonical_cached_ns: canonical.cached_ns,
        iso_cached_ns: canonical.iso_ns,
        naive_canonical_ns: canonical.naive_ns,
        stage_samples: samples,
        canonical_samples: canonical.samples,
        naive_canonical_samples: canonical.naive_samples,
        giant,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Quick mode never overwrites the committed 15-sample baseline unless
    // the caller passes `--out BENCH_3.json` explicitly.
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "BENCH_quick.json".to_string()
            } else {
                "BENCH_4.json".to_string()
            }
        });
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench_runner [--quick] [--out PATH]");
        return;
    }
    let samples = if quick { QUICK_SAMPLES } else { FULL_SAMPLES };

    type Workload = Box<dyn Fn(usize) -> SpatialInstance>;
    let workloads: Vec<(&str, Workload)> = vec![
        ("sequoia_landcover", Box::new(|grid| sequoia_landcover(Scale { grid }, SEED))),
        ("sequoia_hydro", Box::new(|grid| sequoia_hydro(Scale { grid }, SEED))),
        ("ign_city", Box::new(|grid| ign_city(Scale { grid }, SEED))),
    ];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"id\": \"BENCH_4\",\n");
    out.push_str(
        "  \"description\": \"top(I) construction and canonicalisation: per-stage medians \
         and speedups vs the frozen reference paths (naive seed arrangement + slow-mode \
         rational arithmetic; PR 2 String canonical codes). canonical.first is a cold \
         canonical_code() on a fresh invariant (the lazy streamed Lemma 3.1 sweep); \
         cached/iso are per-call costs on warmed invariants; giant_component records the \
         largest skeleton component and its start-choice pruning; samples objects record \
         the sample counts actually used per median; naive_canonical is null where the \
         reference path is intractable\",\n",
    );
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"cached_reps\": {CACHED_REPS},\n"));
    out.push_str(&format!("  \"datagen_seed\": {SEED},\n"));
    out.push_str("  \"workloads\": [\n");
    // (workload, grid, cells, cold canonical ns, giant stats) rows for the
    // end-of-run summary that CI greps out of the log.
    let mut summary: Vec<(String, usize, usize, u128, topo_core::SweepStats)> = Vec::new();

    for (w, (name, gen)) in workloads.iter().enumerate() {
        eprintln!("== {name} ==");
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(name)));
        out.push_str("      \"scales\": [\n");
        for (g, &grid) in GRIDS.iter().enumerate() {
            let instance = gen(grid);
            let report = measure_scale(&instance, grid, samples, quick);
            eprintln!(
                "  grid {:>2}: cells {:>6}  top {:>12} ns  naive_top {:>12} ns  speedup {:>5.2}x \
                 (arrangement {:>5.2}x)",
                grid,
                report.cells,
                report.stage("top"),
                report.naive_top_ns,
                report.top_speedup(),
                report.arrangement_speedup(),
            );
            eprintln!(
                "           canonical {:>12} ns  cached {:>8.2} ns  iso {:>8.2} ns  naive {}  \
                 speedup {}",
                report.canonical_first_ns,
                report.canonical_cached_ns,
                report.iso_cached_ns,
                report.naive_canonical_ns.map_or("(skipped)".to_string(), |n| format!("{n} ns")),
                report.canonical_speedup().map_or("n/a".to_string(), |s| format!("{s:.0}x")),
            );
            summary.push((
                name.to_string(),
                report.grid,
                report.cells,
                report.canonical_first_ns,
                report.giant,
            ));
            out.push_str("        {\n");
            out.push_str(&format!("          \"grid\": {},\n", report.grid));
            out.push_str(&format!("          \"cells\": {},\n", report.cells));
            out.push_str("          \"stages_median_ns\": {");
            for (s, (stage, ns)) in report.stages.iter().enumerate() {
                if s > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{stage}\": {ns}"));
            }
            out.push_str("},\n");
            out.push_str(&format!(
                "          \"canonical_median_ns\": {{\"first\": {}, \"cached\": {:.3}, \
                 \"iso_cached\": {:.3}}},\n",
                report.canonical_first_ns, report.canonical_cached_ns, report.iso_cached_ns
            ));
            out.push_str(&format!(
                "          \"giant_component\": {{\"skeleton_cells\": {}, \"choices\": {}, \
                 \"surviving_choices\": {}}},\n",
                report.giant.giant_skeleton_cells,
                report.giant.giant_choices,
                report.giant.giant_surviving_choices,
            ));
            out.push_str(&format!(
                "          \"samples_used\": {{\"stages\": {}, \"canonical_first\": {}, \
                 \"naive_canonical\": {}}},\n",
                report.stage_samples,
                report.canonical_samples,
                report.naive_canonical_samples.map_or("null".to_string(), |n| n.to_string()),
            ));
            out.push_str(&format!(
                "          \"naive_median_ns\": {{\"arrangement\": {}, \"top\": {}, \
                 \"canonical\": {}}},\n",
                report.naive_arrangement_ns,
                report.naive_top_ns,
                report.naive_canonical_ns.map_or("null".to_string(), |n| n.to_string()),
            ));
            out.push_str(&format!(
                "          \"speedup\": {{\"arrangement\": {:.2}, \"top\": {:.2}, \
                 \"canonical\": {}}}\n",
                report.arrangement_speedup(),
                report.top_speedup(),
                report.canonical_speedup().map_or("null".to_string(), |s| format!("{s:.2}")),
            ));
            out.push_str(if g + 1 < GRIDS.len() { "        },\n" } else { "        }\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if w + 1 < workloads.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&out_path, &out).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");

    // Cold-canonicalisation summary, one line per workload/scale, so CI logs
    // (and humans skimming them) see canonicalisation regressions at a
    // glance without opening the JSON.
    eprintln!("== cold canonical_code() per workload ==");
    for (name, grid, cells, first_ns, giant) in &summary {
        eprintln!(
            "  {name:<20} grid {grid:>2}  cells {cells:>6}  giant {:>6}  choices {:>6} -> {:<4} \
             cold {:>12} ns",
            giant.giant_skeleton_cells,
            giant.giant_choices,
            giant.giant_surviving_choices,
            first_ns,
        );
    }
}
