//! Machine-readable perf baseline runner.
//!
//! Measures the `geometry → arrangement → invariant` construction path stage
//! by stage on the seeded cartographic workloads, at three datagen scales,
//! against the frozen pre-optimisation reference path
//! (`topo_core::top_naive`), and writes the medians to a JSON file so every
//! perf PR has a recorded trajectory to beat. `BENCH_2.json` at the
//! repository root is the committed baseline; see DESIGN.md, "Performance".
//!
//! ```text
//! bench_runner [--quick] [--out PATH]
//! ```
//!
//! `--quick` drops the sample count (for CI smoke coverage); the default
//! sample count matches the committed baseline. Requires the
//! `naive-reference` feature:
//!
//! ```text
//! cargo run --release -p topo-bench --features naive-reference \
//!     --bin bench_runner -- --quick --out BENCH_ci.json
//! ```

use std::time::Instant;
use topo_core::{SpatialInstance, TopologicalInvariant};
use topo_datagen::{ign_city, sequoia_hydro, sequoia_landcover, Scale};

const FULL_SAMPLES: usize = 15;
const QUICK_SAMPLES: usize = 5;
const GRIDS: [usize; 3] = [8, 16, 28];
const SEED: u64 = 7;

/// Median of the timed samples of one closure, in nanoseconds.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u128 {
    median_ns_with(samples, || (), |()| f())
}

/// Like [`median_ns`], but re-running an untimed `setup` before every timed
/// sample, so mutating stages can be measured in isolation.
fn median_ns_with<S, T>(
    samples: usize,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let state = setup();
            let start = Instant::now();
            std::hint::black_box(f(state));
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct ScaleReport {
    grid: usize,
    cells: usize,
    /// (stage name, optimised median ns).
    stages: Vec<(&'static str, u128)>,
    naive_arrangement_ns: u128,
    naive_top_ns: u128,
}

impl ScaleReport {
    fn stage(&self, name: &str) -> u128 {
        self.stages.iter().find(|(n, _)| *n == name).expect("stage present").1
    }

    fn top_speedup(&self) -> f64 {
        self.naive_top_ns as f64 / self.stage("top") as f64
    }

    fn arrangement_speedup(&self) -> f64 {
        self.naive_arrangement_ns as f64 / self.stage("arrangement") as f64
    }
}

fn measure_scale(instance: &SpatialInstance, grid: usize, samples: usize) -> ScaleReport {
    // Every stage is timed in isolation (its inputs are prepared untimed),
    // so the recorded medians are genuinely per-stage; `top` is the
    // end-to-end total.
    let input = instance.to_arrangement_input();
    let arrangement_ns = median_ns(samples, || topo_core::arrangement::build_arrangement(&input));
    let arrangement = topo_core::arrangement::build_arrangement(&input);
    let classify_ns = median_ns(samples, || {
        topo_core::invariant::construct::classify_arrangement(instance, &input, &arrangement)
    });
    let reduce_ns = median_ns_with(
        samples,
        || topo_core::invariant::construct::classify_arrangement(instance, &input, &arrangement),
        |mut complex| {
            complex.reduce();
            complex
        },
    );
    let complex = {
        let mut complex = topo_core::invariant::build_complex(instance);
        complex.reduce();
        complex
    };
    let freeze_ns = median_ns(samples, || {
        TopologicalInvariant::from_complex(&complex, instance.schema().clone())
    });
    let top_ns = median_ns(samples, || topo_core::top(instance));
    let naive_arrangement_ns =
        median_ns(samples, || topo_core::arrangement::build_arrangement_naive(&input));
    let naive_top_ns = median_ns(samples, || topo_core::top_naive(instance));
    // Cheap re-freeze of the already-reduced complex; avoids one more full
    // end-to-end run just to read the cell count.
    let cells =
        TopologicalInvariant::from_complex(&complex, instance.schema().clone()).cell_count();
    ScaleReport {
        grid,
        cells,
        stages: vec![
            ("arrangement", arrangement_ns),
            ("classify", classify_ns),
            ("reduce", reduce_ns),
            ("freeze", freeze_ns),
            ("top", top_ns),
        ],
        naive_arrangement_ns,
        naive_top_ns,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Quick mode never overwrites the committed 15-sample baseline unless
    // the caller passes `--out BENCH_2.json` explicitly.
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if quick {
                "BENCH_quick.json".to_string()
            } else {
                "BENCH_2.json".to_string()
            }
        });
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench_runner [--quick] [--out PATH]");
        return;
    }
    let samples = if quick { QUICK_SAMPLES } else { FULL_SAMPLES };

    let workloads: Vec<(&str, Box<dyn Fn(usize) -> SpatialInstance>)> = vec![
        ("sequoia_landcover", Box::new(|grid| sequoia_landcover(Scale { grid }, SEED))),
        ("sequoia_hydro", Box::new(|grid| sequoia_hydro(Scale { grid }, SEED))),
        ("ign_city", Box::new(|grid| ign_city(Scale { grid }, SEED))),
    ];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"id\": \"BENCH_2\",\n");
    out.push_str(
        "  \"description\": \"top(I) construction: per-stage medians and speedup vs the \
         frozen pre-optimisation reference path (naive seed arrangement + slow-mode \
         rational arithmetic)\",\n",
    );
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"datagen_seed\": {SEED},\n"));
    out.push_str("  \"workloads\": [\n");

    for (w, (name, gen)) in workloads.iter().enumerate() {
        eprintln!("== {name} ==");
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(name)));
        out.push_str("      \"scales\": [\n");
        for (g, &grid) in GRIDS.iter().enumerate() {
            let instance = gen(grid);
            let report = measure_scale(&instance, grid, samples);
            eprintln!(
                "  grid {:>2}: cells {:>6}  top {:>12} ns  naive_top {:>12} ns  speedup {:>5.2}x \
                 (arrangement {:>5.2}x)",
                grid,
                report.cells,
                report.stage("top"),
                report.naive_top_ns,
                report.top_speedup(),
                report.arrangement_speedup(),
            );
            out.push_str("        {\n");
            out.push_str(&format!("          \"grid\": {},\n", report.grid));
            out.push_str(&format!("          \"cells\": {},\n", report.cells));
            out.push_str("          \"stages_median_ns\": {");
            for (s, (stage, ns)) in report.stages.iter().enumerate() {
                if s > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{stage}\": {ns}"));
            }
            out.push_str("},\n");
            out.push_str(&format!(
                "          \"naive_median_ns\": {{\"arrangement\": {}, \"top\": {}}},\n",
                report.naive_arrangement_ns, report.naive_top_ns
            ));
            out.push_str(&format!(
                "          \"speedup\": {{\"arrangement\": {:.2}, \"top\": {:.2}}}\n",
                report.arrangement_speedup(),
                report.top_speedup()
            ));
            out.push_str(if g + 1 < GRIDS.len() { "        },\n" } else { "        }\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if w + 1 < workloads.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::write(&out_path, &out).expect("write benchmark baseline");
    eprintln!("wrote {out_path}");
}
