//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run -p topo-bench --bin experiments [--release] -- [ids...]`
//! where ids are `e1 … e8`, `fig1`, `fig3`, `fig9`, `fig10`, or `all`
//! (default). Each experiment prints the rows/series described in DESIGN.md's
//! experiment index and EXPERIMENTS.md records the expected shape.

use std::time::Duration;
use topo_bench::*;
use topo_core::{
    datalog_program, evaluate_direct, evaluate_on_invariant, invert, top, InvariantStats,
    PointFormula, Semantics,
};
use topo_datagen as datagen;
use topo_translate::{
    all_invariant_orderings, cycles_of, equivalent_lemma_4_7, orderings_agree,
    SingleRegionTranslator, TranslatedQuery,
};

const EXPERIMENTS: [(&str, fn()); 12] = [
    ("e1", e1_dataset_statistics),
    ("e2", e2_construction_scaling),
    ("e3", e3_inversion),
    ("e4", e4_orderings),
    ("e5", e5_counting),
    ("e6", e6_fixpoint_translation),
    ("e7", e7_fo_translation),
    ("e8", e8_strategies),
    ("fig1", fig1_component_tree),
    ("fig3", fig3_cones_and_cycles),
    ("fig9", fig9_successor_vs_cyclic),
    ("fig10", fig10_fo_inv_stronger),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if arg != "all" && !EXPERIMENTS.iter().any(|(id, _)| id == arg) {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
            eprintln!("warning: unknown experiment id '{arg}' (known: all, {})", known.join(", "));
        }
    }
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let mut ran_any = false;
    for (id, run) in EXPERIMENTS {
        if run_all || args.iter().any(|a| a == id) {
            run();
            ran_any = true;
        }
    }
    if !ran_any {
        eprintln!("error: no experiment matched the given ids");
        std::process::exit(1);
    }
}

fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// E1 — the dataset-statistics table of the practical-considerations section.
fn e1_dataset_statistics() {
    header("E1  Dataset statistics: raw data vs topological invariant");
    let rows = vec![
        dataset_row(
            "sequoia-landcover",
            &datagen::sequoia_landcover(datagen::Scale::large(), 1),
            SEQUOIA_BYTES_PER_POINT,
        ),
        dataset_row(
            "sequoia-hydro",
            &datagen::sequoia_hydro(datagen::Scale::large(), 2),
            SEQUOIA_BYTES_PER_POINT,
        ),
        dataset_row(
            "ign-orange-city",
            &datagen::ign_city(datagen::Scale::medium(), 3),
            IGN_BYTES_PER_POINT,
        ),
    ];
    print_dataset_table(&rows);
    println!();
    println!(
        "Paper's published figures for the real data sets: landcover 1/90, hydro 1/300, IGN 1/72;"
    );
    println!("average lines per point 4.5, maxima 12 (Sequoia) and 8 (IGN).");
}

/// E2 — invariant construction scaling (Theorem 2.1's polynomial bound).
fn e2_construction_scaling() {
    header("E2  Invariant construction scaling (Theorem 2.1)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "grid", "points", "cells", "ratio", "build time"
    );
    for grid in [4usize, 8, 16, 24, 32] {
        let instance = datagen::sequoia_landcover(datagen::Scale { grid }, 7);
        let (invariant, duration) = build_invariant(&instance);
        let stats = InvariantStats::compute(&invariant);
        println!(
            "{:<10} {:>10} {:>10} {:>9.1}x {:>12.1?}",
            grid,
            instance.point_count(),
            stats.cells,
            instance.raw_bytes(SEQUOIA_BYTES_PER_POINT) as f64 / stats.bytes.max(1) as f64,
            duration
        );
    }
}

/// E3 — inversion (Theorem 2.2): rebuild a linear instance and check the
/// round trip.
fn e3_inversion() {
    header("E3  Inversion of the invariant (Theorem 2.2)");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "instance", "cells", "invert", "re-top", "isomorphic", "size"
    );
    let workloads: Vec<(&str, topo_core::SpatialInstance)> = vec![
        ("hydro (tiny)", datagen::sequoia_hydro(datagen::Scale::tiny(), 5)),
        ("hydro (medium)", datagen::sequoia_hydro(datagen::Scale::medium(), 5)),
        ("nested rings (5 levels)", datagen::nested_rings(5, 2)),
        ("scattered islands (12)", datagen::scattered_islands(12)),
    ];
    for (name, instance) in workloads {
        let invariant = top(&instance);
        let (rebuilt, invert_time) = timed(|| invert(&invariant));
        match rebuilt {
            Ok(rebuilt) => {
                let (re_invariant, retop_time) = timed(|| top(&rebuilt));
                println!(
                    "{:<28} {:>8} {:>10.1?} {:>10.1?} {:>12} {:>8}",
                    name,
                    invariant.cell_count(),
                    invert_time,
                    retop_time,
                    re_invariant.is_isomorphic_to(&invariant),
                    rebuilt.point_count()
                );
            }
            Err(err) => println!("{name:<28} inversion unsupported: {err}"),
        }
    }
}

/// E4 — Lemma 3.1 / Theorem 3.2: all parameterised orderings agree on
/// order-invariant queries.
fn e4_orderings() {
    header("E4  Parameterised orderings (Lemma 3.1 / Theorem 3.2)");
    let instance = datagen::figure1();
    let invariant = top(&instance);
    let orderings = all_invariant_orderings(&invariant, 512);
    println!(
        "figure-1 instance: {} components, {} cells, {} orderings generated",
        invariant.components().len(),
        invariant.cell_count(),
        orderings.len()
    );
    let (agree, value) = orderings_agree(&invariant, 512, |ordering| {
        // An order-invariant query evaluated relative to the order: the
        // number of edges contained in region 0.
        ordering
            .order
            .iter()
            .filter(|&&(kind, id)| {
                kind == topo_core::invariant::CellKind::Edge
                    && invariant.cell_in_region(kind, id, 0)
            })
            .count()
    });
    println!("order-invariant query agrees across all orderings: {agree} (value {value:?})");
}

/// E5 — Theorem 3.4: counting is needed and sufficient for component parity.
fn e5_counting() {
    header("E5  Fixpoint+counting on arbitrary invariants (Theorem 3.4)");
    println!("{:<10} {:>12} {:>14} {:>14}", "islands", "parity", "via counting", "runtime");
    for count in [3usize, 4, 7, 8, 12] {
        let instance = datagen::scattered_islands(count);
        let invariant = top(&instance);
        let mut structure = invariant.to_structure();
        structure.add_numeric_relations();
        let program =
            topo_core::queries::programs::even_closed_curves_program(instance.schema(), 0);
        let (result, duration) = timed(|| {
            let out = program.run(&structure, Semantics::Stratified, usize::MAX).unwrap();
            out.relation("Answer").map(|r| !r.is_empty()).unwrap_or(false)
        });
        println!("{:<10} {:>12} {:>14} {:>14.1?}", count, count % 2 == 0, result, duration);
    }
    println!("(fixpoint alone cannot express this query; fixpoint+counting captures PTIME on invariants)");
}

/// E6 — Theorem 4.1/4.2: linear-time translation into fixpoint(+counting).
fn e6_fixpoint_translation() {
    header("E6  Linear-time translation FO_top -> fixpoint+counting (Thm 4.1)");
    println!(
        "{:<14} {:>12} {:>16} {:>16} {:>10}",
        "quant. depth", "formula size", "translation time", "eval on inv", "answer"
    );
    let instance = datagen::nested_rings(3, 1);
    let invariant = top(&instance);
    for depth in 1..=4usize {
        let formula = nested_exists_formula(depth);
        let (translated, translate_time) = timed(|| TranslatedQuery::new(formula));
        let (answer, eval_time) = timed(|| translated.evaluate(&invariant).unwrap());
        println!(
            "{:<14} {:>12} {:>16.1?} {:>16.1?} {:>10}",
            depth,
            translated.size(),
            translate_time,
            eval_time,
            answer
        );
    }
    println!("(translation cost grows linearly with the formula; compare with E7)");
}

/// A sentence of the given quantifier depth: ∃p1 … ∃pk (region 0 contains all
/// of them and they are pairwise x-ordered).
fn nested_exists_formula(depth: usize) -> PointFormula {
    let mut conjuncts: Vec<PointFormula> =
        (0..depth as u32).map(|v| PointFormula::InRegion { region: 0, var: v }).collect();
    for v in 1..depth as u32 {
        conjuncts.push(PointFormula::LessX(v - 1, v));
    }
    let mut formula = PointFormula::And(conjuncts);
    for v in (0..depth as u32).rev() {
        formula = PointFormula::Exists(v, Box::new(formula));
    }
    formula
}

/// E7 — Theorem 4.9: translation into FO_inv for single-region schemas; the
/// cost explodes with the quantifier-depth parameter r.
fn e7_fo_translation() {
    header("E7  Translation into FO_inv for single-region schemas (Thm 4.9)");
    println!(
        "{:<6} {:>12} {:>14} {:>16} {:>10}",
        "r", "candidates", "classes kept", "translation time", "correct"
    );
    // Candidate cone instances: stars with 1..4 polyline arms from a common
    // centre — their cone types (coloured cycles) differ, so the translator
    // has genuinely distinct ≈r classes to examine.
    let candidates: Vec<topo_core::SpatialInstance> = (1..=4usize)
        .map(|arms| {
            let mut instance =
                topo_core::SpatialInstance::new(topo_core::Schema::from_names(["P"]));
            let mut region = topo_core::Region::new();
            for i in 0..arms {
                let dx = 100 + 37 * i as i64;
                let dy = 100 - 23 * i as i64;
                region.add_polyline(vec![
                    topo_core::Point::origin(),
                    topo_core::Point::from_ints(dx, dy),
                ]);
            }
            instance.set_region(0, region);
            instance
        })
        .collect();
    // Sentence (depth 2): the region contains two distinct points.
    let sentence = PointFormula::Exists(
        0,
        Box::new(PointFormula::Exists(
            1,
            Box::new(PointFormula::And(vec![
                PointFormula::InRegion { region: 0, var: 0 },
                PointFormula::InRegion { region: 0, var: 1 },
                PointFormula::Not(Box::new(PointFormula::Eq(0, 1))),
            ])),
        )),
    );
    for r in 1..=2usize {
        let translator = SingleRegionTranslator::new(r, 0, candidates.clone());
        let ((query, examined), duration) = timed(|| translator.translate(&sentence));
        let test_invariant = top(&candidates[2]);
        let correct = query.evaluate(&test_invariant);
        println!(
            "{:<6} {:>12} {:>14} {:>16.1?} {:>10}",
            r,
            examined,
            query.class_count(),
            duration,
            correct
        );
    }
    println!("(the FO target pays a cost that grows rapidly with r; the fixpoint target of E6 stays linear)");
}

/// E8 — the four evaluation strategies of the practical-considerations
/// section.
fn e8_strategies() {
    header("E8  Evaluation strategies (i) direct, (ii/iii) on the invariant, (iv) on the rebuilt instance");
    let instance = datagen::sequoia_hydro(datagen::Scale { grid: 6 }, 11);
    let (invariant, build_time) = build_invariant(&instance);
    println!(
        "workload: hydrography, {} raw points -> {} invariant cells (construction {:?})",
        instance.point_count(),
        invariant.cell_count(),
        build_time
    );
    let rebuilt = invert(&invariant).ok();
    let structure = topo_core::program_structure(&invariant);
    println!(
        "{:<42} {:>12} {:>12} {:>12} {:>12}",
        "query", "(i) direct", "(iii) invariant", "(ii) datalog", "(iv) rebuilt"
    );
    for query in strategy_queries() {
        let (direct, t_direct) = timed(|| evaluate_direct(&query, &instance));
        let (on_inv, t_inv) = timed(|| evaluate_on_invariant(&query, &invariant));
        let datalog = datalog_program(&query, instance.schema())
            .map(|program| timed(|| program.run_goal_boolean(&structure, Semantics::Stratified)));
        let rebuilt_eval = rebuilt.as_ref().map(|r| timed(|| evaluate_direct(&query, r)));
        assert_eq!(direct, on_inv, "strategies disagree on {query:?}");
        let fmt = |value: bool, t: Duration| format!("{value} {t:.1?}");
        println!(
            "{:<42} {:>12} {:>12} {:>12} {:>12}",
            query.describe(instance.schema()),
            fmt(direct, t_direct),
            fmt(on_inv, t_inv),
            datalog.map(|(v, t)| fmt(v, t)).unwrap_or_else(|| "-".into()),
            rebuilt_eval.map(|(v, t)| fmt(v, t)).unwrap_or_else(|| "-".into()),
        );
    }
}

/// Figure 1 / Figure 2 — the running instance and its connected-component
/// tree.
fn fig1_component_tree() {
    header("Fig 1/2  Connected-component tree of the running example");
    let instance = datagen::figure1();
    let invariant = top(&instance);
    println!(
        "components: {}   cells: {}   faces: {}",
        invariant.components().len(),
        invariant.cell_count(),
        invariant.face_count()
    );
    for (c, component) in invariant.components().iter().enumerate() {
        println!(
            "  component c{}: depth {}, parent face {}, {} vertices, {} edges, owns faces {:?}",
            c + 1,
            component.depth,
            component.parent_face,
            component.vertices.len(),
            component.edges.len(),
            invariant.owned_faces(c)
        );
    }
}

/// Figures 3–5 — cones and coloured cycles of a single-region instance.
fn fig3_cones_and_cycles() {
    header("Fig 3-5  cones(I) and cycles(I) for a single-region instance");
    let mut region = topo_core::Region::rectangle(0, 0, 100, 100);
    region.add_polyline(vec![
        topo_core::Point::from_ints(100, 100),
        topo_core::Point::from_ints(160, 100),
        topo_core::Point::from_ints(160, 160),
    ]);
    region.add_polyline(vec![
        topo_core::Point::from_ints(0, 100),
        topo_core::Point::from_ints(-60, 160),
    ]);
    let mut instance = topo_core::SpatialInstance::new(topo_core::Schema::from_names(["P"]));
    instance.set_region(0, region);
    let invariant = top(&instance);
    let cycles = cycles_of(&invariant, 0);
    println!("{} vertices -> {} coloured cycles", invariant.vertex_count(), cycles.len());
    for (v, cycle) in cycles.iter().enumerate() {
        let rendered: String = cycle
            .colors
            .iter()
            .map(|c| match (c.is_face, c.in_region) {
                (true, true) => '#',
                (true, false) => 'o',
                (false, true) => 'E',
                (false, false) => 'e',
            })
            .collect();
        println!("  vertex {v}: [{rendered}]  (#: face in P, o: face outside, E/e: edge in/out)");
    }
}

/// Figure 9 — with only the successor form of Orientation, FO on the
/// invariant cannot distinguish instances that FO_top(R,<) distinguishes.
fn fig9_successor_vs_cyclic() {
    header("Fig 9  Cyclic order vs successor on the invariant");
    // Two one-cone instances with petals (faces) and lines around a single
    // vertex, arranged as face/lines/faces/lines vs faces/faces/lines/lines.
    let a = fig9_instance(&[1, 2, 1, 2]);
    let b = fig9_instance(&[1, 1, 2, 2]);
    let inv_a = top(&a);
    let inv_b = top(&b);
    println!(
        "  invariants isomorphic: {} (the instances are topologically different)",
        inv_a.is_isomorphic_to(&inv_b)
    );
    let full =
        topo_core::relational::fo_equivalent(&inv_a.to_structure(), &inv_b.to_structure(), 1);
    let succ = topo_core::relational::fo_equivalent(
        &inv_a.to_structure_successor_only(),
        &inv_b.to_structure_successor_only(),
        1,
    );
    println!("  FO_1 distinguishes them with the full cyclic Orientation: {}", !full);
    println!("  FO_1 distinguishes them with successor-only orientation:  {}", !succ);
    println!(
        "  (the paper's Remark (i) after Theorem 4.9: as the line bundles grow, no FO_inv sentence"
    );
    println!(
        "   over the successor-only invariant distinguishes the two families, so the full cyclic"
    );
    println!("   order is necessary for the first-order translation)");
}

/// A single-cone instance: `pattern[i]` faces (triangular petals) followed by
/// a bundle of lines, all sharing the origin vertex.
fn fig9_instance(pattern: &[usize]) -> topo_core::SpatialInstance {
    let mut region = topo_core::Region::new();
    let mut angle = 0usize;
    let slots = pattern.iter().sum::<usize>() * 6 + pattern.len() * 3;
    let coord = |k: usize, radius: i64| {
        let theta = (k as f64 / slots as f64) * std::f64::consts::TAU;
        topo_core::Point::from_ints(
            (radius as f64 * theta.cos()) as i64,
            (radius as f64 * theta.sin()) as i64,
        )
    };
    for &petals in pattern {
        for _ in 0..petals {
            let a = coord(angle, 400);
            let b = coord(angle + 2, 400);
            region.add_ring(vec![topo_core::Point::origin(), a, b]);
            angle += 6;
        }
        // A single line after each petal group (a stand-in for the paper's
        // large bundles, kept small so the EF-game check stays tractable).
        region.add_polyline(vec![topo_core::Point::origin(), coord(angle, 500)]);
        angle += 3;
    }
    let mut instance = topo_core::SpatialInstance::new(topo_core::Schema::from_names(["P"]));
    instance.set_region(0, region);
    instance
}

/// Figure 10 — FO_inv is strictly more expressive than FO_top(R,<): two
/// instances with the same cone types but different invariants.
fn fig10_fo_inv_stronger() {
    header("Fig 10  FO_inv distinguishes instances that FO_top(R,<) cannot");
    // Instance I: two disjoint disks; instance J: one disk containing another
    // disk in its interior hole... The paper's example: same cones, different
    // global arrangement. We use: two disjoint annuli vs nested annuli.
    let i = datagen::nested_rings(2, 2); // two side-by-side nested pairs
    let mut region_a = topo_core::Region::new();
    let mut region_b = topo_core::Region::new();
    // J: four rings all nested inside each other, alternating regions.
    for level in 0..4i64 {
        let inset = level * 500;
        let ring = vec![
            topo_core::Point::from_ints(inset, inset),
            topo_core::Point::from_ints(20_000 - inset, inset),
            topo_core::Point::from_ints(20_000 - inset, 20_000 - inset),
            topo_core::Point::from_ints(inset, 20_000 - inset),
        ];
        if level % 2 == 0 {
            region_a.add_ring(ring);
        } else {
            region_b.add_ring(ring);
        }
    }
    let j = topo_core::SpatialInstance::from_regions([("even", region_a), ("odd", region_b)]);
    let inv_i = top(&i);
    let inv_j = top(&j);
    println!(
        "  cone multisets equal (no vertices in either): {}",
        inv_i.vertex_count() == 0 && inv_j.vertex_count() == 0
    );
    println!("  cycles(I) ≈1 cycles(J): {}", equivalent_lemma_4_7(&inv_i, &inv_j, 0, 1));
    println!("  invariants isomorphic: {}", inv_i.is_isomorphic_to(&inv_j));
    println!("  (FO over the invariant can count nesting depth; FO_top(R,<) cannot by [KPV97])");
}
