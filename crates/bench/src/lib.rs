//! Shared helpers for the benchmark and experiment harness.
//!
//! The `experiments` binary regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md, "Experiment / figure / table index"); the
//! Criterion benches measure the same pipelines with statistical rigour.
//! Between them they exercise invariant construction (Theorem 2.1),
//! inversion (Theorem 2.2), the Lemma 3.1 orderings, the fixpoint
//! translations (Theorems 4.1/4.2), the single-region `FO_inv` translation
//! (Theorem 4.9), and the four evaluation strategies of the
//! practical-considerations section.

use std::time::{Duration, Instant};
use topo_core::{InvariantStats, SpatialInstance, TopologicalInvariant};

/// Bytes per stored point used by the paper for its raw-data size estimates
/// (Sequoia 2000 stores 20-byte points; IGN 18-byte points).
pub const SEQUOIA_BYTES_PER_POINT: usize = 20;
/// Bytes per stored point for the IGN-style data set.
pub const IGN_BYTES_PER_POINT: usize = 18;

/// One row of the dataset-statistics table (experiment E1).
#[derive(Clone, Debug)]
pub struct DatasetRow {
    /// Data-set label.
    pub name: String,
    /// Number of polygons / polylines in the raw data.
    pub polygons: usize,
    /// Number of points in the raw data.
    pub points: usize,
    /// Raw size in bytes (points × bytes-per-point).
    pub raw_bytes: usize,
    /// Number of cells of the topological invariant.
    pub cells: usize,
    /// Invariant size in bytes.
    pub invariant_bytes: usize,
    /// Size ratio raw / invariant (the paper reports 1/72 – 1/300).
    pub ratio: f64,
    /// Average number of lines meeting at a point.
    pub avg_degree: f64,
    /// Maximum number of lines meeting at a point.
    pub max_degree: usize,
    /// Time to construct the invariant.
    pub construction: Duration,
}

/// Computes one dataset row.
pub fn dataset_row(name: &str, instance: &SpatialInstance, bytes_per_point: usize) -> DatasetRow {
    let start = Instant::now();
    let invariant = topo_core::top(instance);
    let construction = start.elapsed();
    let stats = InvariantStats::compute(&invariant);
    let raw_bytes = instance.raw_bytes(bytes_per_point);
    DatasetRow {
        name: name.to_string(),
        polygons: instance.polygon_count(),
        points: instance.point_count(),
        raw_bytes,
        cells: stats.cells,
        invariant_bytes: stats.bytes,
        ratio: if stats.bytes == 0 { 0.0 } else { raw_bytes as f64 / stats.bytes as f64 },
        avg_degree: stats.average_degree,
        max_degree: stats.max_degree,
        construction,
    }
}

/// Renders the dataset table.
pub fn print_dataset_table(rows: &[DatasetRow]) {
    println!(
        "{:<22} {:>9} {:>10} {:>12} {:>9} {:>12} {:>8} {:>9} {:>7} {:>10}",
        "dataset",
        "polygons",
        "points",
        "raw bytes",
        "cells",
        "inv bytes",
        "ratio",
        "avg deg",
        "max",
        "build"
    );
    for row in rows {
        println!(
            "{:<22} {:>9} {:>10} {:>12} {:>9} {:>12} {:>7.0}x {:>9.2} {:>7} {:>9.1?}",
            row.name,
            row.polygons,
            row.points,
            row.raw_bytes,
            row.cells,
            row.invariant_bytes,
            row.ratio,
            row.avg_degree,
            row.max_degree,
            row.construction
        );
    }
}

/// Measures a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// The median of a sorted-or-not slice of nanosecond samples: the middle
/// element for odd counts, the mean of the two middle elements (rounded down)
/// for even counts, and 0 for an empty slice — callers must record the sample
/// count alongside the median so a zero-sample "median" is never mistaken for
/// a measurement.
pub fn median_of_ns(samples: &mut [u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        // Mean of the two middle samples; u128 headroom makes the sum safe.
        (samples[mid - 1] + samples[mid]) / 2
    }
}

/// Median of `samples` timed runs of one closure, in nanoseconds.
///
/// Returns 0 when `samples == 0` (and runs nothing); see [`median_of_ns`] for
/// the even-count behaviour.
pub fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u128 {
    median_ns_with(samples, || (), |()| f())
}

/// Like [`median_ns`], but re-running an untimed `setup` before every timed
/// sample, so mutating stages can be measured in isolation.
pub fn median_ns_with<S, T>(
    samples: usize,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let state = setup();
            let start = Instant::now();
            std::hint::black_box(f(state));
            start.elapsed().as_nanos()
        })
        .collect();
    median_of_ns(&mut times)
}

/// A small suite of library queries exercised by the strategy-comparison
/// experiment, over the first two regions of a schema.
pub fn strategy_queries() -> Vec<topo_core::TopologicalQuery> {
    use topo_core::TopologicalQuery as Q;
    vec![
        Q::Intersects(0, 1),
        Q::Disjoint(0, 1),
        Q::Contains(0, 1),
        Q::BoundaryOnlyIntersection(0, 1),
        Q::InteriorsOverlap(0, 1),
        Q::IsConnected(0),
        Q::ComponentCountEven(0),
        Q::HasHole(0),
    ]
}

/// Convenience: the invariant of an instance, with construction time.
pub fn build_invariant(instance: &SpatialInstance) -> (TopologicalInvariant, Duration) {
    timed(|| topo_core::top(instance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_takes_middle() {
        assert_eq!(median_of_ns(&mut [5, 1, 9]), 5);
        assert_eq!(median_of_ns(&mut [7]), 7);
    }

    #[test]
    fn median_even_averages_the_middle_pair() {
        // The pre-fix index-based median returned 9 here.
        assert_eq!(median_of_ns(&mut [1, 3, 9, 11]), 6);
        assert_eq!(median_of_ns(&mut [2, 4]), 3);
    }

    #[test]
    fn median_zero_samples_is_zero_not_a_panic() {
        assert_eq!(median_of_ns(&mut []), 0);
        assert_eq!(median_ns(0, || ()), 0);
        let mut setups = 0;
        assert_eq!(median_ns_with(0, || setups += 1, |()| ()), 0);
        assert_eq!(setups, 0, "zero samples must not run the setup either");
    }

    #[test]
    fn median_ns_counts_samples() {
        let mut runs = 0u32;
        let _ = median_ns(4, || runs += 1);
        assert_eq!(runs, 4);
    }
}
