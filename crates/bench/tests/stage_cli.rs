//! CLI contract of `bench_runner --stage`: unknown stages fail fast with a
//! clear diagnostic and exit code 2, and filtered runs emit syntactically
//! valid JSON whose `stages_run` records exactly the selected subset —
//! including the `incremental` stage, whose quick run must round-trip
//! end-to-end here.
//!
//! The binary (and so this test target) requires the `naive-reference`
//! feature; plain `cargo test` skips it.

use std::path::PathBuf;
use std::process::Command;

fn runner() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_runner"))
}

fn tmp_out(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A minimal JSON syntax checker — enough to prove the emitted file is
/// well-formed without pulling a parser dependency into the workspace.
fn parse_json(bytes: &[u8]) -> Result<(), String> {
    let text: Vec<char> = std::str::from_utf8(bytes).map_err(|e| e.to_string())?.chars().collect();
    let mut pos = 0usize;
    parse_value(&text, &mut pos)?;
    skip_ws(&text, &mut pos);
    if pos != text.len() {
        return Err(format!("trailing garbage at char {pos}"));
    }
    Ok(())
}

fn skip_ws(t: &[char], pos: &mut usize) {
    while *pos < t.len() && t[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(t: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if *pos < t.len() && t[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {c:?} at char {pos}"))
    }
}

fn parse_value(t: &[char], pos: &mut usize) -> Result<(), String> {
    skip_ws(t, pos);
    match t.get(*pos) {
        Some('{') => {
            *pos += 1;
            skip_ws(t, pos);
            if t.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(t, pos);
                parse_string(t, pos)?;
                skip_ws(t, pos);
                expect(t, pos, ':')?;
                parse_value(t, pos)?;
                skip_ws(t, pos);
                match t.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at char {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            skip_ws(t, pos);
            if t.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                parse_value(t, pos)?;
                skip_ws(t, pos);
                match t.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at char {pos}")),
                }
            }
        }
        Some('"') => parse_string(t, pos),
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            *pos += 1;
            while t.get(*pos).is_some_and(|c| "0123456789+-.eE".contains(*c)) {
                *pos += 1;
            }
            Ok(())
        }
        _ => {
            for lit in ["true", "false", "null"] {
                let chars: Vec<char> = lit.chars().collect();
                if t[*pos..].starts_with(&chars) {
                    *pos += chars.len();
                    return Ok(());
                }
            }
            Err(format!("unexpected value at char {pos}"))
        }
    }
}

fn parse_string(t: &[char], pos: &mut usize) -> Result<(), String> {
    expect(t, pos, '"')?;
    while let Some(&c) = t.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(()),
            '\\' => *pos += 1,
            _ => {}
        }
    }
    Err("unterminated string".to_string())
}

#[test]
fn unknown_stage_fails_fast_with_exit_2() {
    let output = runner().args(["--stage", "turbo"]).output().expect("spawn bench_runner");
    assert_eq!(output.status.code(), Some(2), "unknown stage must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown stage \"turbo\""), "diagnostic names the bad stage: {stderr}");
    assert!(stderr.contains("incremental"), "diagnostic lists the valid stages: {stderr}");
    assert!(output.stdout.is_empty(), "nothing must run before the argument error");
}

#[test]
fn dangling_stage_flag_fails_fast_with_exit_2() {
    let output = runner().arg("--stage").output().expect("spawn bench_runner");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--stage needs a name"), "got: {stderr}");
}

#[test]
fn quick_incremental_stage_round_trips_to_valid_json() {
    let out = tmp_out("stage_cli_incremental.json");
    let _ = std::fs::remove_file(&out);
    let output = runner()
        .args(["--quick", "--stage", "incremental", "--out"])
        .arg(&out)
        .output()
        .expect("spawn bench_runner");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "quick incremental run failed:\n{stderr}");
    assert!(
        stderr.contains("== incremental stage per workload =="),
        "the grep-able summary block must be printed: {stderr}"
    );

    let json = std::fs::read(&out).expect("the run must write its report");
    parse_json(&json).expect("emitted report must be valid JSON");
    let text = String::from_utf8(json).unwrap();
    assert!(
        text.contains("\"stages_run\": [\"incremental\"]"),
        "stages_run must record exactly the selected stage"
    );
    assert!(text.contains("\"incremental\": {"), "the selected stage's section must be present");
    for absent in ["\"construction\": {", "\"demand\": {", "\"recovery\": {"] {
        assert!(!text.contains(absent), "unselected stage section {absent} leaked into the report");
    }
    for field in ["\"speedup\":", "\"samples_used\":", "\"host_threads\":", "\"maintain_stats\":"] {
        assert!(text.contains(field), "incremental section must report {field}");
    }
    let _ = std::fs::remove_file(&out);
}
