//! From a spatial instance to the (unreduced) cell complex.
//!
//! This is the geometric half of Theorem 2.1: the instance is lowered to a
//! planar arrangement (crate `topo-arrangement`), and every arrangement cell
//! is classified against every region of the schema:
//!
//! * a **face** is inside a region's interior iff an even–odd propagation from
//!   the exterior face, toggling whenever an edge covered an odd number of
//!   times by the region's polygon rings is crossed, says so;
//! * an **edge** is in a region iff it is on the boundary of the region's 2-D
//!   part (odd ring coverage), or covered by one of the region's polylines, or
//!   both incident faces are in the region's interior;
//! * a **vertex** is in a region iff some incident cell is, or it is one of
//!   the region's isolated points.
//!
//! The boundary flags distinguish cells lying on a region's topological
//! boundary from cells in its interior; the reduction uses them and the final
//! invariant derives everything else from the membership relation alone, as
//! in the paper.

use crate::complex::{Complex, RegionSet};
use topo_arrangement::{build_arrangement, Arrangement};
use topo_spatial::{SourceKind, SourceTag, SpatialInstance};

/// Builds the unreduced cell complex of a spatial instance.
pub fn build_complex(instance: &SpatialInstance) -> Complex {
    let input = instance.to_arrangement_input();
    let arrangement = build_arrangement(&input);
    classify_arrangement(instance, &input, &arrangement)
}

/// The classification half of [`build_complex`] on its own: annotates an
/// already-built arrangement (lowered from `input`) into the unreduced cell
/// complex. Exposed so the perf harness can time lowering and classification
/// as separate stages; library callers should use [`build_complex`].
pub fn classify_arrangement(
    instance: &SpatialInstance,
    input: &topo_arrangement::ArrangementInput,
    arrangement: &Arrangement,
) -> Complex {
    complex_from_arrangement(instance, input, arrangement)
}

/// Like [`build_complex`], but lowering through the frozen pre-optimisation
/// arrangement builder (and its seed-style rational arithmetic). Bench
/// harness and equivalence tests only.
#[cfg(feature = "naive-reference")]
pub fn build_complex_naive(instance: &SpatialInstance) -> Complex {
    let arrangement = topo_arrangement::build_arrangement_naive(&instance.to_arrangement_input());
    // The seed lowered the instance to an arrangement input a second time for
    // the isolated-point lookup; the reference path reproduces that cost.
    let input = instance.to_arrangement_input();
    complex_from_arrangement(instance, &input, &arrangement)
}

fn complex_from_arrangement(
    instance: &SpatialInstance,
    input: &topo_arrangement::ArrangementInput,
    arrangement: &Arrangement,
) -> Complex {
    let region_count = instance.schema().len();
    let mut complex = Complex::new(region_count);

    // Faces: keep arrangement face ids, with face 0 of the complex reused for
    // the arrangement's exterior face (the complex is created with face 0).
    // To keep the id mapping trivial we create one complex face per
    // arrangement face and record which one is exterior.
    let mut face_ids = Vec::with_capacity(arrangement.face_count());
    for f in 0..arrangement.face_count() {
        if f == 0 {
            face_ids.push(0);
        } else {
            face_ids.push(complex.push_face(RegionSet::new(region_count)));
        }
    }
    // `Complex::new` made face 0; ensure the exterior is whichever arrangement
    // face is unbounded (the builder makes it face 0, but do not rely on it).
    complex.set_exterior_face(face_ids[arrangement.exterior_face]);

    // Per-edge coverage statistics, batched: one pass over each edge's source
    // tags yields the full per-region picture, instead of re-scanning and
    // re-decoding the tag list once per (edge, region) pair inside the
    // propagation and membership loops below.
    let (ring_odd, poly_cov) = edge_coverage_tables(arrangement, region_count);

    // Face membership by breadth-first propagation from the exterior face.
    let face_count = arrangement.face_count();
    let mut face_in: Vec<RegionSet> = vec![RegionSet::new(region_count); face_count];
    let mut visited = vec![false; face_count];
    let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); face_count]; // (neighbour, edge)
    for (e, edge) in arrangement.edges.iter().enumerate() {
        adjacency[edge.face_left].push((edge.face_right, e));
        adjacency[edge.face_right].push((edge.face_left, e));
    }
    let mut queue = std::collections::VecDeque::new();
    visited[arrangement.exterior_face] = true;
    queue.push_back(arrangement.exterior_face);
    while let Some(f) = queue.pop_front() {
        let current = face_in[f].clone();
        for &(g, e) in &adjacency[f] {
            if visited[g] {
                continue;
            }
            visited[g] = true;
            let mut membership = current.clone();
            for region in ring_odd[e].iter() {
                if membership.contains(region) {
                    membership.remove(region);
                } else {
                    membership.insert(region);
                }
            }
            face_in[g] = membership;
            queue.push_back(g);
        }
    }
    // Transfer face memberships into the complex.
    for f in 0..face_count {
        let id = face_ids[f];
        // Complex faces were created with empty membership; overwrite.
        *complex_face_membership(&mut complex, id) = face_in[f].clone();
    }

    // Edge membership.
    let mut edge_in: Vec<RegionSet> = Vec::with_capacity(arrangement.edge_count());
    let mut edge_bnd: Vec<RegionSet> = Vec::with_capacity(arrangement.edge_count());
    for (e, edge) in arrangement.edges.iter().enumerate() {
        let mut in_set = RegionSet::new(region_count);
        let mut bnd_set = RegionSet::new(region_count);
        for region in 0..region_count {
            let both_faces_in = face_in[edge.face_left].contains(region)
                && face_in[edge.face_right].contains(region);
            let in_region =
                ring_odd[e].contains(region) || poly_cov[e].contains(region) || both_faces_in;
            if in_region {
                in_set.insert(region);
                if !both_faces_in {
                    bnd_set.insert(region);
                }
            }
        }
        edge_in.push(in_set);
        edge_bnd.push(bnd_set);
    }

    // Isolated input points per vertex.
    let mut point_regions: Vec<RegionSet> =
        vec![RegionSet::new(region_count); arrangement.vertex_count()];
    for (idx, (_, tag)) in input.points.iter().enumerate() {
        let tag = SourceTag::decode(*tag);
        point_regions[arrangement.point_vertices[idx]].insert(tag.region);
    }

    // Vertex membership.
    let mut vertex_in: Vec<RegionSet> = Vec::with_capacity(arrangement.vertex_count());
    let mut vertex_bnd: Vec<RegionSet> = Vec::with_capacity(arrangement.vertex_count());
    for (v, point_set) in point_regions.iter().enumerate() {
        let mut in_set = point_set.clone();
        let incident = arrangement.incident_edges(v);
        let isolated_face = arrangement.isolated_face(v);
        // Sector faces around the vertex (or the containing face when isolated).
        let sector_faces: Vec<usize> = if let Some(f) = isolated_face {
            vec![f]
        } else {
            incident
                .iter()
                .map(|&e| {
                    let edge = &arrangement.edges[e];
                    if edge.v1 == v {
                        edge.face_left
                    } else {
                        edge.face_right
                    }
                })
                .collect()
        };
        for region in 0..region_count {
            let edge_hit = incident.iter().any(|&e| edge_in[e].contains(region));
            let face_hit = sector_faces.iter().any(|&f| face_in[f].contains(region));
            if edge_hit || face_hit {
                in_set.insert(region);
            }
        }
        let mut bnd_set = RegionSet::new(region_count);
        for region in in_set.iter() {
            let all_faces_interior = sector_faces.iter().all(|&f| face_in[f].contains(region));
            let all_edges_interior = incident
                .iter()
                .all(|&e| edge_in[e].contains(region) && !edge_bnd[e].contains(region));
            if !(all_faces_interior && all_edges_interior) {
                bnd_set.insert(region);
            }
        }
        vertex_in.push(in_set);
        vertex_bnd.push(bnd_set);
    }

    // Edges into the complex (ids align with arrangement edge ids because the
    // complex has no edges yet).
    for (e, edge) in arrangement.edges.iter().enumerate() {
        let id = complex.push_edge(
            Some((edge.v1, edge.v2)),
            (face_ids[edge.face_left], face_ids[edge.face_right]),
            edge_in[e].clone(),
            edge_bnd[e].clone(),
        );
        debug_assert_eq!(id, e);
    }

    // Vertices into the complex (ids align with arrangement vertex ids).
    for v in 0..arrangement.vertex_count() {
        let slots: Vec<(usize, u8)> = arrangement
            .incident_edges(v)
            .iter()
            .map(|&e| {
                let edge = &arrangement.edges[e];
                (e, if edge.v1 == v { 0u8 } else { 1u8 })
            })
            .collect();
        let sectors: Vec<usize> = arrangement
            .incident_edges(v)
            .iter()
            .map(|&e| {
                let edge = &arrangement.edges[e];
                // The sector counterclockwise-after an outgoing edge is the
                // face to the left of the half-edge leaving `v` along it.
                let f = if edge.v1 == v { edge.face_left } else { edge.face_right };
                face_ids[f]
            })
            .collect();
        let containing = arrangement.isolated_face(v).map(|f| face_ids[f]);
        let id = complex.push_vertex(
            slots,
            sectors,
            containing,
            vertex_in[v].clone(),
            vertex_bnd[v].clone(),
        );
        debug_assert_eq!(id, v);
    }

    complex
}

/// One pass over every edge's source tags, producing per-edge region sets:
/// `ring_odd[e]` holds the regions whose polygon rings cover edge `e` an odd
/// number of times, `poly_cov[e]` the regions one of whose polylines covers
/// it. Equivalent to probing each (edge, region) pair separately, but decodes
/// every tag exactly once.
fn edge_coverage_tables(
    arrangement: &Arrangement,
    region_count: usize,
) -> (Vec<RegionSet>, Vec<RegionSet>) {
    let mut ring_odd = Vec::with_capacity(arrangement.edge_count());
    let mut poly_cov = Vec::with_capacity(arrangement.edge_count());
    for edge in &arrangement.edges {
        let mut odd = RegionSet::new(region_count);
        let mut cov = RegionSet::new(region_count);
        for &s in &edge.sources {
            let tag = SourceTag::decode(s);
            match tag.kind {
                SourceKind::RingBoundary => {
                    // Toggling tracks the parity of the coverage count.
                    if odd.contains(tag.region) {
                        odd.remove(tag.region);
                    } else {
                        odd.insert(tag.region);
                    }
                }
                SourceKind::Polyline => cov.insert(tag.region),
                SourceKind::IsolatedPoint => {}
            }
        }
        ring_odd.push(odd);
        poly_cov.push(cov);
    }
    (ring_odd, poly_cov)
}

/// Mutable access to a face's membership set. Kept as a free function so the
/// complex does not expose general mutation of memberships.
fn complex_face_membership(complex: &mut Complex, face: usize) -> &mut RegionSet {
    complex.face_membership_mut(face)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_geometry::Point;
    use topo_spatial::{Region, Schema};

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn single_square_classification() {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        let complex = build_complex(&instance);
        // Before reduction: 4 vertices, 4 edges, 2 faces.
        assert_eq!(complex.live_vertices().len(), 4);
        assert_eq!(complex.live_edges().len(), 4);
        assert_eq!(complex.live_faces().len(), 2);
        // The bounded face is in P, the exterior is not.
        let exterior = complex.exterior_face();
        for f in complex.live_faces() {
            assert_eq!(complex.face_regions(f).contains(0), f != exterior);
        }
        // All edges and vertices are on P's boundary.
        for e in complex.live_edges() {
            assert!(complex.edge_regions(e).contains(0));
            assert!(complex.edge_boundary_regions(e).contains(0));
        }
        for v in complex.live_vertices() {
            assert!(complex.vertex_regions(v).contains(0));
            assert!(complex.vertex_boundary_regions(v).contains(0));
        }
    }

    #[test]
    fn shared_internal_edge_is_interior() {
        // Two adjacent squares of the same region: the shared edge is in the
        // region's interior, not on its boundary.
        let mut region = Region::rectangle(0, 0, 10, 10);
        region.add_ring(vec![p(10, 0), p(20, 0), p(20, 10), p(10, 10)]);
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, region);
        let complex = build_complex(&instance);
        // The shared edge x = 10 has both incident faces inside P.
        let mut found_interior_edge = false;
        for e in complex.live_edges() {
            let (fa, fb) = complex.edge_sides(e);
            if complex.face_regions(fa).contains(0) && complex.face_regions(fb).contains(0) {
                assert!(complex.edge_regions(e).contains(0));
                assert!(!complex.edge_boundary_regions(e).contains(0));
                found_interior_edge = true;
            }
        }
        assert!(found_interior_edge);
    }

    #[test]
    fn polyline_and_point_classification() {
        // A polyline crossing a square region, and an isolated point inside it.
        let mut instance = SpatialInstance::new(Schema::from_names(["P", "L", "D"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        instance.set_region(1, Region::polyline(vec![p(-5, 5), p(15, 5)]));
        instance.set_region(2, Region::point_set(vec![p(2, 2)]));
        let complex = build_complex(&instance);
        // Some edge is in both P (interior) and L.
        let mut found = false;
        for e in complex.live_edges() {
            let regions = complex.edge_regions(e);
            if regions.contains(0) && regions.contains(1) {
                // Inside P's interior, so not on P's boundary; but it is on
                // L's boundary (a 1-D piece is its own boundary).
                assert!(!complex.edge_boundary_regions(e).contains(0));
                assert!(complex.edge_boundary_regions(e).contains(1));
                found = true;
            }
        }
        assert!(found);
        // The isolated point is a vertex in both P and D.
        let mut point_found = false;
        for v in complex.live_vertices() {
            if complex.degree(v) == 0 {
                let regions = complex.vertex_regions(v);
                assert!(regions.contains(0) && regions.contains(2));
                point_found = true;
            }
        }
        assert!(point_found);
    }

    #[test]
    fn batched_coverage_matches_per_pair_probing() {
        // The batched one-pass tables must agree, per (edge, region) pair,
        // with the straightforward probe that re-scans the source tag list.
        let mut overlap = Region::rectangle(0, 0, 10, 10);
        overlap.add_ring(vec![p(5, 0), p(15, 0), p(15, 10), p(5, 10)]); // shares [5,10]×{0,10} parity games
        let mut instance = SpatialInstance::new(Schema::from_names(["A", "B", "L", "D"]));
        instance.set_region(0, overlap);
        instance.set_region(1, Region::rectangle(5, 5, 20, 20));
        instance.set_region(2, Region::polyline(vec![p(-5, 7), p(25, 7), p(25, -5)]));
        instance.set_region(3, Region::point_set(vec![p(2, 2), p(30, 30)]));
        let input = instance.to_arrangement_input();
        let arrangement = build_arrangement(&input);
        let region_count = instance.schema().len();

        let (ring_odd, poly_cov) = edge_coverage_tables(&arrangement, region_count);
        assert!(arrangement.edge_count() > 0);
        for (e, edge) in arrangement.edges.iter().enumerate() {
            for region in 0..region_count {
                let probe_ring = edge
                    .sources
                    .iter()
                    .filter(|&&s| {
                        let tag = SourceTag::decode(s);
                        tag.region == region && tag.kind == SourceKind::RingBoundary
                    })
                    .count()
                    % 2
                    == 1;
                let probe_poly = edge.sources.iter().any(|&s| {
                    let tag = SourceTag::decode(s);
                    tag.region == region && tag.kind == SourceKind::Polyline
                });
                assert_eq!(ring_odd[e].contains(region), probe_ring, "edge {e} region {region}");
                assert_eq!(poly_cov[e].contains(region), probe_poly, "edge {e} region {region}");
            }
        }
    }

    #[test]
    fn hole_classification() {
        // An annulus: the inner face is not in the region.
        let mut region = Region::rectangle(0, 0, 30, 30);
        region.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, region);
        let complex = build_complex(&instance);
        let in_p: Vec<bool> =
            complex.live_faces().iter().map(|&f| complex.face_regions(f).contains(0)).collect();
        // Exactly one of the three faces (the ring between the two squares)
        // is in P.
        assert_eq!(complex.live_faces().len(), 3);
        assert_eq!(in_p.iter().filter(|b| **b).count(), 1);
    }
}
