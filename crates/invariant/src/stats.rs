//! Size statistics of invariants, matching the measurements of the paper's
//! practical-considerations section (cell counts, storage estimate, and the
//! number of lines meeting at a point).

use crate::invariant::TopologicalInvariant;

/// Summary statistics of a topological invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct InvariantStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of faces (including the exterior).
    pub faces: usize,
    /// Total number of cells.
    pub cells: usize,
    /// Estimated storage footprint in bytes (see [`InvariantStats::compute`]).
    pub bytes: usize,
    /// Average vertex degree (the paper's "lines intersecting at a point").
    pub average_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
}

impl InvariantStats {
    /// Computes the statistics of an invariant.
    ///
    /// The storage estimate follows the paper's convention of a small constant
    /// number of bytes per cell: each cell is charged the bytes of its
    /// incidence references (cell ids sized to the invariant, i.e.
    /// `ceil(log2(cells) / 8)` bytes each) plus one byte of region-membership
    /// bitmap per eight regions.
    pub fn compute(invariant: &TopologicalInvariant) -> Self {
        let vertices = invariant.vertex_count();
        let edges = invariant.edge_count();
        let faces = invariant.face_count();
        let cells = vertices + edges + faces;
        let id_bytes = ((usize::BITS - cells.max(2).leading_zeros()) as usize).div_ceil(8);
        let region_bytes = invariant.schema().len().div_ceil(8).max(1);
        let mut bytes = 0usize;
        let mut degree_sum = 0usize;
        let mut max_degree = 0usize;
        for v in 0..vertices {
            let degree = invariant.degree(v);
            degree_sum += degree;
            max_degree = max_degree.max(degree);
            // Rotation references (edges and sectors) plus membership bits.
            bytes += 2 * degree * id_bytes + region_bytes;
            if degree == 0 {
                bytes += id_bytes; // containing face
            }
        }
        for e in 0..edges {
            let endpoint_refs = if invariant.edge_endpoints(e).is_some() { 2 } else { 0 };
            bytes += (endpoint_refs + 2) * id_bytes + region_bytes;
        }
        for _ in 0..faces {
            bytes += region_bytes;
        }
        InvariantStats {
            vertices,
            edges,
            faces,
            cells,
            bytes,
            average_degree: if vertices == 0 { 0.0 } else { degree_sum as f64 / vertices as f64 },
            max_degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top;
    use topo_spatial::{Region, Schema, SpatialInstance};

    #[test]
    fn square_stats() {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        let stats = InvariantStats::compute(&top(&instance));
        assert_eq!(stats.vertices, 0);
        assert_eq!(stats.edges, 1);
        assert_eq!(stats.faces, 2);
        assert_eq!(stats.cells, 3);
        assert!(stats.bytes > 0);
        assert_eq!(stats.max_degree, 0);
    }

    #[test]
    fn crossing_lines_degree() {
        // Two crossing polylines: the crossing vertex has degree 4.
        let mut instance = SpatialInstance::new(Schema::from_names(["L"]));
        let mut region = Region::polyline(vec![
            topo_geometry::Point::from_ints(0, 0),
            topo_geometry::Point::from_ints(10, 10),
        ]);
        region.add_polyline(vec![
            topo_geometry::Point::from_ints(0, 10),
            topo_geometry::Point::from_ints(10, 0),
        ]);
        instance.set_region(0, region);
        let stats = InvariantStats::compute(&top(&instance));
        assert_eq!(stats.max_degree, 4);
        assert_eq!(stats.vertices, 5);
    }
}
