//! Inversion of topological invariants (Theorem 2.2).
//!
//! Theorem 2.2 states that from `top(I)` one can compute, in polynomial time,
//! a *linear* spatial instance `J` topologically equivalent to `I`. This
//! module implements the inversion for the class of invariants whose skeleton
//! components are closed curves, open arcs and isolated points — i.e.
//! instances whose regions, after reduction to the maximal decomposition,
//! have pairwise non-crossing boundaries (disjoint or nested lakes, rivers,
//! administrative rings, point features, …). Components with surviving branch vertices (boundary
//! networks such as a shared land-cover subdivision) are reported as
//! [`InvertError::UnsupportedComponent`]; this scope restriction is recorded
//! in DESIGN.md and EXPERIMENTS.md, and the experiments that rely on
//! inversion (strategy (iv) of the practical-considerations section) use
//! workloads inside the supported class.
//!
//! The construction mirrors the nesting recursion of the component tree:
//! every component is drawn inside its own axis-aligned box, children are
//! drawn inside the face that owns them, and regions are re-emitted from the
//! invariant's membership relation (a ring for every closed curve separating
//! the region's interior from its exterior, a closed polyline for
//! one-dimensional curves, a point for every isolated vertex).

use crate::invariant::TopologicalInvariant;
use topo_geometry::Point;
use topo_spatial::{Region, SpatialInstance};

/// Errors reported by [`invert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvertError {
    /// A component has branch vertices; it is outside the supported class of
    /// this inversion implementation.
    UnsupportedComponent {
        /// The offending component id.
        component: usize,
    },
    /// The rebuilt instance's invariant did not match the input (only
    /// reported by [`invert_verified`]).
    VerificationFailed,
}

impl std::fmt::Display for InvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvertError::UnsupportedComponent { component } => write!(
                f,
                "component {component} has branch vertices; inversion supports closed curves, open arcs and isolated points only"
            ),
            InvertError::VerificationFailed => {
                write!(f, "the rebuilt instance's invariant does not match the input invariant")
            }
        }
    }
}

impl std::error::Error for InvertError {}

/// Produces a semi-linear spatial instance whose invariant is isomorphic to
/// the given one (Theorem 2.2), for invariants in the supported class.
pub fn invert(invariant: &TopologicalInvariant) -> Result<SpatialInstance, InvertError> {
    // Check the supported class: every component is an isolated vertex, a
    // single closed curve, or a single open arc (a polyline that reduced to
    // one edge with two distinct endpoints).
    for (c, component) in invariant.components().iter().enumerate() {
        let isolated_vertex = component.edges.is_empty() && component.vertices.len() == 1;
        let closed_curve = component.vertices.is_empty()
            && component.edges.len() == 1
            && invariant.edge_endpoints(component.edges[0]).is_none();
        let open_arc = component.vertices.len() == 2
            && component.edges.len() == 1
            && matches!(invariant.edge_endpoints(component.edges[0]), Some((a, b)) if a != b);
        if !(isolated_vertex || closed_curve || open_arc) {
            return Err(InvertError::UnsupportedComponent { component: c });
        }
    }

    // Recursive layout: each component gets a square box inside the face that
    // contains it; each face's children share the free interior of their
    // parent's drawing.
    let mut layout = Layout::new(invariant);
    let top_level = invariant.components_in_face(invariant.exterior_face());
    layout.place_children(&top_level, 0, 0, 1 << 24);

    // Region reconstruction from the membership relations.
    let mut instance = SpatialInstance::new(invariant.schema().clone());
    for region in invariant.schema().ids() {
        let mut geometry = Region::new();
        for (c, component) in invariant.components().iter().enumerate() {
            if let Some(&edge) = component.edges.first() {
                let edge_in = invariant.edge_regions(edge).contains(region);
                if let Some(arc) = layout.component_arc[c] {
                    // An open one-dimensional arc (a reduced polyline).
                    if edge_in {
                        geometry.add_polyline(arc.to_vec());
                    }
                    continue;
                }
                let square = layout.component_square[c].expect("component placed");
                let (fa, fb) = invariant.edge_faces(edge);
                let side_in = |f: usize| invariant.face_regions(f).contains(region);
                match (side_in(fa), side_in(fb)) {
                    (true, false) | (false, true) => {
                        // The curve separates the region's interior from its
                        // exterior: a polygon ring.
                        geometry.add_ring(square.to_vec());
                    }
                    (false, false) if edge_in => {
                        // A one-dimensional closed curve of the region.
                        let mut chain = square.to_vec();
                        chain.push(square[0]);
                        geometry.add_polyline(chain);
                    }
                    _ => {}
                }
            } else {
                let v = component.vertices[0];
                if invariant.vertex_regions(v).contains(region) {
                    geometry.add_point(layout.component_point[c].expect("component placed"));
                }
            }
        }
        instance.set_region(region, geometry);
    }
    Ok(instance)
}

/// [`invert`] followed by a verification that the rebuilt instance's invariant
/// is isomorphic to the input. Both codes go through the cached canonical-code
/// accessor (hash compared first), so verifying against an invariant whose
/// code is already known costs one canonicalisation of the rebuilt instance,
/// not two recomputations.
pub fn invert_verified(invariant: &TopologicalInvariant) -> Result<SpatialInstance, InvertError> {
    let instance = invert(invariant)?;
    let rebuilt = crate::top(&instance);
    if rebuilt.is_isomorphic_to(invariant) {
        Ok(instance)
    } else {
        Err(InvertError::VerificationFailed)
    }
}

struct Layout<'a> {
    invariant: &'a TopologicalInvariant,
    component_square: Vec<Option<[Point; 4]>>,
    component_arc: Vec<Option<[Point; 2]>>,
    component_point: Vec<Option<Point>>,
}

impl<'a> Layout<'a> {
    fn new(invariant: &'a TopologicalInvariant) -> Self {
        let n = invariant.components().len();
        Layout {
            invariant,
            component_square: vec![None; n],
            component_arc: vec![None; n],
            component_point: vec![None; n],
        }
    }

    /// Places the given sibling components inside the square box with corner
    /// `(x0, y0)` and side `size`, then recurses into their interiors.
    fn place_children(&mut self, children: &[usize], x0: i64, y0: i64, size: i64) {
        if children.is_empty() {
            return;
        }
        // Arrange the children in a row of sub-boxes with gaps.
        let columns = children.len() as i64;
        let cell = size / (2 * columns);
        for (i, &c) in children.iter().enumerate() {
            let bx = x0 + (2 * i as i64) * cell + cell / 2;
            let by = y0 + size / 4;
            let side = cell.max(4);
            self.place_component(c, bx, by, side);
        }
    }

    fn place_component(&mut self, component: usize, x0: i64, y0: i64, size: i64) {
        let comp = &self.invariant.components()[component];
        if comp.edges.is_empty() {
            self.component_point[component] = Some(Point::from_ints(x0 + size / 2, y0 + size / 2));
            return;
        }
        if !comp.vertices.is_empty() {
            // An open arc: a horizontal segment across the middle of the box.
            self.component_arc[component] = Some([
                Point::from_ints(x0, y0 + size / 2),
                Point::from_ints(x0 + size, y0 + size / 2),
            ]);
            return;
        }
        // A closed curve: draw it as the boundary square of the box interior.
        let square = [
            Point::from_ints(x0, y0),
            Point::from_ints(x0 + size, y0),
            Point::from_ints(x0 + size, y0 + size),
            Point::from_ints(x0, y0 + size),
        ];
        self.component_square[component] = Some(square);
        // The owned (inner) face hosts this component's children.
        for face in self.invariant.owned_faces(component) {
            let children = self.invariant.components_in_face(face);
            self.place_children(&children, x0 + size / 8, y0 + size / 8, (3 * size) / 4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top;
    use topo_geometry::Point;
    use topo_spatial::{Region, Schema, SpatialInstance};

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    #[test]
    fn roundtrip_single_region() {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        let invariant = top(&instance);
        let rebuilt = invert_verified(&invariant).expect("inversion succeeds");
        assert!(top(&rebuilt).is_isomorphic_to(&invariant));
    }

    #[test]
    fn roundtrip_nested_and_disjoint() {
        // P: an annulus plus a separate small square; Q: a square inside the
        // annulus hole; D: a point feature inside Q.
        let mut p_region = Region::rectangle(0, 0, 100, 100);
        p_region.add_ring(vec![p(20, 20), p(80, 20), p(80, 80), p(20, 80)]);
        p_region.add_ring(vec![p(200, 0), p(220, 0), p(220, 20), p(200, 20)]);
        let q_region = Region::rectangle(30, 30, 70, 70);
        let d_region = Region::point_set(vec![p(50, 50)]);
        let instance =
            SpatialInstance::from_regions([("P", p_region), ("Q", q_region), ("D", d_region)]);
        let invariant = top(&instance);
        let rebuilt = invert_verified(&invariant).expect("inversion succeeds");
        let rebuilt_invariant = top(&rebuilt);
        assert!(rebuilt_invariant.is_isomorphic_to(&invariant));
        assert_eq!(rebuilt_invariant.cell_count(), invariant.cell_count());
    }

    #[test]
    fn one_dimensional_closed_curve() {
        // A region that is a pure closed curve (the boundary square of another
        // region, not filled): region L is a closed polyline.
        let mut l_region = Region::new();
        l_region.add_polyline(vec![p(0, 0), p(10, 0), p(10, 10), p(0, 10), p(0, 0)]);
        let instance = SpatialInstance::from_regions([
            ("P", Region::rectangle(-50, -50, 50, 50)),
            ("L", l_region),
        ]);
        let invariant = top(&instance);
        let rebuilt = invert_verified(&invariant).expect("inversion succeeds");
        assert!(top(&rebuilt).is_isomorphic_to(&invariant));
    }

    /// Degenerate-instance hardening: inversion (and its verified variant)
    /// must handle empty instances, point-only and polyline-only regions, and
    /// single-cell components without panicking.
    #[test]
    fn degenerate_instances_invert_cleanly() {
        let names: [&str; 0] = [];
        let empty_schema = SpatialInstance::new(Schema::from_names(names));
        let mut cases: Vec<(&str, SpatialInstance)> = vec![
            ("empty schema", empty_schema),
            ("empty region", SpatialInstance::new(Schema::from_names(["P"]))),
        ];
        let mut point_only = SpatialInstance::new(Schema::from_names(["P"]));
        point_only.set_region(0, Region::point_set(vec![p(0, 0), p(10, 0)]));
        cases.push(("point-only", point_only));
        let mut polyline_only = SpatialInstance::new(Schema::from_names(["P"]));
        polyline_only.set_region(0, Region::polyline(vec![p(0, 0), p(10, 0), p(10, 10)]));
        cases.push(("polyline-only", polyline_only));
        let mut single_curve = SpatialInstance::new(Schema::from_names(["P"]));
        single_curve.set_region(0, Region::polyline(vec![p(0, 0), p(10, 0), p(5, 10), p(0, 0)]));
        cases.push(("single closed curve", single_curve));
        for (label, instance) in cases {
            let invariant = top(&instance);
            let rebuilt = invert_verified(&invariant)
                .unwrap_or_else(|e| panic!("{label}: inversion failed: {e}"));
            assert!(top(&rebuilt).is_isomorphic_to(&invariant), "{label}: round-trip");
        }
    }

    #[test]
    fn unsupported_component_is_reported() {
        // Two overlapping squares of different regions produce boundary
        // crossings, hence branch vertices: unsupported by this inversion.
        let instance = SpatialInstance::from_regions([
            ("P", Region::rectangle(0, 0, 10, 10)),
            ("Q", Region::rectangle(5, 5, 15, 15)),
        ]);
        let invariant = top(&instance);
        match invert(&invariant) {
            Err(InvertError::UnsupportedComponent { .. }) => {}
            other => panic!("expected UnsupportedComponent, got {other:?}"),
        }
    }
}
