//! Parameterised orderings (Lemma 3.1) and canonical codes (Theorems 3.2/3.4).
//!
//! Lemma 3.1 shows that once an orientation, a vertex and an adjacent proper
//! edge are fixed, a total order on the vertices, edges and faces of a
//! connected component of the invariant is definable in fixpoint logic. The
//! canonical form of the whole invariant is then obtained, as in the proof of
//! Theorem 3.4, by recursing over the connected-component tree: every subtree
//! is serialised relative to each parameter choice, children embedded in the
//! same face are combined as a sorted multiset (this is where counting is
//! needed in the logic), and the lexicographically least serialisation is
//! kept.
//!
//! Two invariants have equal canonical codes iff they are isomorphic, which by
//! Theorem 2.1(ii) means the underlying spatial instances are topologically
//! equivalent. The test suites cross-validate this equivalence against the
//! generic backtracking isomorphism of `topo-relational`.

use crate::invariant::{CellKind, ComponentId, ConeItem, TopologicalInvariant};
use std::collections::HashMap;

/// A canonical code: equal codes iff isomorphic invariants.
pub type CanonicalCode = String;

/// A reference to a cell of the invariant.
pub type CellRef = (CellKind, usize);

/// The orientation parameter of Lemma 3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Read rotations counterclockwise (as stored).
    CounterClockwise,
    /// Read rotations clockwise.
    Clockwise,
}

/// One parameterised ordering of a connected component (Lemma 3.1): the
/// parameter choice and the resulting total order on the component's
/// vertices, edges and owned faces.
#[derive(Clone, Debug)]
pub struct ComponentOrdering {
    /// The orientation used.
    pub orientation: Orientation,
    /// The start vertex, if the component has any vertex.
    pub start_vertex: Option<usize>,
    /// The start edge (a proper edge adjacent to the start vertex, or a loop
    /// slot for loop-only components).
    pub start_edge: Option<usize>,
    /// The total order: vertices first (in traversal order), then edges, then
    /// the faces owned by the component.
    pub order: Vec<CellRef>,
}

/// All parameterised orderings of a component under a fixed orientation,
/// exactly one per admissible `(vertex, proper edge)` choice (plus the single
/// trivial choice for the degenerate components of Lemma 3.1's special
/// cases).
pub fn component_orderings(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    orientation: Orientation,
) -> Vec<ComponentOrdering> {
    let comp = &invariant.components()[component];
    let proper_edges: Vec<usize> = comp
        .edges
        .iter()
        .copied()
        .filter(|&e| matches!(invariant.edge_endpoints(e), Some((a, b)) if a != b))
        .collect();

    if !proper_edges.is_empty() {
        let mut out = Vec::new();
        for &v in &comp.vertices {
            for &(e, _) in invariant.vertex_slots(v) {
                if !proper_edges.contains(&e) {
                    continue;
                }
                out.push(build_ordering(invariant, component, orientation, v, e));
            }
        }
        // A vertex adjacent to the same proper edge twice cannot happen (a
        // proper edge has distinct endpoints), but a loop shares its slots, so
        // deduplicate identical (vertex, edge) choices.
        out.dedup_by(|a, b| a.start_vertex == b.start_vertex && a.start_edge == b.start_edge);
        return out;
    }

    // Special cases: no proper edge.
    if comp.edges.is_empty() {
        // An isolated vertex.
        let v = comp.vertices[0];
        return vec![ComponentOrdering {
            orientation,
            start_vertex: Some(v),
            start_edge: None,
            order: vec![(CellKind::Vertex, v)],
        }];
    }
    if comp.vertices.is_empty() {
        // A single vertex-free closed curve.
        let e = comp.edges[0];
        let mut order = vec![(CellKind::Edge, e)];
        for f in invariant.owned_faces(component) {
            order.push((CellKind::Face, f));
        }
        return vec![ComponentOrdering {
            orientation,
            start_vertex: None,
            start_edge: Some(e),
            order,
        }];
    }
    // A single vertex with loops only: one ordering per starting slot.
    let v = comp.vertices[0];
    let slots = invariant.vertex_slots(v);
    let mut out = Vec::new();
    for start in 0..slots.len() {
        let mut edge_order: Vec<usize> = Vec::new();
        for k in 0..slots.len() {
            let idx = rotated_index(start, k, slots.len(), orientation);
            let (e, _) = slots[idx];
            if !edge_order.contains(&e) {
                edge_order.push(e);
            }
        }
        let mut order: Vec<CellRef> = vec![(CellKind::Vertex, v)];
        order.extend(edge_order.iter().map(|&e| (CellKind::Edge, e)));
        let edge_rank: HashMap<usize, usize> =
            edge_order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        order.extend(
            ordered_owned_faces(invariant, component, &edge_rank)
                .into_iter()
                .map(|f| (CellKind::Face, f)),
        );
        out.push(ComponentOrdering {
            orientation,
            start_vertex: Some(v),
            start_edge: Some(slots[start].0),
            order,
        });
    }
    out
}

fn rotated_index(start: usize, offset: usize, len: usize, orientation: Orientation) -> usize {
    match orientation {
        Orientation::CounterClockwise => (start + offset) % len,
        Orientation::Clockwise => (start + len - (offset % len)) % len,
    }
}

/// Lemma 3.1's traversal for a component with proper edges, from the choice
/// `(orientation, start vertex, adjacent proper edge)`.
fn build_ordering(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    orientation: Orientation,
    start_vertex: usize,
    start_edge: usize,
) -> ComponentOrdering {
    let comp = &invariant.components()[component];
    let is_proper = |e: usize| matches!(invariant.edge_endpoints(e), Some((a, b)) if a != b);

    // Depth-first traversal over proper edges, visiting the proper edges
    // around each vertex in rotation order starting from the vertex's
    // associated edge.
    let mut vertex_order: Vec<usize> = Vec::new();
    let mut assoc: HashMap<usize, usize> = HashMap::new();
    let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut stack: Vec<(usize, usize)> = vec![(start_vertex, start_edge)];
    // The recursion of the paper inserts each sub-order right after its parent
    // vertex; an explicit stack with children pushed in reverse visit order
    // reproduces the same sequence.
    while let Some((v, via_edge)) = stack.pop() {
        if visited.contains(&v) {
            continue;
        }
        visited.insert(v);
        assoc.insert(v, via_edge);
        vertex_order.push(v);
        let slots = invariant.vertex_slots(v);
        let degree = slots.len();
        let start = slots
            .iter()
            .position(|&(e, _)| e == via_edge)
            .expect("associated edge is incident to the vertex");
        let mut neighbours: Vec<(usize, usize)> = Vec::new();
        let mut seen_edges: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for k in 0..degree {
            let idx = rotated_index(start, k, degree, orientation);
            let (e, end) = slots[idx];
            if !is_proper(e) || !seen_edges.insert(e) {
                continue;
            }
            let (a, b) = invariant.edge_endpoints(e).unwrap();
            let other = if end == 0 { b } else { a };
            if !visited.contains(&other) {
                neighbours.push((other, e));
            }
        }
        for item in neighbours.into_iter().rev() {
            stack.push(item);
        }
    }
    let vertex_rank: HashMap<usize, usize> =
        vertex_order.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Edge order: lexicographic on endpoint ranks, ties broken by rotation
    // position around the smaller-ranked endpoint starting from its
    // associated edge.
    let mut edges: Vec<usize> = comp.edges.clone();
    let edge_key = |e: usize| -> (usize, usize, usize) {
        let (a, b) =
            invariant.edge_endpoints(e).expect("component with proper edges has no closed curves");
        let (ra, rb) = (vertex_rank[&a], vertex_rank[&b]);
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        let anchor = if ra <= rb { a } else { b };
        let slots = invariant.vertex_slots(anchor);
        let degree = slots.len();
        let anchor_assoc = assoc[&anchor];
        let start = slots
            .iter()
            .position(|&(edge, _)| edge == anchor_assoc)
            .expect("associated edge incident to anchor");
        let mut position = degree;
        for k in 0..degree {
            let idx = rotated_index(start, k, degree, orientation);
            if slots[idx].0 == e {
                position = k;
                break;
            }
        }
        (lo, hi, position)
    };
    edges.sort_by_key(|&e| edge_key(e));
    let edge_rank: HashMap<usize, usize> = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    let mut order: Vec<CellRef> = vertex_order.iter().map(|&v| (CellKind::Vertex, v)).collect();
    order.extend(edges.iter().map(|&e| (CellKind::Edge, e)));
    order.extend(
        ordered_owned_faces(invariant, component, &edge_rank)
            .into_iter()
            .map(|f| (CellKind::Face, f)),
    );
    ComponentOrdering {
        orientation,
        start_vertex: Some(start_vertex),
        start_edge: Some(start_edge),
        order,
    }
}

/// Orders the faces owned by a component by the sorted list of ranks of their
/// incident component edges (no two such faces share that list).
fn ordered_owned_faces(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    edge_rank: &HashMap<usize, usize>,
) -> Vec<usize> {
    let mut faces = invariant.owned_faces(component);
    let key = |f: usize| -> Vec<usize> {
        let mut ranks: Vec<usize> = invariant
            .face_edges(f)
            .into_iter()
            .filter_map(|e| edge_rank.get(&e).copied())
            .collect();
        ranks.sort_unstable();
        ranks
    };
    faces.sort_by_key(|&f| key(f));
    faces
}

/// The canonical code of an invariant.
pub fn canonical_code(invariant: &TopologicalInvariant) -> CanonicalCode {
    let ccw = global_code(invariant, Orientation::CounterClockwise);
    let cw = global_code(invariant, Orientation::Clockwise);
    let mut code = String::new();
    code.push_str("inv{regions=");
    for (_, name) in invariant.schema().iter() {
        code.push_str(name);
        code.push(',');
    }
    code.push('}');
    code.push_str(if ccw <= cw { &ccw } else { &cw });
    code
}

/// The whole-invariant serialisation under a globally fixed orientation.
fn global_code(invariant: &TopologicalInvariant, orientation: Orientation) -> String {
    // Bottom-up over the component tree: deeper components first.
    let component_count = invariant.components().len();
    let mut by_depth: Vec<ComponentId> = (0..component_count).collect();
    by_depth.sort_by_key(|&c| std::cmp::Reverse(invariant.components()[c].depth));
    let mut subtree_codes: Vec<Option<String>> = vec![None; component_count];
    for c in by_depth {
        subtree_codes[c] = Some(component_code(invariant, c, orientation, &subtree_codes));
    }
    let mut top_level: Vec<String> = invariant
        .components_in_face(invariant.exterior_face())
        .into_iter()
        .map(|c| subtree_codes[c].clone().expect("subtree code computed"))
        .collect();
    top_level.sort();
    format!("ext[{}]", top_level.join("|"))
}

/// The canonical code of the subtree rooted at a component: minimum over the
/// parameter choices of the serialisation of the component, with children
/// embedded recursively at their containing face.
fn component_code(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    orientation: Orientation,
    subtree_codes: &[Option<String>],
) -> String {
    let orderings = component_orderings(invariant, component, orientation);
    orderings
        .into_iter()
        .map(|ordering| {
            serialize_component(invariant, component, orientation, &ordering, subtree_codes)
        })
        .min()
        .expect("every component has at least one ordering")
}

fn serialize_component(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    orientation: Orientation,
    ordering: &ComponentOrdering,
    subtree_codes: &[Option<String>],
) -> String {
    let parent_face = invariant.components()[component].parent_face;
    let rank: HashMap<CellRef, usize> =
        ordering.order.iter().enumerate().map(|(i, &cell)| (cell, i)).collect();
    let face_token = |f: usize| -> String {
        if f == parent_face {
            "P".to_string()
        } else if let Some(r) = rank.get(&(CellKind::Face, f)) {
            format!("f{r}")
        } else {
            // A face bordered by this component but owned by neither it nor
            // its parent cannot occur; defensively encode it opaquely.
            format!("x{f}")
        }
    };
    let regions = |set: &crate::complex::RegionSet| -> String {
        let mut s = String::new();
        for r in set.iter() {
            s.push_str(&r.to_string());
            s.push(',');
        }
        s
    };
    let mut out = String::new();
    for &(kind, id) in &ordering.order {
        match kind {
            CellKind::Vertex => {
                out.push_str("V<");
                out.push_str(&regions(invariant.vertex_regions(id)));
                out.push(';');
                // The cone, read in the chosen orientation, rotated to the
                // lexicographically least starting position.
                let cone = invariant.cone(id);
                let tokens: Vec<String> = cone
                    .iter()
                    .map(|item| match item {
                        ConeItem::Edge(e) => format!("e{}", rank[&(CellKind::Edge, *e)]),
                        ConeItem::Face(f) => face_token(*f),
                    })
                    .collect();
                let n = tokens.len();
                let mut best: Option<String> = None;
                for start in 0..n.max(1) {
                    let mut candidate = String::new();
                    for k in 0..n {
                        let idx = rotated_index(start, k, n, orientation);
                        candidate.push_str(&tokens[idx]);
                        candidate.push('.');
                    }
                    if best.as_ref().is_none_or(|b| candidate < *b) {
                        best = Some(candidate);
                    }
                }
                out.push_str(&best.unwrap_or_default());
                out.push('>');
            }
            CellKind::Edge => {
                out.push_str("E<");
                out.push_str(&regions(invariant.edge_regions(id)));
                out.push(';');
                match invariant.edge_endpoints(id) {
                    None => out.push_str("closed"),
                    Some((a, b)) => {
                        let (ra, rb) = (rank[&(CellKind::Vertex, a)], rank[&(CellKind::Vertex, b)]);
                        let (lo, hi) = (ra.min(rb), ra.max(rb));
                        out.push_str(&format!("v{lo}-v{hi}"));
                    }
                }
                out.push(';');
                let (fa, fb) = invariant.edge_faces(id);
                let mut sides = [face_token(fa), face_token(fb)];
                sides.sort();
                out.push_str(&sides.join("/"));
                out.push('>');
            }
            CellKind::Face => {
                out.push_str("F<");
                out.push_str(&regions(invariant.face_regions(id)));
                out.push(';');
                let mut edge_ranks: Vec<usize> = invariant
                    .face_edges(id)
                    .into_iter()
                    .filter_map(|e| rank.get(&(CellKind::Edge, e)).copied())
                    .collect();
                edge_ranks.sort_unstable();
                for r in edge_ranks {
                    out.push_str(&format!("e{r},"));
                }
                out.push(';');
                // Children embedded in this face, as a sorted multiset.
                let mut children: Vec<String> = invariant
                    .components_in_face(id)
                    .into_iter()
                    .map(|c| subtree_codes[c].clone().expect("child subtree code computed first"))
                    .collect();
                children.sort();
                out.push('[');
                out.push_str(&children.join("|"));
                out.push(']');
                out.push('>');
            }
        }
    }
    let _ = orientation;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top;
    use topo_geometry::Point;
    use topo_spatial::transform::AffineMap;
    use topo_spatial::{Region, Schema, SpatialInstance};

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    fn square_instance() -> SpatialInstance {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        instance
    }

    #[test]
    fn square_and_transformed_square_have_equal_codes() {
        let instance = square_instance();
        let code = top(&instance).canonical_code();
        for map in [
            AffineMap::translation(100, -50),
            AffineMap::rotation90(),
            AffineMap::reflection_x(),
            AffineMap::scaling(topo_geometry::Rational::new(7, 3)),
        ] {
            let other = top(&map.apply_instance(&instance)).canonical_code();
            assert_eq!(code, other);
        }
    }

    #[test]
    fn square_and_pentagon_are_topologically_equivalent() {
        // Both reduce to: one closed curve, two faces — their invariants are
        // isomorphic even though the raw geometry differs.
        let square = top(&square_instance());
        let mut pentagon_instance = SpatialInstance::new(Schema::from_names(["P"]));
        pentagon_instance
            .set_region(0, Region::polygon(vec![p(0, 0), p(10, 0), p(14, 8), p(5, 14), p(-4, 8)]));
        let pentagon = top(&pentagon_instance);
        assert_eq!(square.canonical_code(), pentagon.canonical_code());
        assert!(square.is_isomorphic_to(&pentagon));
    }

    #[test]
    fn different_topologies_have_different_codes() {
        let square = top(&square_instance());
        // An annulus is not homeomorphic to a disk.
        let mut annulus_region = Region::rectangle(0, 0, 30, 30);
        annulus_region.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
        let mut annulus_instance = SpatialInstance::new(Schema::from_names(["P"]));
        annulus_instance.set_region(0, annulus_region);
        let annulus = top(&annulus_instance);
        assert_ne!(square.canonical_code(), annulus.canonical_code());

        // Two disjoint squares differ from one.
        let mut two = Region::rectangle(0, 0, 10, 10);
        two.add_ring(vec![p(20, 0), p(30, 0), p(30, 10), p(20, 10)]);
        let mut two_instance = SpatialInstance::new(Schema::from_names(["P"]));
        two_instance.set_region(0, two);
        assert_ne!(square.canonical_code(), top(&two_instance).canonical_code());
    }

    #[test]
    fn orderings_cover_all_cells_for_every_choice() {
        // A figure with branching: a square with an antenna attached to one
        // corner, so vertices survive the reduction.
        let mut region = Region::rectangle(0, 0, 10, 10);
        region.add_polyline(vec![p(10, 10), p(20, 20)]);
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, region);
        let invariant = top(&instance);
        assert_eq!(invariant.components().len(), 1);
        let orderings = component_orderings(&invariant, 0, Orientation::CounterClockwise);
        assert!(!orderings.is_empty());
        let comp = &invariant.components()[0];
        let expected_len = comp.vertices.len() + comp.edges.len() + invariant.owned_faces(0).len();
        for ordering in &orderings {
            assert_eq!(ordering.order.len(), expected_len);
            // Every cell appears exactly once.
            let mut seen = std::collections::HashSet::new();
            for cell in &ordering.order {
                assert!(seen.insert(*cell));
            }
        }
    }

    #[test]
    fn canonical_agrees_with_relational_isomorphism() {
        // Cross-validate the canonical code against the generic isomorphism
        // test on the exported relational structures.
        let a = top(&square_instance());
        let mut shifted = SpatialInstance::new(Schema::from_names(["P"]));
        shifted.set_region(0, Region::rectangle(500, 500, 900, 777));
        let b = top(&shifted);
        assert_eq!(a.canonical_code(), b.canonical_code());
        assert!(topo_relational::isomorphic(&a.to_structure(), &b.to_structure()));

        let mut annulus_region = Region::rectangle(0, 0, 30, 30);
        annulus_region.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
        let mut annulus_instance = SpatialInstance::new(Schema::from_names(["P"]));
        annulus_instance.set_region(0, annulus_region);
        let c = top(&annulus_instance);
        assert_ne!(a.canonical_code(), c.canonical_code());
        assert!(!topo_relational::isomorphic(&a.to_structure(), &c.to_structure()));
    }
}
