//! Parameterised orderings (Lemma 3.1) and canonical codes (Theorems 3.2/3.4).
//!
//! Lemma 3.1 shows that once an orientation, a vertex and an adjacent proper
//! edge are fixed, a total order on the vertices, edges and faces of a
//! connected component of the invariant is definable in fixpoint logic. The
//! canonical form of the whole invariant is then obtained, as in the proof of
//! Theorem 3.4, by recursing over the connected-component tree: every subtree
//! is serialised relative to each parameter choice, children embedded in the
//! same face are combined as a sorted multiset (this is where counting is
//! needed in the logic), and the lexicographically least serialisation is
//! kept.
//!
//! Two invariants have equal canonical codes iff they are isomorphic, which by
//! Theorem 2.1(ii) means the underlying spatial instances are topologically
//! equivalent. The test suites cross-validate this equivalence against the
//! generic backtracking isomorphism of `topo-relational`.
//!
//! # Implementation notes (the PR 3 overhaul, made lazy in PR 4)
//!
//! Codes are compact `u32` token streams (see [`CanonicalCode`]), not strings:
//! comparison is a machine-word `memcmp` and serialising a cell never
//! allocates or formats. The Lemma 3.1 parameter sweep over the
//! `(orientation, vertex, edge)` choices of a component is pruned in three
//! ways:
//!
//! * **Lazy candidate serialisation.** A candidate's Lemma 3.1 traversal and
//!   its serialisation are one interleaved pass (`stream_candidate`): every
//!   cell emits its tokens the moment the traversal first reaches it, and the
//!   first token that compares greater than the best-so-far code aborts the
//!   candidate *including the rest of its traversal*. A losing start choice
//!   therefore costs only the shared prefix of its stream, not an `O(cells)`
//!   ordering build — the fix for the giant-component blowup where each of
//!   thousands of surviving choices paid a full traversal before its first
//!   token could be compared.
//! * **Refined start filter.** Start vertices are filtered by an iterated
//!   1-neighbourhood colour refinement (region signature + degree, then
//!   repeatedly extended with the sorted multiset of incident edge/endpoint
//!   colours — computed once per canonicalisation in `Indexes`). Only
//!   choices in the minimal colour class of their component, further filtered
//!   to the minimal `(edge colour, far-endpoint colour)` key, are swept. The
//!   restriction is isomorphism-invariant, so the minimum over the surviving
//!   choices is still a complete invariant (equal codes iff isomorphic) even
//!   though it is no longer the minimum over *all* choices.
//! * **Memoised subtrees.** Each component's minimal code is computed once
//!   per orientation, bottom-up over the component tree, and the children
//!   embedded in a face are pre-joined into one per-face blob, so a parent's
//!   candidate sweep never re-serialises a subtree.
//!
//! The streamed format is a first-encounter encoding: a component with proper
//! edges serialises as its DFS vertex stream, where each vertex emits its
//! region signature and its rotation (cone) anchored at the associated edge of
//! Lemma 3.1, and every edge and owned face is assigned its rank — and emits
//! its own region signature (plus, for faces, the embedded-children blob) —
//! at its first appearance in that stream. The stream determines the component
//! up to isomorphism relative to the parameter choice, every token depends
//! only on the traversal prefix emitted so far, and all candidate streams of
//! one component have the same length. Degenerate components (Lemma 3.1's
//! special cases: isolated vertices, vertex-free closed curves, loop-only
//! vertices) keep the PR 3 rank-based block format; the two formats cannot
//! collide because streamed codes begin with the dedicated `CTRL_STREAM`
//! token.
//!
//! The pre-overhaul String implementation is frozen verbatim in the `naive`
//! submodule (compiled for tests and under the `naive-reference` feature);
//! the equivalence suites prove both code paths induce the same partition
//! into isomorphism classes.

use crate::invariant::{CellKind, ComponentId, ConeItem, TopologicalInvariant};
use std::collections::HashMap;

/// A reference to a cell of the invariant.
pub type CellRef = (CellKind, usize);

/// The orientation parameter of Lemma 3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Read rotations counterclockwise (as stored).
    CounterClockwise,
    /// Read rotations clockwise.
    Clockwise,
}

// ---------------------------------------------------------------------------
// Canonical code: a typed, cheaply comparable handle.
// ---------------------------------------------------------------------------

/// A canonical code: equal codes iff isomorphic invariants.
///
/// The code is a compact token stream (one `u32` per region membership, cell
/// incidence or structural delimiter) plus the schema's region names; `Eq`,
/// `Ord` and `Hash` are cheap derived comparisons over those. Use
/// [`CanonicalCode::code_hash`] for hash-map keying when the full code is too
/// wide a key.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode {
    schema: Vec<String>,
    tokens: Vec<u32>,
}

impl CanonicalCode {
    /// The raw token stream.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The schema's region names, in schema order (part of code equality).
    pub fn schema_names(&self) -> &[String] {
        &self.schema
    }

    /// Number of tokens in the code.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True iff the code has no tokens (never the case for a real invariant:
    /// even an empty instance serialises its exterior face).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// A 64-bit FNV-1a digest of the code, for hash-map keying. Equal codes
    /// have equal hashes; unequal codes collide only with ordinary hash
    /// probability, so a hash match must be confirmed by comparing the codes
    /// when exactness matters.
    pub fn code_hash(&self) -> CodeHash {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        for name in &self.schema {
            for byte in name.bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
            h = (h ^ 0xff).wrapping_mul(PRIME);
        }
        for &t in &self.tokens {
            h = (h ^ t as u64).wrapping_mul(PRIME);
        }
        CodeHash(h)
    }
}

/// A 64-bit digest of a [`CanonicalCode`], suitable as a hash-map key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodeHash(u64);

impl CodeHash {
    /// The raw digest value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a digest from its raw value, for persistence layers that
    /// stored [`as_u64`](Self::as_u64) (e.g. `topo-store`'s snapshot/WAL
    /// format, which keeps the hash alongside each class so recovery never
    /// has to recanonicalise). The value carries no proof of matching any
    /// code; exact users must still confirm by comparing codes.
    pub fn from_u64(raw: u64) -> Self {
        CodeHash(raw)
    }
}

/// The canonical form of an invariant: the canonical code together with the
/// total cell order that realises it (the canonical ordering of Theorem 3.4 —
/// isomorphic invariants produce cell orders related by the isomorphism).
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// The canonical code.
    pub code: CanonicalCode,
    /// A total order of all cells realising the code: each component's cells
    /// in the winning candidate's emission order (first-encounter order of
    /// the streamed Lemma 3.1 traversal for components with proper edges,
    /// vertices-then-edges-then-faces for the degenerate components), the
    /// children embedded in a face following the face in sorted-code order,
    /// the exterior face last.
    pub order: Vec<CellRef>,
}

// ---------------------------------------------------------------------------
// Token alphabet.
// ---------------------------------------------------------------------------

// Control tokens (tag 0) sort below every data token; the values are chosen
// so a shorter region/rank list compares below a longer extension of it.
const CTRL_END: u32 = 0; // end-of-list separator
const CTRL_VERTEX: u32 = 1; // vertex block opener
const CTRL_EDGE: u32 = 2; // edge block opener
const CTRL_FACE: u32 = 3; // face block opener
const CTRL_CLOSE: u32 = 4; // block closer
const CTRL_PARENT: u32 = 5; // the component's parent face
const CTRL_FOREIGN: u32 = 6; // defensive: a face owned by neither (unreachable)
const CTRL_CLOSED: u32 = 7; // a vertex-free closed curve (no endpoints)
const CTRL_CHILDREN_OPEN: u32 = 8; // embedded-children multiset opener
const CTRL_CHILD_SEP: u32 = 9; // embedded-children separator
const CTRL_CHILDREN_CLOSE: u32 = 10; // embedded-children multiset closer
const CTRL_EXTERIOR: u32 = 11; // whole-invariant wrapper
const CTRL_STREAM: u32 = 12; // first-encounter stream opener (proper components)

const TAG_REGION: u32 = 1 << 28; // + region id
const TAG_EDGE_RANK: u32 = 2 << 28; // + edge rank within the ordering
const TAG_FACE_RANK: u32 = 3 << 28; // + owned-face rank within the ordering
const TAG_VERTEX_RANK: u32 = 4 << 28; // + vertex rank within the ordering

const NO_RANK: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

/// The canonical code of an invariant.
///
/// Prefer [`TopologicalInvariant::canonical_code`], which computes the code
/// once and caches it on the invariant; this free function always recomputes.
pub fn canonical_code(invariant: &TopologicalInvariant) -> CanonicalCode {
    canonical_form(invariant).code
}

/// The canonical form (code + realising cell order) of an invariant.
///
/// The two orientation sweeps are independent and run as a pool join; within
/// each sweep, components at the same tree depth are independent given the
/// deeper results and fan out per chunk (see `global_form`). Every
/// component's minimal code is a pure function of the invariant, so the
/// result is bit-identical at any thread count.
pub fn canonical_form(invariant: &TopologicalInvariant) -> CanonicalForm {
    let indexes = Indexes::build(invariant);
    let pool = topo_parallel::Pool::global();
    let (ccw, cw) = pool.join(
        || global_form(invariant, &indexes, pool, Orientation::CounterClockwise),
        || global_form(invariant, &indexes, pool, Orientation::Clockwise),
    );
    let (tokens, order) = if ccw.0 <= cw.0 { ccw } else { cw };
    let schema = invariant.schema().iter().map(|(_, name)| name.to_string()).collect();
    CanonicalForm { code: CanonicalCode { schema, tokens }, order }
}

/// Pruning statistics of the Lemma 3.1 start-choice sweep on the invariant's
/// largest skeleton component — the observable behind the giant-component
/// metrics recorded by the bench runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepStats {
    /// Number of skeleton components.
    pub components: usize,
    /// Skeleton cells (vertices + edges) of the largest component.
    pub giant_skeleton_cells: usize,
    /// All Lemma 3.1 `(vertex, proper edge)` choices of that component
    /// (per orientation).
    pub giant_choices: usize,
    /// Choices surviving the refined start filter (per orientation); each
    /// survivor streams until its first losing token.
    pub giant_surviving_choices: usize,
}

/// Computes [`SweepStats`] for an invariant (zeroes on an empty skeleton).
pub fn sweep_stats(invariant: &TopologicalInvariant) -> SweepStats {
    let components = invariant.components().len();
    let Some(giant) = (0..components).max_by_key(|&c| {
        let comp = &invariant.components()[c];
        comp.vertices.len() + comp.edges.len()
    }) else {
        return SweepStats {
            components: 0,
            giant_skeleton_cells: 0,
            giant_choices: 0,
            giant_surviving_choices: 0,
        };
    };
    let comp = &invariant.components()[giant];
    let is_proper = |e: usize| matches!(invariant.edge_endpoints(e), Some((a, b)) if a != b);
    let choices: usize = comp
        .vertices
        .iter()
        .map(|&v| invariant.vertex_slots(v).iter().filter(|&&(e, _)| is_proper(e)).count())
        .sum();
    let surviving = if comp.edges.iter().any(|&e| is_proper(e)) {
        let idx = Indexes::build(invariant);
        admissible_choices(invariant, &idx, giant).len()
    } else {
        // Degenerate components enumerate their handful of reference
        // orderings; report that count instead.
        component_orderings(invariant, giant, Orientation::CounterClockwise).len()
    };
    SweepStats {
        components,
        giant_skeleton_cells: comp.vertices.len() + comp.edges.len(),
        giant_choices: choices,
        giant_surviving_choices: surviving,
    }
}

// ---------------------------------------------------------------------------
// Precomputed incidence indexes (built once per canonicalisation).
// ---------------------------------------------------------------------------

struct Indexes {
    /// face → incident edges (the paper's Face–Edge relation, inverted once
    /// instead of scanning all edges per face per candidate).
    face_edges: Vec<Vec<usize>>,
    /// component → owned faces, sorted.
    owned_faces: Vec<Vec<usize>>,
    /// face → components directly embedded in it.
    children: Vec<Vec<ComponentId>>,
    /// Components sorted by tree depth, deepest first.
    by_depth: Vec<ComponentId>,
    /// Per-cell region-membership token runs (region tokens + `CTRL_END`).
    vertex_region_toks: Vec<Vec<u32>>,
    edge_region_toks: Vec<Vec<u32>>,
    face_region_toks: Vec<Vec<u32>>,
    /// Refined start-filter colours (see [`refine_colours`]): dense ranks of
    /// isomorphism-invariant vertex/edge keys, so comparing two colours of
    /// cells in one invariant compares their intrinsic refinement keys.
    vertex_colour: Vec<u32>,
    edge_colour: Vec<u32>,
}

/// Number of 1-neighbourhood refinement rounds. A fixed, deterministic cap
/// keeps the refinement `O(rounds × Σ degree × log)` on path-like components
/// where full stabilisation would take `O(diameter)` rounds; any deterministic
/// cap preserves isomorphism-invariance of the resulting colours.
const REFINEMENT_ROUNDS: usize = 12;

/// Assigns dense ranks (0-based, by ascending key order) to a list of keys.
/// Equal keys receive equal ranks. Returns the ranks and the number of
/// distinct classes.
fn dense_ranks<K: Ord>(keys: &[K]) -> (Vec<u32>, usize) {
    let mut by_key: Vec<usize> = (0..keys.len()).collect();
    by_key.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let mut ranks = vec![0u32; keys.len()];
    let mut rank = 0u32;
    for (i, &v) in by_key.iter().enumerate() {
        if i > 0 && keys[v] != keys[by_key[i - 1]] {
            rank += 1;
        }
        ranks[v] = rank;
    }
    let classes = if keys.is_empty() { 0 } else { rank as usize + 1 };
    (ranks, classes)
}

/// Iterated 1-neighbourhood colour refinement over the vertices (and a static
/// colouring of the edges), the start-choice filter of the lazy sweep.
///
/// Edge colour: dense rank of the edge's region signature plus its shape
/// (closed curve / loop / proper). Vertex colour: dense rank of the region
/// signature and degree, refined for up to [`REFINEMENT_ROUNDS`] rounds by the
/// sorted multiset of `(edge colour, far-endpoint colour)` pairs over the
/// incident slots — the classical colour-refinement step, orientation-free by
/// construction. All keys are intrinsic (region sets, degrees, multisets of
/// previous-round colours), and dense ranking is order-preserving, so the
/// relative order of two colours *within one component* is determined by the
/// component alone: isomorphic components (in the same or different
/// invariants) induce corresponding minimal colour classes.
fn refine_colours(
    inv: &TopologicalInvariant,
    vertex_region_toks: &[Vec<u32>],
    edge_region_toks: &[Vec<u32>],
) -> (Vec<u32>, Vec<u32>) {
    let (nv, ne) = (inv.vertex_count(), inv.edge_count());
    let edge_keys: Vec<(&[u32], u8)> = (0..ne)
        .map(|e| {
            let shape = match inv.edge_endpoints(e) {
                None => 0u8,                 // vertex-free closed curve
                Some((a, b)) if a == b => 1, // loop
                Some(_) => 2,                // proper edge
            };
            (edge_region_toks[e].as_slice(), shape)
        })
        .collect();
    let (edge_colour, _) = dense_ranks(&edge_keys);

    let vertex_keys: Vec<(&[u32], usize)> =
        (0..nv).map(|v| (vertex_region_toks[v].as_slice(), inv.degree(v))).collect();
    let (mut colour, mut classes) = dense_ranks(&vertex_keys);
    let mut pair_buf: Vec<(u32, u32)> = Vec::new();
    for _ in 0..REFINEMENT_ROUNDS {
        if classes == nv {
            break; // discrete colouring: nothing left to split
        }
        let keys: Vec<(u32, Vec<(u32, u32)>)> = (0..nv)
            .map(|v| {
                pair_buf.clear();
                for &(e, end) in inv.vertex_slots(v) {
                    let other = match inv.edge_endpoints(e) {
                        Some((a, b)) => {
                            if end == 0 {
                                b
                            } else {
                                a
                            }
                        }
                        None => v, // unreachable: slotted edges have endpoints
                    };
                    pair_buf.push((edge_colour[e], colour[other]));
                }
                pair_buf.sort_unstable();
                (colour[v], pair_buf.clone())
            })
            .collect();
        let (next, next_classes) = dense_ranks(&keys);
        if next_classes == classes {
            break; // partition stable: further rounds cannot split it
        }
        colour = next;
        classes = next_classes;
    }
    (colour, edge_colour)
}

impl Indexes {
    fn build(inv: &TopologicalInvariant) -> Self {
        let (nv, ne, nf) = (inv.vertex_count(), inv.edge_count(), inv.face_count());
        let ncomp = inv.components().len();
        let mut face_edges: Vec<Vec<usize>> = vec![Vec::new(); nf];
        for e in 0..ne {
            let (a, b) = inv.edge_faces(e);
            face_edges[a].push(e);
            if b != a {
                face_edges[b].push(e);
            }
        }
        let mut owned_faces: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
        for f in 0..nf {
            if let Some(c) = inv.face_owner(f) {
                owned_faces[c].push(f);
            }
        }
        let mut children: Vec<Vec<ComponentId>> = vec![Vec::new(); nf];
        for (c, comp) in inv.components().iter().enumerate() {
            children[comp.parent_face].push(c);
        }
        let mut by_depth: Vec<ComponentId> = (0..ncomp).collect();
        by_depth.sort_by_key(|&c| std::cmp::Reverse(inv.components()[c].depth));
        let region_toks = |set: &crate::complex::RegionSet| -> Vec<u32> {
            let mut out: Vec<u32> = set.iter().map(|r| TAG_REGION | r as u32).collect();
            out.push(CTRL_END);
            out
        };
        let vertex_region_toks: Vec<Vec<u32>> =
            (0..nv).map(|v| region_toks(inv.vertex_regions(v))).collect();
        let edge_region_toks: Vec<Vec<u32>> =
            (0..ne).map(|e| region_toks(inv.edge_regions(e))).collect();
        let (vertex_colour, edge_colour) =
            refine_colours(inv, &vertex_region_toks, &edge_region_toks);
        Indexes {
            face_edges,
            owned_faces,
            children,
            by_depth,
            vertex_region_toks,
            edge_region_toks,
            face_region_toks: (0..nf).map(|f| region_toks(inv.face_regions(f))).collect(),
            vertex_colour,
            edge_colour,
        }
    }
}

// ---------------------------------------------------------------------------
// Reusable per-candidate scratch state.
// ---------------------------------------------------------------------------

struct Scratch {
    /// Per-kind ranks within the current candidate (`NO_RANK` when the cell
    /// has not been reached). On the streamed path these are the
    /// first-encounter ranks, assigned incrementally as the traversal emits;
    /// on the degenerate path they are the ranks of a pre-built ordering.
    vrank: Vec<u32>,
    erank: Vec<u32>,
    frank: Vec<u32>,
    /// The current candidate's cell order (first-encounter order on the
    /// streamed path). Doubles as the undo log for [`Scratch::reset_ranks`].
    order_buf: Vec<CellRef>,
    /// DFS stack and the degenerate path's cone token buffer.
    stack: Vec<(usize, usize)>,
    cone_buf: Vec<u32>,
    /// Sorted incident-edge ranks of the owned faces, flattened into one
    /// reusable buffer (no per-face allocation per candidate); `face_spans`
    /// holds `(start, len, face)` slices of it, in face-rank order.
    face_rank_buf: Vec<u32>,
    face_spans: Vec<(u32, u32, usize)>,
}

impl Scratch {
    fn new(inv: &TopologicalInvariant) -> Self {
        Scratch {
            vrank: vec![NO_RANK; inv.vertex_count()],
            erank: vec![NO_RANK; inv.edge_count()],
            frank: vec![NO_RANK; inv.face_count()],
            order_buf: Vec::new(),
            stack: Vec::new(),
            cone_buf: Vec::new(),
            face_rank_buf: Vec::new(),
            face_spans: Vec::new(),
        }
    }

    /// Appends one face's sorted incident-edge ranks to the flat buffer and
    /// records its span. Every edge rank of the face's component must already
    /// be assigned.
    fn push_face_key(&mut self, face: usize, idx: &Indexes) {
        let start = self.face_rank_buf.len();
        for &e in &idx.face_edges[face] {
            let r = self.erank[e];
            if r != NO_RANK {
                self.face_rank_buf.push(r);
            }
        }
        self.face_rank_buf[start..].sort_unstable();
        self.face_spans.push((start as u32, (self.face_rank_buf.len() - start) as u32, face));
    }

    /// The sorted incident-edge ranks recorded for the face with the given
    /// face rank.
    fn face_key(&self, frank: u32) -> (&[u32], usize) {
        let (start, len, face) = self.face_spans[frank as usize];
        (&self.face_rank_buf[start as usize..(start + len) as usize], face)
    }

    /// Clears the rank assignments of the current candidate (cheap: only the
    /// cells actually ranked are touched).
    fn reset_ranks(&mut self) {
        for &(kind, id) in &self.order_buf {
            match kind {
                CellKind::Vertex => self.vrank[id] = NO_RANK,
                CellKind::Edge => self.erank[id] = NO_RANK,
                CellKind::Face => self.frank[id] = NO_RANK,
            }
        }
        self.order_buf.clear();
    }

    /// Assigns per-kind ranks from an externally built cell order and fills
    /// the face-key buffers (sorted incident-edge ranks per owned face, in
    /// face-rank order) so the serialiser can reuse them.
    fn rank_order(&mut self, order: &[CellRef], idx: &Indexes) {
        debug_assert!(self.order_buf.is_empty());
        let (mut v, mut e, mut f) = (0u32, 0u32, 0u32);
        for &(kind, id) in order {
            match kind {
                CellKind::Vertex => {
                    self.vrank[id] = v;
                    v += 1;
                }
                CellKind::Edge => {
                    self.erank[id] = e;
                    e += 1;
                }
                CellKind::Face => {
                    self.frank[id] = f;
                    f += 1;
                }
            }
            self.order_buf.push((kind, id));
        }
        // Faces follow all edges in every component ordering, so every edge
        // rank is already assigned here.
        self.face_rank_buf.clear();
        self.face_spans.clear();
        for &(kind, id) in order {
            if kind == CellKind::Face {
                self.push_face_key(id, idx);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Early-abandon minimal-code builder.
// ---------------------------------------------------------------------------

/// Tracks the best (lexicographically least) candidate serialisation seen so
/// far. New candidates are emitted token by token; as soon as a candidate is
/// known to compare greater than the best it is abandoned (every `emit`
/// returns `false`).
struct CodeBuilder {
    best: Vec<u32>,
    best_order: Vec<CellRef>,
    cur: Vec<u32>,
    comparing: bool,
    less: bool,
}

impl CodeBuilder {
    fn new() -> Self {
        CodeBuilder {
            best: Vec::new(),
            best_order: Vec::new(),
            cur: Vec::new(),
            comparing: false,
            less: false,
        }
    }

    fn start_candidate(&mut self) {
        self.cur.clear();
        self.comparing = !self.best.is_empty();
        self.less = false;
    }

    #[inline]
    fn emit(&mut self, tok: u32) -> bool {
        if self.comparing && !self.less {
            match self.best.get(self.cur.len()) {
                // The best code is a proper prefix: it compares smaller.
                None => return false,
                Some(&b) if tok > b => return false,
                Some(&b) if tok < b => self.less = true,
                _ => {}
            }
        }
        self.cur.push(tok);
        true
    }

    fn emit_slice(&mut self, toks: &[u32]) -> bool {
        if self.comparing && !self.less {
            let pos = self.cur.len();
            let avail = self.best.len() - pos;
            if avail < toks.len() {
                // The best code ends inside this run: equal prefix means the
                // best is a proper prefix of the candidate, hence smaller.
                if toks[..avail] >= self.best[pos..] {
                    return false;
                }
                self.less = true;
            } else {
                match toks.cmp(&self.best[pos..pos + toks.len()]) {
                    std::cmp::Ordering::Less => self.less = true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => {}
                }
            }
        }
        self.cur.extend_from_slice(toks);
        true
    }

    /// Call after a candidate was fully emitted (not abandoned).
    fn finish_candidate(&mut self, order: &[CellRef]) {
        let wins = !self.comparing || self.less || self.cur.len() < self.best.len();
        if wins {
            std::mem::swap(&mut self.best, &mut self.cur);
            self.best_order.clear();
            self.best_order.extend_from_slice(order);
        }
    }

    fn into_result(self) -> (Vec<u32>, Vec<CellRef>) {
        (self.best, self.best_order)
    }
}

// ---------------------------------------------------------------------------
// Whole-invariant sweep under one orientation.
// ---------------------------------------------------------------------------

/// The minimal serialisation and realising cell order of one component
/// subtree.
struct CompResult {
    tokens: Vec<u32>,
    order: Vec<CellRef>,
}

/// The per-component sweep results of one orientation: every component's
/// minimal subtree code, plus the per-face joined children blobs and the
/// children of each face in sorted-code order.
struct SweepOutput {
    results: Vec<Option<CompResult>>,
    face_child_order: Vec<Vec<ComponentId>>,
}

fn global_form(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    pool: topo_parallel::Pool,
    orientation: Orientation,
) -> (Vec<u32>, Vec<CellRef>) {
    let swept = sweep_components(inv, idx, pool, orientation);

    // Top level: the components embedded in the exterior face.
    let exterior = inv.exterior_face();
    let (top_blob, top_order) = join_children(&idx.children[exterior], &swept.results);
    let mut tokens = Vec::with_capacity(top_blob.len() + 1);
    tokens.push(CTRL_EXTERIOR);
    tokens.extend_from_slice(&top_blob);

    let mut order: Vec<CellRef> = Vec::with_capacity(inv.cell_count());
    for &c in &top_order {
        glue_subtree_order(&swept, c, &mut order);
    }
    order.push((CellKind::Face, exterior));
    (tokens, order)
}

/// Runs the bottom-up component sweep of one orientation (the body of
/// `global_form` up to, but not including, the exterior-face join).
fn sweep_components(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    pool: topo_parallel::Pool,
    orientation: Orientation,
) -> SweepOutput {
    let ncomp = inv.components().len();
    let nf = inv.face_count();
    let mut scratch = Scratch::new(inv);
    let mut results: Vec<Option<CompResult>> = (0..ncomp).map(|_| None).collect();
    // face → pre-joined children blob and the children in sorted-code order.
    let mut face_blob: Vec<Vec<u32>> = vec![Vec::new(); nf];
    let mut face_child_order: Vec<Vec<ComponentId>> = vec![Vec::new(); nf];

    // `by_depth` is sorted deepest-first; components at equal depth are
    // mutually independent given the deeper results, so each depth level
    // joins its children blobs sequentially (cheap) and then sweeps its
    // components on the pool. Each component's minimal code is a pure
    // function of `(inv, idx, component, orientation, face_blob)`, results
    // are keyed by component id, and scratch state is per chunk — the level
    // output is bit-identical to the sequential sweep at any thread count.
    let mut level_start = 0usize;
    while level_start < ncomp {
        let depth = inv.components()[idx.by_depth[level_start]].depth;
        let mut level_end = level_start + 1;
        while level_end < ncomp && inv.components()[idx.by_depth[level_end]].depth == depth {
            level_end += 1;
        }
        let level = &idx.by_depth[level_start..level_end];
        for &c in level {
            // All deeper components are finished; join the children embedded
            // in each face owned by `c` into one sorted-multiset blob.
            for &f in &idx.owned_faces[c] {
                let (blob, order) = join_children(&idx.children[f], &results);
                face_blob[f] = blob;
                face_child_order[f] = order;
            }
        }
        if level.len() > 1 && pool.is_parallel() {
            // One scratch per chunk (scratch buffers are sized by the whole
            // invariant, so chunks are capped near the thread count).
            let min_chunk = level.len().div_ceil(pool.threads());
            let computed: Vec<Vec<(ComponentId, CompResult)>> =
                pool.par_chunks(level, min_chunk, |_, chunk| {
                    let mut local = Scratch::new(inv);
                    chunk
                        .iter()
                        .map(|&c| {
                            (c, component_code(inv, idx, &mut local, c, orientation, &face_blob))
                        })
                        .collect()
                });
            for (c, result) in computed.into_iter().flatten() {
                results[c] = Some(result);
            }
        } else {
            for &c in level {
                results[c] =
                    Some(component_code(inv, idx, &mut scratch, c, orientation, &face_blob));
            }
        }
        level_start = level_end;
    }
    SweepOutput { results, face_child_order }
}

/// Appends the glued cell order of one component subtree: the component's
/// cells in its winning order, children of a face emitted right after the
/// face in sorted-code order, recursively. An explicit stack of
/// `(component, resume position)` frames keeps the traversal bounded
/// regardless of how deeply the component tree nests.
fn glue_subtree_order(swept: &SweepOutput, root: ComponentId, order: &mut Vec<CellRef>) {
    let mut stack: Vec<(ComponentId, usize)> = vec![(root, 0)];
    while let Some((c, resume_at)) = stack.pop() {
        let result = swept.results[c].as_ref().expect("component code computed");
        let mut i = resume_at;
        while i < result.order.len() {
            let cell = result.order[i];
            order.push(cell);
            i += 1;
            if let (CellKind::Face, f) = cell {
                let children = &swept.face_child_order[f];
                if !children.is_empty() {
                    // Emit the children next, then resume this component.
                    stack.push((c, i));
                    stack.extend(children.iter().rev().map(|&child| (child, 0)));
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Partial forms for incremental maintenance (crate-internal).
// ---------------------------------------------------------------------------

/// One exterior-embedded component subtree's serialisation under one
/// orientation: its joined token stream (exactly the run `join_children`
/// would splice between `CTRL_CHILD_SEP`s at the exterior face) and its glued
/// depth-first cell order (exactly the run `global_form` emits for the
/// subtree). Cell ids refer to whatever invariant produced the form; the
/// incremental maintainer remaps them before merging.
#[derive(Clone, Debug)]
pub(crate) struct SubtreeForm {
    pub(crate) tokens: Vec<u32>,
    pub(crate) order: Vec<CellRef>,
}

/// Per-orientation top-level subtree forms of an invariant:
/// `[counterclockwise, clockwise]`, each holding one [`SubtreeForm`] per
/// component embedded in the exterior face, in component-id order (callers
/// sort by token stream when joining).
///
/// Because every component's minimal code is intrinsic (see
/// [`refine_colours`]), the forms of an invariant built from a *subset* of
/// another instance's regions — provided the subset's components are exactly
/// the full instance's components over those cells — are bit-identical to
/// the corresponding subtree runs of the full sweep. This is the contract
/// `maintain` relies on to canonicalise disjoint region groups independently.
pub(crate) fn oriented_top_forms(inv: &TopologicalInvariant) -> [Vec<SubtreeForm>; 2] {
    let idx = Indexes::build(inv);
    let pool = topo_parallel::Pool::global();
    let (ccw, cw) = pool.join(
        || top_forms(inv, &idx, pool, Orientation::CounterClockwise),
        || top_forms(inv, &idx, pool, Orientation::Clockwise),
    );
    [ccw, cw]
}

fn top_forms(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    pool: topo_parallel::Pool,
    orientation: Orientation,
) -> Vec<SubtreeForm> {
    let swept = sweep_components(inv, idx, pool, orientation);
    let exterior = inv.exterior_face();
    idx.children[exterior]
        .iter()
        .map(|&c| {
            let tokens = swept.results[c].as_ref().expect("component code computed").tokens.clone();
            let mut order = Vec::new();
            glue_subtree_order(&swept, c, &mut order);
            SubtreeForm { tokens, order }
        })
        .collect()
}

/// Assembles a whole-invariant [`CanonicalForm`] from per-orientation
/// top-level subtree forms (cell ids already remapped to the merged
/// invariant): per orientation, the subtrees are sorted by token stream and
/// joined exactly as `join_children` + `global_form` would at the exterior
/// face; the lexicographically smaller orientation wins, as in
/// [`canonical_form`]. `exterior` is the merged invariant's exterior face id
/// and is appended last to each order.
pub(crate) fn merge_top_forms(
    schema: Vec<String>,
    exterior: usize,
    ccw: Vec<SubtreeForm>,
    cw: Vec<SubtreeForm>,
) -> CanonicalForm {
    fn join(mut forms: Vec<SubtreeForm>, exterior: usize) -> (Vec<u32>, Vec<CellRef>) {
        forms.sort_by(|a, b| a.tokens.cmp(&b.tokens));
        let total: usize = forms.iter().map(|f| f.tokens.len() + 1).sum::<usize>();
        let mut tokens = Vec::with_capacity(total + 1);
        tokens.push(CTRL_EXTERIOR);
        let mut order = Vec::new();
        for (i, f) in forms.iter().enumerate() {
            if i > 0 {
                tokens.push(CTRL_CHILD_SEP);
            }
            tokens.extend_from_slice(&f.tokens);
            order.extend_from_slice(&f.order);
        }
        order.push((CellKind::Face, exterior));
        (tokens, order)
    }
    let ccw = join(ccw, exterior);
    let cw = join(cw, exterior);
    let (tokens, order) = if ccw.0 <= cw.0 { ccw } else { cw };
    CanonicalForm { code: CanonicalCode { schema, tokens }, order }
}

/// Joins the finished codes of sibling components into one sorted-multiset
/// blob (`CTRL_CHILD_SEP`-separated) and reports the sorted component order.
fn join_children(
    children: &[ComponentId],
    results: &[Option<CompResult>],
) -> (Vec<u32>, Vec<ComponentId>) {
    let mut sorted: Vec<ComponentId> = children.to_vec();
    sorted.sort_by(|&a, &b| {
        let (ta, tb) = (
            &results[a].as_ref().expect("child code computed").tokens,
            &results[b].as_ref().expect("child code computed").tokens,
        );
        ta.cmp(tb)
    });
    let total: usize =
        sorted.iter().map(|&c| results[c].as_ref().unwrap().tokens.len() + 1).sum::<usize>();
    let mut blob = Vec::with_capacity(total);
    for (i, &c) in sorted.iter().enumerate() {
        if i > 0 {
            blob.push(CTRL_CHILD_SEP);
        }
        blob.extend_from_slice(&results[c].as_ref().unwrap().tokens);
    }
    (blob, sorted)
}

// ---------------------------------------------------------------------------
// Per-component minimal code (the pruned Lemma 3.1 sweep).
// ---------------------------------------------------------------------------

fn component_code(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    scratch: &mut Scratch,
    component: ComponentId,
    orientation: Orientation,
    face_blob: &[Vec<u32>],
) -> CompResult {
    let comp = &inv.components()[component];
    let is_proper = |e: usize| matches!(inv.edge_endpoints(e), Some((a, b)) if a != b);
    let has_proper = comp.edges.iter().any(|&e| is_proper(e));
    let mut builder = CodeBuilder::new();

    if has_proper {
        for (v, e) in admissible_choices(inv, idx, component) {
            builder.start_candidate();
            let completed = stream_candidate(
                inv,
                idx,
                scratch,
                component,
                orientation,
                v,
                e,
                comp.parent_face,
                face_blob,
                &mut builder,
            );
            if completed {
                builder.finish_candidate(&scratch.order_buf);
            }
            scratch.reset_ranks();
        }
    } else {
        // Degenerate components (Lemma 3.1's special cases) have a handful of
        // candidate orderings at most; enumerate them with the reference
        // enumeration and serialise each.
        for ordering in component_orderings(inv, component, orientation) {
            scratch.rank_order(&ordering.order, idx);
            builder.start_candidate();
            let completed = serialize_candidate(
                inv,
                idx,
                scratch,
                comp.parent_face,
                orientation,
                face_blob,
                &mut builder,
            );
            if completed {
                builder.finish_candidate(&scratch.order_buf);
            }
            scratch.reset_ranks();
        }
    }

    let (tokens, order) = builder.into_result();
    debug_assert!(!tokens.is_empty(), "every component has at least one ordering");
    CompResult { tokens, order }
}

/// The start choices of a component with proper edges that survive the
/// refined start filter: `(vertex, proper edge)` pairs whose vertex is in the
/// component's minimal refinement colour class (among vertices with a proper
/// incident edge) and whose edge realises the minimal
/// `(edge colour, far-endpoint colour)` key over that class.
///
/// Both restrictions are isomorphism-invariant and the result is never empty,
/// so the minimum over the surviving choices is itself canonical; it need not
/// (and does not) coincide with the minimum over all Lemma 3.1 choices.
fn admissible_choices(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    component: ComponentId,
) -> Vec<(usize, usize)> {
    let comp = &inv.components()[component];
    let is_proper = |e: usize| matches!(inv.edge_endpoints(e), Some((a, b)) if a != b);
    let min_colour = comp
        .vertices
        .iter()
        .filter(|&&v| inv.vertex_slots(v).iter().any(|&(e, _)| is_proper(e)))
        .map(|&v| idx.vertex_colour[v])
        .min()
        .expect("component with proper edges has a start vertex");
    let mut choices: Vec<(u32, u32, usize, usize)> = Vec::new();
    for &v in &comp.vertices {
        if idx.vertex_colour[v] != min_colour {
            continue;
        }
        for &(e, end) in inv.vertex_slots(v) {
            // A proper edge has distinct endpoints, so it occupies exactly
            // one slot at any vertex and each `(v, e)` choice appears once.
            if !is_proper(e) {
                continue;
            }
            let (a, b) = inv.edge_endpoints(e).unwrap();
            let other = if end == 0 { b } else { a };
            choices.push((idx.edge_colour[e], idx.vertex_colour[other], v, e));
        }
    }
    let min_key = choices.iter().map(|&(ec, oc, _, _)| (ec, oc)).min().expect("choices nonempty");
    choices.retain(|&(ec, oc, _, _)| (ec, oc) == min_key);
    choices.into_iter().map(|(_, _, v, e)| (v, e)).collect()
}

/// Lemma 3.1's traversal for a component with proper edges, fused with the
/// serialisation: tokens stream into the builder as the depth-first traversal
/// grows the first-encounter ordering, and the first losing token aborts the
/// candidate — traversal included. Returns `false` on abort; on success the
/// scratch ranks and `order_buf` hold the candidate's first-encounter cell
/// order (for [`CodeBuilder::finish_candidate`]). The caller must
/// [`Scratch::reset_ranks`] afterwards either way.
#[allow(clippy::too_many_arguments)]
fn stream_candidate(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    scratch: &mut Scratch,
    component: ComponentId,
    orientation: Orientation,
    start_vertex: usize,
    start_edge: usize,
    parent_face: usize,
    face_blob: &[Vec<u32>],
    builder: &mut CodeBuilder,
) -> bool {
    let is_proper = |e: usize| matches!(inv.edge_endpoints(e), Some((a, b)) if a != b);
    debug_assert!(scratch.order_buf.is_empty());
    if !builder.emit(CTRL_STREAM) {
        return false;
    }

    // Depth-first traversal over proper edges, visiting the proper edges
    // around each vertex in rotation order starting from the vertex's
    // associated edge. `vrank` doubles as the visited marker; `erank` and
    // `frank` are first-encounter ranks assigned while emitting.
    let (mut vcount, mut ecount, mut fcount) = (0u32, 0u32, 0u32);
    scratch.stack.clear();
    scratch.stack.push((start_vertex, start_edge));
    while let Some((v, via_edge)) = scratch.stack.pop() {
        if scratch.vrank[v] != NO_RANK {
            continue;
        }
        scratch.vrank[v] = vcount;
        vcount += 1;
        scratch.order_buf.push((CellKind::Vertex, v));
        if !builder.emit(CTRL_VERTEX) || !builder.emit_slice(&idx.vertex_region_toks[v]) {
            return false;
        }
        let slots = inv.vertex_slots(v);
        let sectors = inv.vertex_sector_faces(v);
        let degree = slots.len();
        let start = slots
            .iter()
            .position(|&(e, _)| e == via_edge)
            .expect("associated edge is incident to the vertex");
        let unvisited_from = scratch.stack.len();
        for k in 0..degree {
            let i = rotated_index(start, k, degree, orientation);
            let (e, end) = slots[i];
            // The cone item for the slot: a first encounter assigns the
            // edge's rank and inlines its region signature; later mentions
            // emit the known rank alone.
            if scratch.erank[e] == NO_RANK {
                scratch.erank[e] = ecount;
                ecount += 1;
                scratch.order_buf.push((CellKind::Edge, e));
                if !builder.emit(TAG_EDGE_RANK | scratch.erank[e])
                    || !builder.emit_slice(&idx.edge_region_toks[e])
                {
                    return false;
                }
            } else if !builder.emit(TAG_EDGE_RANK | scratch.erank[e]) {
                return false;
            }
            // The face sector following the slot in the chosen orientation:
            // reading the cone clockwise, slot `i` is followed by the sector
            // that counterclockwise-precedes it.
            let si = match orientation {
                Orientation::CounterClockwise => i,
                Orientation::Clockwise => (i + degree - 1) % degree,
            };
            let f = sectors[si];
            if f == parent_face {
                if !builder.emit(CTRL_PARENT) {
                    return false;
                }
            } else if scratch.frank[f] != NO_RANK {
                if !builder.emit(TAG_FACE_RANK | scratch.frank[f]) {
                    return false;
                }
            } else if inv.face_owner(f) == Some(component) {
                // First encounter of an owned face: assign its rank and
                // inline its region signature and embedded-children blob.
                scratch.frank[f] = fcount;
                fcount += 1;
                scratch.order_buf.push((CellKind::Face, f));
                if !builder.emit(TAG_FACE_RANK | scratch.frank[f])
                    || !builder.emit_slice(&idx.face_region_toks[f])
                    || !builder.emit(CTRL_CHILDREN_OPEN)
                    || !builder.emit_slice(&face_blob[f])
                    || !builder.emit(CTRL_CHILDREN_CLOSE)
                {
                    return false;
                }
            } else {
                // A face owned by neither this component nor its parent
                // cannot occur; defensively encode it opaquely.
                if !builder.emit(CTRL_FOREIGN) {
                    return false;
                }
            }
            // Queue the far endpoint of an unvisited proper edge; loops (the
            // only twice-slotted edges) never lead anywhere new.
            if is_proper(e) {
                let (a, b) = inv.edge_endpoints(e).unwrap();
                let other = if end == 0 { b } else { a };
                if scratch.vrank[other] == NO_RANK {
                    scratch.stack.push((other, e));
                }
            }
        }
        if !builder.emit(CTRL_CLOSE) {
            return false;
        }
        // The paper's recursion inserts each sub-order right after its parent
        // vertex; reversing the freshly pushed children reproduces that.
        scratch.stack[unvisited_from..].reverse();
    }
    true
}

/// Serialises the current candidate ordering (ranks + `order_buf` in
/// `scratch`) into the builder. Returns `false` if the candidate was
/// abandoned as lexicographically greater than the best-so-far.
fn serialize_candidate(
    inv: &TopologicalInvariant,
    idx: &Indexes,
    scratch: &mut Scratch,
    parent_face: usize,
    orientation: Orientation,
    face_blob: &[Vec<u32>],
    builder: &mut CodeBuilder,
) -> bool {
    let face_token = |f: usize, frank: &[u32]| -> u32 {
        if f == parent_face {
            CTRL_PARENT
        } else if frank[f] != NO_RANK {
            TAG_FACE_RANK | frank[f]
        } else {
            // A face bordered by this component but owned by neither it nor
            // its parent cannot occur; defensively encode it opaquely.
            CTRL_FOREIGN
        }
    };
    // `order_buf` is iterated while the cone buffer mutates; take it out.
    let order = std::mem::take(&mut scratch.order_buf);
    let mut completed = true;
    'cells: for &(kind, id) in &order {
        match kind {
            CellKind::Vertex => {
                if !builder.emit(CTRL_VERTEX) || !builder.emit_slice(&idx.vertex_region_toks[id]) {
                    completed = false;
                    break 'cells;
                }
                // The cone, read in the chosen orientation, rotated to the
                // lexicographically least starting position.
                scratch.cone_buf.clear();
                for item in inv.cone(id) {
                    scratch.cone_buf.push(match item {
                        ConeItem::Edge(e) => TAG_EDGE_RANK | scratch.erank[e],
                        ConeItem::Face(f) => face_token(f, &scratch.frank),
                    });
                }
                let n = scratch.cone_buf.len();
                let mut best_start = 0usize;
                for s in 1..n {
                    for k in 0..n {
                        let a = scratch.cone_buf[rotated_index(s, k, n, orientation)];
                        let b = scratch.cone_buf[rotated_index(best_start, k, n, orientation)];
                        if a < b {
                            best_start = s;
                            break;
                        }
                        if a > b {
                            break;
                        }
                    }
                }
                for k in 0..n {
                    let tok = scratch.cone_buf[rotated_index(best_start, k, n, orientation)];
                    if !builder.emit(tok) {
                        completed = false;
                        break 'cells;
                    }
                }
                if !builder.emit(CTRL_CLOSE) {
                    completed = false;
                    break 'cells;
                }
            }
            CellKind::Edge => {
                if !builder.emit(CTRL_EDGE) || !builder.emit_slice(&idx.edge_region_toks[id]) {
                    completed = false;
                    break 'cells;
                }
                let endpoint_ok = match inv.edge_endpoints(id) {
                    None => builder.emit(CTRL_CLOSED),
                    Some((a, b)) => {
                        let (ra, rb) = (scratch.vrank[a], scratch.vrank[b]);
                        let (lo, hi) = (ra.min(rb), ra.max(rb));
                        builder.emit(TAG_VERTEX_RANK | lo) && builder.emit(TAG_VERTEX_RANK | hi)
                    }
                };
                if !endpoint_ok {
                    completed = false;
                    break 'cells;
                }
                let (fa, fb) = inv.edge_faces(id);
                let (ta, tb) = (face_token(fa, &scratch.frank), face_token(fb, &scratch.frank));
                let (lo, hi) = (ta.min(tb), ta.max(tb));
                if !builder.emit(lo) || !builder.emit(hi) || !builder.emit(CTRL_CLOSE) {
                    completed = false;
                    break 'cells;
                }
            }
            CellKind::Face => {
                if !builder.emit(CTRL_FACE) || !builder.emit_slice(&idx.face_region_toks[id]) {
                    completed = false;
                    break 'cells;
                }
                // The sorted incident-edge ranks were the face's sort key and
                // sit in the span buffer in face-rank order; reuse them
                // instead of re-deriving and re-sorting per candidate.
                let (edge_ranks, key_face) = scratch.face_key(scratch.frank[id]);
                debug_assert_eq!(key_face, id, "face spans aligned with face ranks");
                let mut all_emitted = true;
                for &r in edge_ranks {
                    if !builder.emit(TAG_EDGE_RANK | r) {
                        all_emitted = false;
                        break;
                    }
                }
                if !all_emitted {
                    completed = false;
                    break 'cells;
                }
                // Children embedded in this face, as the pre-joined sorted
                // multiset blob (memoised subtree codes — never re-serialised
                // here).
                if !builder.emit(CTRL_END)
                    || !builder.emit(CTRL_CHILDREN_OPEN)
                    || !builder.emit_slice(&face_blob[id])
                    || !builder.emit(CTRL_CHILDREN_CLOSE)
                    || !builder.emit(CTRL_CLOSE)
                {
                    completed = false;
                    break 'cells;
                }
            }
        }
    }
    scratch.order_buf = order;
    completed
}

// ---------------------------------------------------------------------------
// Parameterised orderings (reference enumeration, public API).
// ---------------------------------------------------------------------------

/// One parameterised ordering of a connected component (Lemma 3.1): the
/// parameter choice and the resulting total order on the component's
/// vertices, edges and owned faces.
#[derive(Clone, Debug)]
pub struct ComponentOrdering {
    /// The orientation used.
    pub orientation: Orientation,
    /// The start vertex, if the component has any vertex.
    pub start_vertex: Option<usize>,
    /// The start edge (a proper edge adjacent to the start vertex, or a loop
    /// slot for loop-only components).
    pub start_edge: Option<usize>,
    /// The total order: vertices first (in traversal order), then edges, then
    /// the faces owned by the component.
    pub order: Vec<CellRef>,
}

/// All parameterised orderings of a component under a fixed orientation,
/// exactly one per admissible `(vertex, proper edge)` choice (plus the single
/// trivial choice for the degenerate components of Lemma 3.1's special
/// cases).
pub fn component_orderings(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    orientation: Orientation,
) -> Vec<ComponentOrdering> {
    let comp = &invariant.components()[component];
    let proper_edges: Vec<usize> = comp
        .edges
        .iter()
        .copied()
        .filter(|&e| matches!(invariant.edge_endpoints(e), Some((a, b)) if a != b))
        .collect();

    if !proper_edges.is_empty() {
        let mut out = Vec::new();
        for &v in &comp.vertices {
            for &(e, _) in invariant.vertex_slots(v) {
                if !proper_edges.contains(&e) {
                    continue;
                }
                out.push(build_ordering(invariant, component, orientation, v, e));
            }
        }
        // A vertex adjacent to the same proper edge twice cannot happen (a
        // proper edge has distinct endpoints), but a loop shares its slots, so
        // deduplicate identical (vertex, edge) choices.
        out.dedup_by(|a, b| a.start_vertex == b.start_vertex && a.start_edge == b.start_edge);
        return out;
    }

    // Special cases: no proper edge.
    if comp.edges.is_empty() {
        // An isolated vertex.
        let v = comp.vertices[0];
        return vec![ComponentOrdering {
            orientation,
            start_vertex: Some(v),
            start_edge: None,
            order: vec![(CellKind::Vertex, v)],
        }];
    }
    if comp.vertices.is_empty() {
        // A single vertex-free closed curve.
        let e = comp.edges[0];
        let mut order = vec![(CellKind::Edge, e)];
        for f in invariant.owned_faces(component) {
            order.push((CellKind::Face, f));
        }
        return vec![ComponentOrdering {
            orientation,
            start_vertex: None,
            start_edge: Some(e),
            order,
        }];
    }
    // A single vertex with loops only: one ordering per starting slot.
    let v = comp.vertices[0];
    let slots = invariant.vertex_slots(v);
    let mut out = Vec::new();
    for start in 0..slots.len() {
        let mut edge_order: Vec<usize> = Vec::new();
        for k in 0..slots.len() {
            let idx = rotated_index(start, k, slots.len(), orientation);
            let (e, _) = slots[idx];
            if !edge_order.contains(&e) {
                edge_order.push(e);
            }
        }
        let mut order: Vec<CellRef> = vec![(CellKind::Vertex, v)];
        order.extend(edge_order.iter().map(|&e| (CellKind::Edge, e)));
        let edge_rank: HashMap<usize, usize> =
            edge_order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        order.extend(
            ordered_owned_faces(invariant, component, &edge_rank)
                .into_iter()
                .map(|f| (CellKind::Face, f)),
        );
        out.push(ComponentOrdering {
            orientation,
            start_vertex: Some(v),
            start_edge: Some(slots[start].0),
            order,
        });
    }
    out
}

fn rotated_index(start: usize, offset: usize, len: usize, orientation: Orientation) -> usize {
    match orientation {
        Orientation::CounterClockwise => (start + offset) % len,
        Orientation::Clockwise => (start + len - (offset % len)) % len,
    }
}

/// Lemma 3.1's traversal for a component with proper edges, from the choice
/// `(orientation, start vertex, adjacent proper edge)`.
fn build_ordering(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    orientation: Orientation,
    start_vertex: usize,
    start_edge: usize,
) -> ComponentOrdering {
    let comp = &invariant.components()[component];
    let is_proper = |e: usize| matches!(invariant.edge_endpoints(e), Some((a, b)) if a != b);

    // Depth-first traversal over proper edges, visiting the proper edges
    // around each vertex in rotation order starting from the vertex's
    // associated edge.
    let mut vertex_order: Vec<usize> = Vec::new();
    let mut assoc: HashMap<usize, usize> = HashMap::new();
    let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut stack: Vec<(usize, usize)> = vec![(start_vertex, start_edge)];
    // The recursion of the paper inserts each sub-order right after its parent
    // vertex; an explicit stack with children pushed in reverse visit order
    // reproduces the same sequence.
    while let Some((v, via_edge)) = stack.pop() {
        if visited.contains(&v) {
            continue;
        }
        visited.insert(v);
        assoc.insert(v, via_edge);
        vertex_order.push(v);
        let slots = invariant.vertex_slots(v);
        let degree = slots.len();
        let start = slots
            .iter()
            .position(|&(e, _)| e == via_edge)
            .expect("associated edge is incident to the vertex");
        let mut neighbours: Vec<(usize, usize)> = Vec::new();
        let mut seen_edges: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for k in 0..degree {
            let idx = rotated_index(start, k, degree, orientation);
            let (e, end) = slots[idx];
            if !is_proper(e) || !seen_edges.insert(e) {
                continue;
            }
            let (a, b) = invariant.edge_endpoints(e).unwrap();
            let other = if end == 0 { b } else { a };
            if !visited.contains(&other) {
                neighbours.push((other, e));
            }
        }
        for item in neighbours.into_iter().rev() {
            stack.push(item);
        }
    }
    let vertex_rank: HashMap<usize, usize> =
        vertex_order.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Edge order: lexicographic on endpoint ranks, ties broken by rotation
    // position around the smaller-ranked endpoint starting from its
    // associated edge.
    let mut edges: Vec<usize> = comp.edges.clone();
    let edge_key = |e: usize| -> (usize, usize, usize) {
        let (a, b) =
            invariant.edge_endpoints(e).expect("component with proper edges has no closed curves");
        let (ra, rb) = (vertex_rank[&a], vertex_rank[&b]);
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        let anchor = if ra <= rb { a } else { b };
        let slots = invariant.vertex_slots(anchor);
        let degree = slots.len();
        let anchor_assoc = assoc[&anchor];
        let start = slots
            .iter()
            .position(|&(edge, _)| edge == anchor_assoc)
            .expect("associated edge incident to anchor");
        let mut position = degree;
        for k in 0..degree {
            let idx = rotated_index(start, k, degree, orientation);
            if slots[idx].0 == e {
                position = k;
                break;
            }
        }
        (lo, hi, position)
    };
    edges.sort_by_key(|&e| edge_key(e));
    let edge_rank: HashMap<usize, usize> = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    let mut order: Vec<CellRef> = vertex_order.iter().map(|&v| (CellKind::Vertex, v)).collect();
    order.extend(edges.iter().map(|&e| (CellKind::Edge, e)));
    order.extend(
        ordered_owned_faces(invariant, component, &edge_rank)
            .into_iter()
            .map(|f| (CellKind::Face, f)),
    );
    ComponentOrdering {
        orientation,
        start_vertex: Some(start_vertex),
        start_edge: Some(start_edge),
        order,
    }
}

/// Orders the faces owned by a component by the sorted list of ranks of their
/// incident component edges (no two such faces share that list).
fn ordered_owned_faces(
    invariant: &TopologicalInvariant,
    component: ComponentId,
    edge_rank: &HashMap<usize, usize>,
) -> Vec<usize> {
    let mut faces = invariant.owned_faces(component);
    let key = |f: usize| -> Vec<usize> {
        let mut ranks: Vec<usize> = invariant
            .face_edges(f)
            .into_iter()
            .filter_map(|e| edge_rank.get(&e).copied())
            .collect();
        ranks.sort_unstable();
        ranks
    };
    faces.sort_by_key(|&f| key(f));
    faces
}

// ---------------------------------------------------------------------------
// Frozen pre-overhaul reference implementation.
// ---------------------------------------------------------------------------

/// The PR 2-era canonicalisation, frozen verbatim as an in-tree reference:
/// `String` codes, no memoised child blobs, no pruning of the Lemma 3.1
/// sweep. The equivalence suites prove that these codes induce the same
/// partition into isomorphism classes as the token-stream codes; the bench
/// harness measures the speedup between the two paths.
#[cfg(any(feature = "naive-reference", test))]
pub mod naive {
    // Frozen PR 2 code: silence style/MSRV lints instead of editing the
    // reference (`is_none_or` postdates the recorded MSRV).
    #![allow(clippy::incompatible_msrv)]

    use super::{component_orderings, rotated_index, CellKind, TopologicalInvariant};
    use std::collections::HashMap;

    /// A reference canonical code: equal codes iff isomorphic invariants.
    pub type NaiveCode = String;

    /// The reference canonical code of an invariant (the frozen PR 2 path).
    pub fn canonical_code_naive(invariant: &TopologicalInvariant) -> NaiveCode {
        let ccw = global_code(invariant, super::Orientation::CounterClockwise);
        let cw = global_code(invariant, super::Orientation::Clockwise);
        let mut code = String::new();
        code.push_str("inv{regions=");
        for (_, name) in invariant.schema().iter() {
            code.push_str(name);
            code.push(',');
        }
        code.push('}');
        code.push_str(if ccw <= cw { &ccw } else { &cw });
        code
    }

    /// The whole-invariant serialisation under a globally fixed orientation.
    fn global_code(invariant: &TopologicalInvariant, orientation: super::Orientation) -> String {
        // Bottom-up over the component tree: deeper components first.
        let component_count = invariant.components().len();
        let mut by_depth: Vec<usize> = (0..component_count).collect();
        by_depth.sort_by_key(|&c| std::cmp::Reverse(invariant.components()[c].depth));
        let mut subtree_codes: Vec<Option<String>> = vec![None; component_count];
        for c in by_depth {
            subtree_codes[c] = Some(component_code(invariant, c, orientation, &subtree_codes));
        }
        let mut top_level: Vec<String> = invariant
            .components_in_face(invariant.exterior_face())
            .into_iter()
            .map(|c| subtree_codes[c].clone().expect("subtree code computed"))
            .collect();
        top_level.sort();
        format!("ext[{}]", top_level.join("|"))
    }

    /// The canonical code of the subtree rooted at a component: minimum over
    /// the parameter choices of the serialisation of the component, with
    /// children embedded recursively at their containing face.
    fn component_code(
        invariant: &TopologicalInvariant,
        component: usize,
        orientation: super::Orientation,
        subtree_codes: &[Option<String>],
    ) -> String {
        let orderings = component_orderings(invariant, component, orientation);
        orderings
            .into_iter()
            .map(|ordering| {
                serialize_component(invariant, component, orientation, &ordering, subtree_codes)
            })
            .min()
            .expect("every component has at least one ordering")
    }

    fn serialize_component(
        invariant: &TopologicalInvariant,
        component: usize,
        orientation: super::Orientation,
        ordering: &super::ComponentOrdering,
        subtree_codes: &[Option<String>],
    ) -> String {
        let parent_face = invariant.components()[component].parent_face;
        let rank: HashMap<super::CellRef, usize> =
            ordering.order.iter().enumerate().map(|(i, &cell)| (cell, i)).collect();
        let face_token = |f: usize| -> String {
            if f == parent_face {
                "P".to_string()
            } else if let Some(r) = rank.get(&(CellKind::Face, f)) {
                format!("f{r}")
            } else {
                // A face bordered by this component but owned by neither it
                // nor its parent cannot occur; defensively encode it opaquely.
                format!("x{f}")
            }
        };
        let regions = |set: &crate::complex::RegionSet| -> String {
            let mut s = String::new();
            for r in set.iter() {
                s.push_str(&r.to_string());
                s.push(',');
            }
            s
        };
        let mut out = String::new();
        for &(kind, id) in &ordering.order {
            match kind {
                CellKind::Vertex => {
                    out.push_str("V<");
                    out.push_str(&regions(invariant.vertex_regions(id)));
                    out.push(';');
                    // The cone, read in the chosen orientation, rotated to the
                    // lexicographically least starting position.
                    let cone = invariant.cone(id);
                    let tokens: Vec<String> = cone
                        .iter()
                        .map(|item| match item {
                            super::ConeItem::Edge(e) => {
                                format!("e{}", rank[&(CellKind::Edge, *e)])
                            }
                            super::ConeItem::Face(f) => face_token(*f),
                        })
                        .collect();
                    let n = tokens.len();
                    let mut best: Option<String> = None;
                    for start in 0..n.max(1) {
                        let mut candidate = String::new();
                        for k in 0..n {
                            let idx = rotated_index(start, k, n, orientation);
                            candidate.push_str(&tokens[idx]);
                            candidate.push('.');
                        }
                        if best.as_ref().is_none_or(|b| candidate < *b) {
                            best = Some(candidate);
                        }
                    }
                    out.push_str(&best.unwrap_or_default());
                    out.push('>');
                }
                CellKind::Edge => {
                    out.push_str("E<");
                    out.push_str(&regions(invariant.edge_regions(id)));
                    out.push(';');
                    match invariant.edge_endpoints(id) {
                        None => out.push_str("closed"),
                        Some((a, b)) => {
                            let (ra, rb) =
                                (rank[&(CellKind::Vertex, a)], rank[&(CellKind::Vertex, b)]);
                            let (lo, hi) = (ra.min(rb), ra.max(rb));
                            out.push_str(&format!("v{lo}-v{hi}"));
                        }
                    }
                    out.push(';');
                    let (fa, fb) = invariant.edge_faces(id);
                    let mut sides = [face_token(fa), face_token(fb)];
                    sides.sort();
                    out.push_str(&sides.join("/"));
                    out.push('>');
                }
                CellKind::Face => {
                    out.push_str("F<");
                    out.push_str(&regions(invariant.face_regions(id)));
                    out.push(';');
                    let mut edge_ranks: Vec<usize> = invariant
                        .face_edges(id)
                        .into_iter()
                        .filter_map(|e| rank.get(&(CellKind::Edge, e)).copied())
                        .collect();
                    edge_ranks.sort_unstable();
                    for r in edge_ranks {
                        out.push_str(&format!("e{r},"));
                    }
                    out.push(';');
                    // Children embedded in this face, as a sorted multiset.
                    let mut children: Vec<String> = invariant
                        .components_in_face(id)
                        .into_iter()
                        .map(|c| {
                            subtree_codes[c].clone().expect("child subtree code computed first")
                        })
                        .collect();
                    children.sort();
                    out.push('[');
                    out.push_str(&children.join("|"));
                    out.push(']');
                    out.push('>');
                }
            }
        }
        let _ = orientation;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top;
    use topo_geometry::Point;
    use topo_spatial::transform::AffineMap;
    use topo_spatial::{Region, Schema, SpatialInstance};

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    fn square_instance() -> SpatialInstance {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, Region::rectangle(0, 0, 10, 10));
        instance
    }

    #[test]
    fn square_and_transformed_square_have_equal_codes() {
        let instance = square_instance();
        let invariant = top(&instance);
        let code = invariant.canonical_code();
        for map in [
            AffineMap::translation(100, -50),
            AffineMap::rotation90(),
            AffineMap::reflection_x(),
            AffineMap::scaling(topo_geometry::Rational::new(7, 3)),
        ] {
            let other = top(&map.apply_instance(&instance));
            assert_eq!(code, other.canonical_code());
            assert_eq!(invariant.code_hash(), other.code_hash());
        }
    }

    #[test]
    fn square_and_pentagon_are_topologically_equivalent() {
        // Both reduce to: one closed curve, two faces — their invariants are
        // isomorphic even though the raw geometry differs.
        let square = top(&square_instance());
        let mut pentagon_instance = SpatialInstance::new(Schema::from_names(["P"]));
        pentagon_instance
            .set_region(0, Region::polygon(vec![p(0, 0), p(10, 0), p(14, 8), p(5, 14), p(-4, 8)]));
        let pentagon = top(&pentagon_instance);
        assert_eq!(square.canonical_code(), pentagon.canonical_code());
        assert!(square.is_isomorphic_to(&pentagon));
    }

    #[test]
    fn different_topologies_have_different_codes() {
        let square = top(&square_instance());
        // An annulus is not homeomorphic to a disk.
        let mut annulus_region = Region::rectangle(0, 0, 30, 30);
        annulus_region.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
        let mut annulus_instance = SpatialInstance::new(Schema::from_names(["P"]));
        annulus_instance.set_region(0, annulus_region);
        let annulus = top(&annulus_instance);
        assert_ne!(square.canonical_code(), annulus.canonical_code());

        // Two disjoint squares differ from one.
        let mut two = Region::rectangle(0, 0, 10, 10);
        two.add_ring(vec![p(20, 0), p(30, 0), p(30, 10), p(20, 10)]);
        let mut two_instance = SpatialInstance::new(Schema::from_names(["P"]));
        two_instance.set_region(0, two);
        assert_ne!(square.canonical_code(), top(&two_instance).canonical_code());
    }

    #[test]
    fn orderings_cover_all_cells_for_every_choice() {
        // A figure with branching: a square with an antenna attached to one
        // corner, so vertices survive the reduction.
        let mut region = Region::rectangle(0, 0, 10, 10);
        region.add_polyline(vec![p(10, 10), p(20, 20)]);
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, region);
        let invariant = top(&instance);
        assert_eq!(invariant.components().len(), 1);
        let orderings = component_orderings(&invariant, 0, Orientation::CounterClockwise);
        assert!(!orderings.is_empty());
        let comp = &invariant.components()[0];
        let expected_len = comp.vertices.len() + comp.edges.len() + invariant.owned_faces(0).len();
        for ordering in &orderings {
            assert_eq!(ordering.order.len(), expected_len);
            // Every cell appears exactly once.
            let mut seen = std::collections::HashSet::new();
            for cell in &ordering.order {
                assert!(seen.insert(*cell));
            }
        }
    }

    #[test]
    fn canonical_agrees_with_relational_isomorphism() {
        // Cross-validate the canonical code against the generic isomorphism
        // test on the exported relational structures.
        let a = top(&square_instance());
        let mut shifted = SpatialInstance::new(Schema::from_names(["P"]));
        shifted.set_region(0, Region::rectangle(500, 500, 900, 777));
        let b = top(&shifted);
        assert_eq!(a.canonical_code(), b.canonical_code());
        assert!(topo_relational::isomorphic(&a.to_structure(), &b.to_structure()));

        let mut annulus_region = Region::rectangle(0, 0, 30, 30);
        annulus_region.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
        let mut annulus_instance = SpatialInstance::new(Schema::from_names(["P"]));
        annulus_instance.set_region(0, annulus_region);
        let c = top(&annulus_instance);
        assert_ne!(a.canonical_code(), c.canonical_code());
        assert!(!topo_relational::isomorphic(&a.to_structure(), &c.to_structure()));
    }

    /// The instances used for the in-crate partition-equivalence check: a mix
    /// of equivalent pairs (transformed copies) and inequivalent topologies.
    fn zoo() -> Vec<SpatialInstance> {
        let mut out = Vec::new();
        out.push(square_instance());
        let mut shifted = SpatialInstance::new(Schema::from_names(["P"]));
        shifted.set_region(0, Region::rectangle(500, 500, 900, 777));
        out.push(shifted);
        let mut annulus_region = Region::rectangle(0, 0, 30, 30);
        annulus_region.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
        let mut annulus = SpatialInstance::new(Schema::from_names(["P"]));
        annulus.set_region(0, annulus_region);
        out.push(annulus);
        let mut two = Region::rectangle(0, 0, 10, 10);
        two.add_ring(vec![p(20, 0), p(30, 0), p(30, 10), p(20, 10)]);
        let mut two_instance = SpatialInstance::new(Schema::from_names(["P"]));
        two_instance.set_region(0, two);
        out.push(two_instance);
        let mut branching = Region::rectangle(0, 0, 10, 10);
        branching.add_polyline(vec![p(10, 10), p(20, 20)]);
        let mut branching_instance = SpatialInstance::new(Schema::from_names(["P"]));
        branching_instance.set_region(0, branching);
        out.push(branching_instance);
        let overlapping = SpatialInstance::from_regions([
            ("P", Region::rectangle(0, 0, 10, 10)),
            ("Q", Region::rectangle(5, 5, 15, 15)),
        ]);
        // Different schema width — compare only against itself.
        out.push(overlapping);
        out
    }

    #[test]
    fn token_codes_and_naive_codes_induce_the_same_partition() {
        let invariants: Vec<_> = zoo().iter().map(top).collect();
        let fast: Vec<_> = invariants.iter().map(|i| i.canonical_code().clone()).collect();
        let slow: Vec<_> = invariants.iter().map(naive::canonical_code_naive).collect();
        for i in 0..invariants.len() {
            for j in 0..invariants.len() {
                assert_eq!(
                    fast[i] == fast[j],
                    slow[i] == slow[j],
                    "partition diverged between instances {i} and {j}"
                );
            }
        }
    }

    /// Degenerate-instance hardening: empty instances, point-only and
    /// polyline-only regions, and single-cell components must canonicalise
    /// (and enumerate their reference orderings) without panicking or tripping
    /// debug assertions, under both orientations.
    mod degenerate {
        use super::*;

        fn assert_canonicalises(label: &str, instance: &SpatialInstance) {
            let invariant = top(instance);
            let form = canonical_form(&invariant);
            assert_eq!(form.order.len(), invariant.cell_count(), "{label}: order covers cells");
            assert!(!form.code.is_empty(), "{label}: even empty instances serialise the exterior");
            for c in 0..invariant.components().len() {
                for orientation in [Orientation::CounterClockwise, Orientation::Clockwise] {
                    let orderings = component_orderings(&invariant, c, orientation);
                    assert!(!orderings.is_empty(), "{label}: component {c} has an ordering");
                }
            }
            // A fresh copy of the same instance lands in the same class.
            assert!(top(instance).is_isomorphic_to(&invariant), "{label}: self-equivalent");
        }

        #[test]
        fn empty_schema_instance() {
            let names: [&str; 0] = [];
            assert_canonicalises("empty schema", &SpatialInstance::new(Schema::from_names(names)));
        }

        #[test]
        fn empty_region_instance() {
            assert_canonicalises("empty region", &SpatialInstance::new(Schema::from_names(["P"])));
        }

        #[test]
        fn point_only_regions() {
            let mut single = SpatialInstance::new(Schema::from_names(["P"]));
            single.set_region(0, Region::point_set(vec![p(5, 5)]));
            assert_canonicalises("single point", &single);

            let mut several = SpatialInstance::new(Schema::from_names(["P"]));
            several.set_region(0, Region::point_set(vec![p(0, 0), p(10, 0), p(0, 10)]));
            assert_canonicalises("three points", &several);

            // Duplicate points collapse to one cell.
            let mut duplicated = SpatialInstance::new(Schema::from_names(["P"]));
            duplicated.set_region(0, Region::point_set(vec![p(1, 1), p(1, 1)]));
            let invariant = top(&duplicated);
            assert_eq!(invariant.cell_count(), 2);
            assert!(top(&single).is_isomorphic_to(&invariant));
        }

        #[test]
        fn polyline_only_regions() {
            let mut segment = SpatialInstance::new(Schema::from_names(["P"]));
            segment.set_region(0, Region::polyline(vec![p(0, 0), p(10, 0)]));
            assert_canonicalises("single segment", &segment);

            let mut open = SpatialInstance::new(Schema::from_names(["P"]));
            open.set_region(0, Region::polyline(vec![p(0, 0), p(10, 0), p(10, 10), p(20, 10)]));
            assert_canonicalises("open polyline", &open);
            // An open polyline reduces to a single arc: same class as a segment.
            assert!(top(&open).is_isomorphic_to(&top(&segment)));

            let mut closed = SpatialInstance::new(Schema::from_names(["P"]));
            closed.set_region(0, Region::polyline(vec![p(0, 0), p(10, 0), p(10, 10), p(0, 0)]));
            assert_canonicalises("closed polyline", &closed);

            let mut retraced = SpatialInstance::new(Schema::from_names(["P"]));
            retraced.set_region(0, Region::polyline(vec![p(0, 0), p(10, 0), p(0, 0)]));
            assert_canonicalises("retraced polyline", &retraced);
        }

        #[test]
        fn single_cell_components() {
            // Isolated vertex, vertex-free closed curve and open arc: one
            // component each, every Lemma 3.1 special case in isolation.
            let mut mixed = SpatialInstance::new(Schema::from_names(["P", "Q", "L"]));
            mixed.set_region(0, Region::point_set(vec![p(200, 200)]));
            mixed.set_region(1, Region::rectangle(0, 0, 50, 50));
            mixed.set_region(2, Region::polyline(vec![p(100, 0), p(150, 0)]));
            assert_canonicalises("mixed degenerate components", &mixed);
            let invariant = top(&mixed);
            assert_eq!(invariant.components().len(), 3);
            let stats = sweep_stats(&invariant);
            assert_eq!(stats.components, 3);
        }

        #[test]
        fn point_inside_ring_hole() {
            // An isolated vertex nested two levels deep in the component tree.
            let mut annulus = Region::rectangle(0, 0, 30, 30);
            annulus.add_ring(vec![p(10, 10), p(20, 10), p(20, 20), p(10, 20)]);
            let mut instance = SpatialInstance::new(Schema::from_names(["P", "D"]));
            instance.set_region(0, annulus);
            instance.set_region(1, Region::point_set(vec![p(15, 15)]));
            assert_canonicalises("point inside ring hole", &instance);
        }
    }

    #[test]
    fn canonical_order_is_a_permutation_of_all_cells() {
        for instance in zoo() {
            let invariant = top(&instance);
            let form = canonical_form(&invariant);
            assert_eq!(form.order.len(), invariant.cell_count());
            let set: std::collections::HashSet<_> = form.order.iter().collect();
            assert_eq!(set.len(), invariant.cell_count());
            assert_eq!(*form.order.last().unwrap(), (CellKind::Face, invariant.exterior_face()));
            assert_eq!(&form.code, invariant.canonical_code());
        }
    }
}
