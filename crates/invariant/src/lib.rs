//! Topological invariants of planar spatial databases (Segoufin–Vianu §2).
//!
//! The *topological invariant* `top(I)` of a spatial instance `I` is a finite
//! relational structure built on the maximal topological cell decomposition of
//! the plane induced by `I`: its vertices, edges and faces, their incidences,
//! the cyclic order of cells around every vertex (`Orientation`), and for each
//! region name the set of cells contained in the region. Two instances are
//! topologically equivalent (related by a plane homeomorphism) iff their
//! invariants are isomorphic (Theorem 2.1), and the invariant can be
//! *inverted*: a linear instance with the same invariant is computable from it
//! (Theorem 2.2).
//!
//! Pipeline implemented by this crate:
//!
//! 1. [`construct::build_complex`] — lower a [`topo_spatial::SpatialInstance`]
//!    to a planar arrangement and classify every cell against every region
//!    (interior / boundary / outside), producing a mutable [`complex::Complex`].
//! 2. [`complex::Complex::reduce`] — contract the arrangement to the *maximal*
//!    topological cell decomposition: drop edges and vertices that are not
//!    topologically meaningful (interior edges of a region's 2-D part,
//!    degree-2 vertices with homogeneous neighbourhoods, swallowed isolated
//!    points), merging faces and edges accordingly. After reduction a square
//!    region and a disk region have the same invariant, as they must.
//! 3. [`invariant::TopologicalInvariant`] — freeze the reduced complex,
//!    compute skeleton components, the connected-component tree (Fig. 2), face
//!    ownership, boundary walks, and export the relational form.
//! 4. [`canonical`] — the parameterised orderings of Lemma 3.1 and the
//!    canonical code of an invariant (the algorithmic content of Theorems 3.2
//!    and 3.4); isomorphism of invariants is decided by comparing codes.
//! 5. [`invert()`] — Theorem 2.2: rebuild a semi-linear spatial instance whose
//!    invariant is isomorphic to a given invariant.

pub mod canonical;
pub mod complex;
pub mod construct;
pub mod invariant;
pub mod invert;
pub mod maintain;
pub mod stats;

#[cfg(any(feature = "naive-reference", test))]
pub use canonical::naive::canonical_code_naive;
pub use canonical::{
    canonical_code, canonical_form, component_orderings, sweep_stats, CanonicalCode, CanonicalForm,
    CodeHash, SweepStats,
};
pub use complex::{CellId, Complex, RegionSet};
pub use construct::build_complex;
pub use invariant::{
    BoundaryComponent, CellKind, Component, ComponentId, ConeItem, InvariantParts,
    TopologicalInvariant,
};
pub use invert::{invert, invert_verified};
pub use maintain::{MaintainStats, MaintainedInvariant};
pub use stats::InvariantStats;

use topo_spatial::SpatialInstance;

/// Computes the topological invariant `top(I)` of a spatial instance.
///
/// This is the mapping `top` of Theorem 2.1: polynomial-time, and complete for
/// topological equivalence (two instances are topologically equivalent iff
/// their invariants are isomorphic, which can be checked with
/// [`TopologicalInvariant::canonical_code`]).
pub fn top(instance: &SpatialInstance) -> TopologicalInvariant {
    let mut complex = build_complex(instance);
    complex.reduce();
    TopologicalInvariant::from_complex(&complex, instance.schema().clone())
}

/// Computes the invariant of the *unreduced* cell complex (the raw
/// arrangement-level decomposition, before contraction to the maximal
/// decomposition). Exposed for tests and for the experiments that measure the
/// effect of the reduction.
pub fn top_unreduced(instance: &SpatialInstance) -> TopologicalInvariant {
    let complex = build_complex(instance);
    TopologicalInvariant::from_complex(&complex, instance.schema().clone())
}

/// Computes `top(I)` through the frozen pre-optimisation reference path: the
/// seed arrangement builder under [`topo_geometry::slow_mode`] arithmetic.
///
/// Observationally identical to [`top`] — the equivalence tests assert it —
/// but with the seed cost profile, so the perf harness can measure genuine
/// end-to-end speedups inside one binary. Compiled only with the
/// `naive-reference` feature; never use it outside benches and tests.
#[cfg(feature = "naive-reference")]
pub fn top_naive(instance: &SpatialInstance) -> TopologicalInvariant {
    let _slow = topo_geometry::slow_mode::SlowGuard::new();
    let mut complex = construct::build_complex_naive(instance);
    complex.reduce();
    TopologicalInvariant::from_complex(&complex, instance.schema().clone())
}
