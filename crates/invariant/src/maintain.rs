//! Incremental maintenance of `top(I)` under region edits.
//!
//! [`MaintainedInvariant`] owns a spatial instance's regions and keeps its
//! [`TopologicalInvariant`] (and cached canonical form) up to date across
//! [`insert_region`](MaintainedInvariant::insert_region) /
//! [`remove_region`](MaintainedInvariant::remove_region) edits without
//! rebuilding the world. The repair discipline:
//!
//! 1. **Hull-disjoint grouping.** The instance's primitive features (one
//!    polygon ring, polyline or isolated point each) are partitioned into
//!    groups by closing feature-bounding-box overlap under union: the fixpoint
//!    guarantees distinct groups have disjoint closed hulls. Disjoint hulls
//!    mean no cross-group segment intersections, and — because every bounded
//!    face and every region's 2-D part lies inside its group's hull — no
//!    cross-group nesting or parity effects either: the full invariant is the
//!    disjoint union of the group invariants glued into one exterior face.
//!    (Mere feature-bbox overlap is *not* enough: a courtyard ring nests a
//!    distant-looking feature whose own box it contains, which is exactly what
//!    the union fixpoint catches.)
//! 2. **Group-level memoisation.** Each group's reduced invariant and its
//!    per-orientation canonical subtree forms are cached by the multiset of
//!    its feature contents. An edit dirties only the groups whose feature set
//!    changed; every untouched group is reused wholesale — including its
//!    memoised canonical tokens, so the `OnceLock`-cached codes of untouched
//!    components effectively survive the edit and the colour-refinement start
//!    filter reruns only inside dirty groups.
//! 3. **Pair-event caching.** Rebuilding a dirty group skips the arrangement
//!    builder's quadratic phase: pairwise intersection events and
//!    point-on-segment probes are cached per (feature content, feature
//!    content) pair, so only pairs involving genuinely new geometry ever run
//!    exact intersection arithmetic. The assembled split lists feed
//!    [`topo_arrangement::build_arrangement_from_splits`].
//! 4. **Merge, don't recanonicalise.** The maintained invariant is assembled
//!    by concatenating the groups' [`InvariantParts`] (one shared exterior
//!    face) and the canonical form by merging the groups' subtree forms
//!    (component codes are intrinsic — see `canonical::refine_colours` — so
//!    the sorted join over all groups equals the cold sweep's top-level
//!    join). The merged form is primed into the invariant's cache, so
//!    `canonical_code` / `code_hash` never run a global sweep.
//!
//! Correctness is pinned by `tests/incremental_equivalence.rs`: after every
//! edit of randomised sequences the maintained state is bit-identical (cell
//! counts, canonical code, `CodeHash`, store answers) to a cold rebuild, and
//! at small scales to the frozen `naive-reference` oracle.

use std::collections::HashMap;
use std::sync::Arc;

use topo_arrangement::build_arrangement_from_splits;
use topo_geometry::{BBox, Point, Segment};
use topo_spatial::{Region, RegionId, Schema, SpatialInstance};

use crate::canonical::{self, CanonicalForm, CellRef, SubtreeForm};
use crate::complex::RegionSet;
use crate::construct::classify_arrangement;
use crate::invariant::{CellKind, TopologicalInvariant};
use crate::InvariantParts;

/// Cache-effectiveness counters of a [`MaintainedInvariant`] — the test and
/// bench observables behind the incremental claim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Region edits applied (each insert or remove counts once).
    pub edits: u64,
    /// Group invariants rebuilt because their feature multiset was new.
    pub group_builds: u64,
    /// Group invariants served from the group cache.
    pub group_reuses: u64,
    /// Feature-pair event lists computed with exact arithmetic.
    pub pair_computes: u64,
    /// Feature-pair event lists served from the pair cache.
    pub pair_reuses: u64,
}

/// Feature kinds, in the order [`SpatialInstance::to_arrangement_input`]
/// emits them within one region.
const KIND_RING: u8 = 0;
const KIND_POLYLINE: u8 = 1;
const KIND_POINT: u8 = 2;

/// Interned feature content: the geometry a pair-event computation needs.
struct FeatureContent {
    /// The feature's segments, exactly as `Region::ring_segments` /
    /// `polyline_segments` would emit them (empty for point features).
    segments: Vec<Segment>,
    /// The isolated point, for point features.
    point: Option<Point>,
    bbox: BBox,
}

/// One primitive feature of the current instance, referencing its interned
/// content.
struct Feature {
    key: u32,
    region: RegionId,
    kind: u8,
    /// Index within the region's rings / polylines / points list.
    index: usize,
}

/// A cached group invariant: its raw parts plus the per-orientation
/// top-level subtree forms of its canonical sweep.
struct GroupState {
    parts: InvariantParts,
    /// `[counterclockwise, clockwise]` subtree forms, group-local cell ids.
    forms: [Vec<SubtreeForm>; 2],
}

/// An intersection / point-probe event of one feature pair: which side of
/// the (ordered) pair, the segment index local to that side's feature, and
/// the split point.
type PairEvent = (u8, u32, Point);

/// Interning key of one feature's content: `(region, kind, points)`.
type ContentId = (RegionId, u8, Vec<Point>);

/// A cache entry stamped with the edit counter at its last use.
type Stamped<T> = (u64, Arc<T>);

const GROUP_CACHE_CAP: usize = 4096;
const PAIR_CACHE_CAP: usize = 1 << 17;

/// A spatial instance maintained under region edits, with its invariant and
/// canonical form repaired incrementally (see the [module docs](self)).
pub struct MaintainedInvariant {
    schema: Schema,
    regions: Vec<Region>,
    /// Feature content interning: `(region, kind, points) → key`.
    key_ids: HashMap<ContentId, u32>,
    contents: Vec<FeatureContent>,
    /// Within-feature intersection events, by content key.
    self_events: HashMap<u32, Stamped<Vec<(u32, Point)>>>,
    /// Cross-feature events, keyed by the ordered content-key pair
    /// (`a <= b`; side 0 of an event is the `a` feature).
    pair_events: HashMap<(u32, u32), Stamped<Vec<PairEvent>>>,
    /// Group cache: sorted feature-key multiset → built group state.
    groups: HashMap<Vec<u32>, Stamped<GroupState>>,
    invariant: Arc<TopologicalInvariant>,
    stats: MaintainStats,
}

impl MaintainedInvariant {
    /// An empty maintained instance over a schema.
    pub fn new(schema: Schema) -> Self {
        let regions = vec![Region::new(); schema.len()];
        let mut maintained = MaintainedInvariant {
            schema,
            regions,
            key_ids: HashMap::new(),
            contents: Vec::new(),
            self_events: HashMap::new(),
            pair_events: HashMap::new(),
            groups: HashMap::new(),
            // Placeholder; `rebuild` installs the real (empty) invariant.
            invariant: Arc::new(crate::top(&SpatialInstance::new(Schema::new()))),
            stats: MaintainStats::default(),
        };
        maintained.rebuild();
        maintained.stats = MaintainStats::default();
        maintained
    }

    /// Adopts an existing instance (counts as zero edits; the initial build
    /// populates the caches).
    pub fn from_instance(instance: &SpatialInstance) -> Self {
        let mut maintained = Self::new(instance.schema().clone());
        for (id, region) in instance.iter() {
            maintained.regions[id] = region.clone();
        }
        maintained.rebuild();
        maintained.stats = MaintainStats::default();
        maintained
    }

    /// The schema the instance is maintained over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The current region assigned to `id`.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id]
    }

    /// A snapshot of the current instance (for differential testing against
    /// a cold rebuild).
    pub fn instance(&self) -> SpatialInstance {
        let mut instance = SpatialInstance::new(self.schema.clone());
        for (id, region) in self.regions.iter().enumerate() {
            instance.set_region(id, region.clone());
        }
        instance
    }

    /// The maintained invariant. Its canonical form cache is primed, so
    /// `canonical_code` / `code_hash` are cache hits.
    pub fn invariant(&self) -> &Arc<TopologicalInvariant> {
        &self.invariant
    }

    /// Cache-effectiveness counters since construction.
    pub fn stats(&self) -> MaintainStats {
        self.stats
    }

    /// Inserts (or replaces) the region assigned to `id` and repairs the
    /// invariant.
    ///
    /// # Panics
    /// Panics if `id` is not a region of the schema.
    pub fn insert_region(&mut self, id: RegionId, region: Region) {
        assert!(id < self.schema.len(), "region id {id} outside schema");
        self.regions[id] = region;
        self.stats.edits += 1;
        self.rebuild();
    }

    /// Removes the region assigned to `id` (leaves it empty) and repairs the
    /// invariant.
    ///
    /// # Panics
    /// Panics if `id` is not a region of the schema.
    pub fn remove_region(&mut self, id: RegionId) {
        assert!(id < self.schema.len(), "region id {id} outside schema");
        self.regions[id] = Region::new();
        self.stats.edits += 1;
        self.rebuild();
    }

    // ----- repair pipeline ---------------------------------------------------

    /// Re-derives the invariant from the current regions through the group
    /// and pair caches.
    fn rebuild(&mut self) {
        let features = self.collect_features();
        let grouping = group_by_hull(&features, &self.contents);
        let stamp = self.stats.edits;

        let mut states: Vec<Arc<GroupState>> = Vec::with_capacity(grouping.len());
        for members in &grouping {
            let mut key: Vec<u32> = members.iter().map(|&f| features[f].key).collect();
            key.sort_unstable();
            if let Some((used, state)) = self.groups.get_mut(&key) {
                *used = stamp;
                self.stats.group_reuses += 1;
                states.push(state.clone());
                continue;
            }
            let state = Arc::new(self.build_group(&features, members, stamp));
            self.stats.group_builds += 1;
            self.groups.insert(key, (stamp, state.clone()));
            states.push(state);
        }

        self.invariant = Arc::new(merge_groups(&self.schema, &states));
        self.evict(stamp);
    }

    /// Collects the current features in the order
    /// [`SpatialInstance::to_arrangement_input`] walks them (region
    /// ascending; rings, then polylines, then points), interning content.
    fn collect_features(&mut self) -> Vec<Feature> {
        let mut features = Vec::new();
        for region in 0..self.regions.len() {
            for index in 0..self.regions[region].rings.len() {
                let points = self.regions[region].rings[index].clone();
                let key = self.intern(region, KIND_RING, points);
                features.push(Feature { key, region, kind: KIND_RING, index });
            }
            for index in 0..self.regions[region].polylines.len() {
                let points = self.regions[region].polylines[index].clone();
                let key = self.intern(region, KIND_POLYLINE, points);
                features.push(Feature { key, region, kind: KIND_POLYLINE, index });
            }
            for index in 0..self.regions[region].points.len() {
                let points = vec![self.regions[region].points[index]];
                let key = self.intern(region, KIND_POINT, points);
                features.push(Feature { key, region, kind: KIND_POINT, index });
            }
        }
        features
    }

    fn intern(&mut self, region: RegionId, kind: u8, points: Vec<Point>) -> u32 {
        if let Some(&key) = self.key_ids.get(&(region, kind, points.clone())) {
            return key;
        }
        let key = self.contents.len() as u32;
        let bbox = BBox::from_points(&points);
        let segments = match kind {
            // Exactly `Region::ring_segments` for one ring: every side plus
            // the implicit closing segment.
            KIND_RING => (0..points.len())
                .map(|i| Segment::new(points[i], points[(i + 1) % points.len()]))
                .collect(),
            // Exactly `Region::polyline_segments` for one chain.
            KIND_POLYLINE => points.windows(2).map(|p| Segment::new(p[0], p[1])).collect(),
            _ => Vec::new(),
        };
        let point = (kind == KIND_POINT).then(|| points[0]);
        self.contents.push(FeatureContent { segments, point, bbox });
        self.key_ids.insert((region, kind, points), key);
        key
    }

    /// Builds one dirty group: assembles its split lists from the pair
    /// caches, builds the arrangement from them, classifies, reduces,
    /// freezes, and runs the per-orientation canonical sweep.
    fn build_group(&mut self, features: &[Feature], members: &[usize], stamp: u64) -> GroupState {
        // The group instance over the full schema (region ids and RegionSet
        // widths line up with the whole instance's).
        let mut instance = SpatialInstance::new(self.schema.clone());
        for &f in members {
            let feature = &features[f];
            let content = &self.contents[feature.key as usize];
            let region = instance.region_mut(feature.region);
            match feature.kind {
                KIND_RING => {
                    region.rings.push(self.regions[feature.region].rings[feature.index].clone())
                }
                KIND_POLYLINE => region
                    .polylines
                    .push(self.regions[feature.region].polylines[feature.index].clone()),
                _ => region.points.push(content.point.expect("point feature has a point")),
            }
        }
        let input = instance.to_arrangement_input();

        // Per-member segment ranges into `input.segments`. `members` is in
        // feature-collection order — (region, rings-then-polylines-then-
        // points, index) — which is exactly `to_arrangement_input`'s segment
        // emission order, so the ranges are contiguous and in order.
        let mut range_start: Vec<usize> = Vec::with_capacity(members.len());
        let mut next = 0usize;
        for &f in members {
            range_start.push(next);
            next += self.contents[features[f].key as usize].segments.len();
        }
        debug_assert_eq!(next, input.segments.len());

        let mut splits: Vec<Vec<Point>> =
            input.segments.iter().map(|(s, _)| vec![s.a, s.b]).collect();
        for (i, &f) in members.iter().enumerate() {
            let key = features[f].key;
            // Within-feature intersections.
            if !self.contents[key as usize].segments.is_empty() {
                let events = self.self_events_for(key, stamp);
                for &(seg, p) in events.iter() {
                    splits[range_start[i] + seg as usize].push(p);
                }
            }
            // Cross-feature intersections and point probes, against every
            // later member whose box can touch this one.
            for (j_off, &g) in members.iter().enumerate().skip(i + 1) {
                let other = features[g].key;
                let (a, b) = (self.contents[key as usize].bbox, self.contents[other as usize].bbox);
                if !a.intersects(&b) {
                    continue;
                }
                let events = self.pair_events_for(key, other, stamp);
                // Cached sides refer to the ordered key pair (smaller key is
                // side 0); orient them back onto (i, j).
                let (lo, hi) = if key <= other { (i, j_off) } else { (j_off, i) };
                for &(side, seg, p) in events.iter() {
                    let member = if side == 0 { lo } else { hi };
                    splits[range_start[member] + seg as usize].push(p);
                }
            }
        }

        let arrangement = build_arrangement_from_splits(&input, splits);
        let mut complex = classify_arrangement(&instance, &input, &arrangement);
        complex.reduce();
        let invariant = TopologicalInvariant::from_complex(&complex, self.schema.clone());
        let forms = canonical::oriented_top_forms(&invariant);
        GroupState { parts: invariant.to_parts(), forms }
    }

    /// Within-feature intersection events of one content key, cached.
    fn self_events_for(&mut self, key: u32, stamp: u64) -> Arc<Vec<(u32, Point)>> {
        if let Some((used, events)) = self.self_events.get_mut(&key) {
            *used = stamp;
            self.stats.pair_reuses += 1;
            return events.clone();
        }
        let segments = &self.contents[key as usize].segments;
        let mut events: Vec<(u32, Point)> = Vec::new();
        for i in 0..segments.len() {
            for j in i + 1..segments.len() {
                push_events(&segments[i], &segments[j], i as u32, j as u32, &mut |side, seg, p| {
                    let _ = side;
                    events.push((seg, p));
                });
            }
        }
        self.stats.pair_computes += 1;
        let events = Arc::new(events);
        self.self_events.insert(key, (stamp, events.clone()));
        events
    }

    /// Cross-feature events of one content-key pair, cached. Side 0 of each
    /// event is the smaller key's feature.
    fn pair_events_for(&mut self, a: u32, b: u32, stamp: u64) -> Arc<Vec<PairEvent>> {
        let (a, b) = (a.min(b), a.max(b));
        if let Some((used, events)) = self.pair_events.get_mut(&(a, b)) {
            *used = stamp;
            self.stats.pair_reuses += 1;
            return events.clone();
        }
        let (ca, cb) = (&self.contents[a as usize], &self.contents[b as usize]);
        let mut events: Vec<PairEvent> = Vec::new();
        for (i, sa) in ca.segments.iter().enumerate() {
            for (j, sb) in cb.segments.iter().enumerate() {
                push_events(sa, sb, i as u32, j as u32, &mut |side, seg, p| {
                    events.push((side, seg, p));
                });
            }
        }
        // Isolated points splitting the other feature's segments, mirroring
        // the point probes of `compute_split_points`.
        if let Some(p) = ca.point {
            for (j, sb) in cb.segments.iter().enumerate() {
                if sb.contains_point(&p) {
                    events.push((1, j as u32, p));
                }
            }
        }
        if let Some(p) = cb.point {
            for (i, sa) in ca.segments.iter().enumerate() {
                if sa.contains_point(&p) {
                    events.push((0, i as u32, p));
                }
            }
        }
        self.stats.pair_computes += 1;
        let events = Arc::new(events);
        self.pair_events.insert((a, b), (stamp, events.clone()));
        events
    }

    /// Bounds the caches: when one overflows its cap, the entries untouched
    /// longest are dropped (down to half the cap, so eviction is amortised).
    fn evict(&mut self, stamp: u64) {
        fn trim<K: std::hash::Hash + Eq, V>(map: &mut HashMap<K, (u64, V)>, cap: usize, now: u64) {
            if map.len() <= cap {
                return;
            }
            let mut stamps: Vec<u64> = map.values().map(|(used, _)| *used).collect();
            stamps.sort_unstable();
            let cutoff = stamps[stamps.len() - cap / 2].min(now);
            map.retain(|_, (used, _)| *used >= cutoff);
        }
        trim(&mut self.groups, GROUP_CACHE_CAP, stamp);
        trim(&mut self.self_events, PAIR_CACHE_CAP, stamp);
        trim(&mut self.pair_events, PAIR_CACHE_CAP, stamp);
    }
}

/// Records the split events of one exact segment intersection, exactly as
/// the arrangement builder's phase 1 would: a point intersection splits both
/// segments there, a collinear overlap splits both at both overlap ends.
fn push_events(sa: &Segment, sb: &Segment, ia: u32, ib: u32, out: &mut impl FnMut(u8, u32, Point)) {
    match sa.intersect(sb) {
        topo_geometry::SegmentIntersection::None => {}
        topo_geometry::SegmentIntersection::Point(p) => {
            out(0, ia, p);
            out(1, ib, p);
        }
        topo_geometry::SegmentIntersection::Overlap(p, q) => {
            out(0, ia, p);
            out(0, ia, q);
            out(1, ib, p);
            out(1, ib, q);
        }
    }
}

/// Partitions features into groups whose closed hulls (union bounding boxes)
/// are pairwise disjoint: starts from singletons and merges any two groups
/// whose hulls touch, to fixpoint. Each group's member list stays in feature
/// order (ascending indices).
fn group_by_hull(features: &[Feature], contents: &[FeatureContent]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(BBox, Vec<usize>)> = features
        .iter()
        .enumerate()
        .map(|(i, f)| (contents[f.key as usize].bbox, vec![i]))
        .collect();
    loop {
        let mut out: Vec<(BBox, Vec<usize>)> = Vec::with_capacity(groups.len());
        let mut merged_any = false;
        'next: for (bbox, members) in groups {
            for (obox, omembers) in out.iter_mut() {
                if obox.intersects(&bbox) {
                    *obox = obox.union(&bbox);
                    omembers.extend(members);
                    merged_any = true;
                    continue 'next;
                }
            }
            out.push((bbox, members));
        }
        groups = out;
        if !merged_any {
            break;
        }
    }
    let mut result: Vec<Vec<usize>> = groups
        .into_iter()
        .map(|(_, mut members)| {
            members.sort_unstable();
            members
        })
        .collect();
    // Deterministic group order: by smallest member feature.
    result.sort_unstable_by_key(|members| members[0]);
    result
}

/// Assembles the whole-instance invariant from hull-disjoint group states:
/// concatenates the parts (one shared exterior face, placed last) and merges
/// the canonical subtree forms, priming the result's canonical cache.
fn merge_groups(schema: &Schema, groups: &[Arc<GroupState>]) -> TopologicalInvariant {
    let total_faces: usize = groups.iter().map(|g| g.parts.face_regions.len() - 1).sum();
    let exterior = total_faces;

    let mut parts = InvariantParts {
        schema: schema.clone(),
        vertex_slots: Vec::new(),
        vertex_sectors: Vec::new(),
        vertex_isolated_face: Vec::new(),
        vertex_regions: Vec::new(),
        vertex_boundary: Vec::new(),
        edge_ends: Vec::new(),
        edge_sides: Vec::new(),
        edge_regions: Vec::new(),
        edge_boundary: Vec::new(),
        face_regions: Vec::new(),
        exterior_face: exterior,
    };
    let mut ccw: Vec<SubtreeForm> = Vec::new();
    let mut cw: Vec<SubtreeForm> = Vec::new();

    for group in groups {
        let g = &group.parts;
        let voff = parts.vertex_slots.len();
        let eoff = parts.edge_ends.len();
        let foff = parts.face_regions.len();
        // Face map: skip the group's exterior (merged into the shared one),
        // keep every other face in order.
        let mut face_map: Vec<usize> = Vec::with_capacity(g.face_regions.len());
        let mut next_face = foff;
        for f in 0..g.face_regions.len() {
            if f == g.exterior_face {
                face_map.push(exterior);
            } else {
                face_map.push(next_face);
                next_face += 1;
            }
        }

        for slots in &g.vertex_slots {
            parts.vertex_slots.push(slots.iter().map(|&(e, end)| (e + eoff, end)).collect());
        }
        for sectors in &g.vertex_sectors {
            parts.vertex_sectors.push(sectors.iter().map(|&f| face_map[f]).collect());
        }
        for isolated in &g.vertex_isolated_face {
            parts.vertex_isolated_face.push(isolated.map(|f| face_map[f]));
        }
        parts.vertex_regions.extend(g.vertex_regions.iter().cloned());
        parts.vertex_boundary.extend(g.vertex_boundary.iter().cloned());
        for ends in &g.edge_ends {
            parts.edge_ends.push(ends.map(|(a, b)| (a + voff, b + voff)));
        }
        for &(l, r) in &g.edge_sides {
            parts.edge_sides.push((face_map[l], face_map[r]));
        }
        parts.edge_regions.extend(g.edge_regions.iter().cloned());
        parts.edge_boundary.extend(g.edge_boundary.iter().cloned());
        for (f, regions) in g.face_regions.iter().enumerate() {
            if f != g.exterior_face {
                debug_assert_eq!(face_map[f], parts.face_regions.len());
                parts.face_regions.push(regions.clone());
            }
        }

        let remap = |form: &SubtreeForm| -> SubtreeForm {
            let order: Vec<CellRef> = form
                .order
                .iter()
                .map(|&(kind, id)| match kind {
                    CellKind::Vertex => (kind, id + voff),
                    CellKind::Edge => (kind, id + eoff),
                    CellKind::Face => (kind, face_map[id]),
                })
                .collect();
            SubtreeForm { tokens: form.tokens.clone(), order }
        };
        ccw.extend(group.forms[0].iter().map(remap));
        cw.extend(group.forms[1].iter().map(remap));
    }
    // The shared exterior face, last, contained in no region (every group's
    // own exterior classified to the same empty set).
    parts.face_regions.push(RegionSet::new(schema.len()));

    let schema_names: Vec<String> = schema.iter().map(|(_, name)| name.to_string()).collect();
    let form: CanonicalForm = canonical::merge_top_forms(schema_names, exterior, ccw, cw);
    let invariant = TopologicalInvariant::from_parts(parts)
        .expect("merged hull-disjoint group parts are structurally valid");
    invariant.prime_canonical(form);
    invariant
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_geometry::Point;

    fn check(maintained: &MaintainedInvariant) {
        let cold = crate::top(&maintained.instance());
        let inv = maintained.invariant();
        assert_eq!(inv.vertex_count(), cold.vertex_count());
        assert_eq!(inv.edge_count(), cold.edge_count());
        assert_eq!(inv.face_count(), cold.face_count());
        assert_eq!(inv.canonical_code(), cold.canonical_code());
        assert_eq!(inv.code_hash(), cold.code_hash());
    }

    fn schema(names: &[&str]) -> Schema {
        let mut schema = Schema::new();
        for name in names {
            schema.add(*name);
        }
        schema
    }

    #[test]
    fn empty_instance_matches_cold_build() {
        let maintained = MaintainedInvariant::new(schema(&["a", "b"]));
        check(&maintained);
    }

    #[test]
    fn edit_sequence_matches_cold_build() {
        let mut m = MaintainedInvariant::new(schema(&["a", "b", "c"]));
        // Disjoint rectangle: its own group.
        m.insert_region(0, Region::rectangle(0, 0, 10, 10));
        check(&m);
        // Overlapping rectangle: merges groups, creates intersections.
        m.insert_region(1, Region::rectangle(5, 5, 15, 15));
        check(&m);
        // A far-away region with a polyline and a point.
        let mut r = Region::rectangle(100, 100, 120, 120);
        r.add_polyline(vec![Point::from_ints(90, 90), Point::from_ints(130, 130)]);
        r.add_point(Point::from_ints(110, 110));
        m.insert_region(2, r);
        check(&m);
        // Remove the middle region: group split.
        m.remove_region(1);
        check(&m);
        // Re-insert it: group-cache hit.
        let before = m.stats();
        m.insert_region(1, Region::rectangle(5, 5, 15, 15));
        check(&m);
        assert!(m.stats().group_reuses > before.group_reuses);
        m.remove_region(0);
        check(&m);
        m.remove_region(2);
        check(&m);
        m.remove_region(1);
        check(&m);
        assert_eq!(m.invariant().cell_count(), 1);
    }

    #[test]
    fn nested_rings_group_together() {
        // A courtyard: outer ring contains a distant inner ring whose own
        // bbox it strictly contains — the hull fixpoint must group them.
        let mut m = MaintainedInvariant::new(schema(&["outer", "inner"]));
        m.insert_region(0, Region::rectangle(0, 0, 100, 100));
        m.insert_region(1, Region::rectangle(40, 40, 60, 60));
        check(&m);
        // One skeleton component tree with the inner ring nested in the outer.
        assert_eq!(m.invariant().face_count(), 3);
    }
}
