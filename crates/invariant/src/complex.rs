//! The mutable topological cell complex and its reduction to the maximal
//! topological cell decomposition.
//!
//! The complex is purely combinatorial: cells (vertices, edges, faces), the
//! cyclic order of edge-ends and face sectors around every vertex, the two
//! faces beside every edge, and for every cell and every region whether the
//! cell is contained in the region and whether it lies on the region's
//! boundary. Edges are abstract one-dimensional cells: they may be proper
//! edges (two distinct endpoints), loops (both endpoints equal), or closed
//! curves (no endpoints at all) — the latter two arise from the reduction,
//! exactly as in the paper's model (Lemma 3.1's "special cases").
//!
//! [`Complex::reduce`] contracts the arrangement-level decomposition to the
//! *maximal* topological cell decomposition by repeatedly applying three
//! local, topology-preserving operations:
//!
//! * removing an edge whose membership pattern equals that of both incident
//!   faces (the edge is not topologically distinguishable; the faces merge),
//! * removing an isolated vertex whose membership equals its surrounding
//!   face's,
//! * smoothing a degree-2 vertex whose membership equals that of its two
//!   incident edges (the two edges merge into one; this is what turns the
//!   four corner vertices of a square region into none, so that a square and
//!   a disk get isomorphic invariants).

/// Identifier of a cell (vertex, edge or face) inside a [`Complex`]. Which
/// kind it refers to is determined by context.
pub type CellId = usize;

/// A set of region indices, implemented as a bit set.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct RegionSet {
    bits: Vec<u64>,
}

impl RegionSet {
    /// An empty set sized for `region_count` regions.
    pub fn new(region_count: usize) -> Self {
        RegionSet { bits: vec![0; region_count.div_ceil(64)] }
    }

    /// Adds a region.
    pub fn insert(&mut self, region: usize) {
        self.bits[region / 64] |= 1 << (region % 64);
    }

    /// Removes a region.
    pub fn remove(&mut self, region: usize) {
        self.bits[region / 64] &= !(1 << (region % 64));
    }

    /// Membership test.
    pub fn contains(&self, region: usize) -> bool {
        self.bits.get(region / 64).map(|w| w & (1 << (region % 64)) != 0).unwrap_or(false)
    }

    /// True iff no region is present.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// The regions present, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, bits)| {
            (0..64).filter(move |b| bits & (1 << b) != 0).map(move |b| w * 64 + b)
        })
    }
}

/// An edge-end slot in a vertex rotation: which edge, and which of its two
/// ends (0 or 1) is attached here. Loops contribute both ends to the same
/// vertex.
pub type Slot = (CellId, u8);

/// The mutable cell complex.
#[derive(Clone, Debug)]
pub struct Complex {
    /// Number of region names in the schema.
    pub region_count: usize,

    vertex_alive: Vec<bool>,
    vertex_slots: Vec<Vec<Slot>>,
    vertex_sectors: Vec<Vec<CellId>>,
    vertex_face: Vec<Option<CellId>>,
    vertex_in: Vec<RegionSet>,
    vertex_bnd: Vec<RegionSet>,

    edge_alive: Vec<bool>,
    edge_ends: Vec<Option<(CellId, CellId)>>,
    edge_sides: Vec<(CellId, CellId)>,
    edge_in: Vec<RegionSet>,
    edge_bnd: Vec<RegionSet>,

    face_parent: Vec<CellId>,
    face_in: Vec<RegionSet>,
    exterior_face: CellId,
}

impl Complex {
    /// Creates an empty complex with one (exterior) face.
    pub fn new(region_count: usize) -> Self {
        Complex {
            region_count,
            vertex_alive: Vec::new(),
            vertex_slots: Vec::new(),
            vertex_sectors: Vec::new(),
            vertex_face: Vec::new(),
            vertex_in: Vec::new(),
            vertex_bnd: Vec::new(),
            edge_alive: Vec::new(),
            edge_ends: Vec::new(),
            edge_sides: Vec::new(),
            edge_in: Vec::new(),
            edge_bnd: Vec::new(),
            face_parent: vec![0],
            face_in: vec![RegionSet::new(region_count)],
            exterior_face: 0,
        }
    }

    // ----- construction API -------------------------------------------------

    /// Adds a face, returning its id.
    pub fn push_face(&mut self, membership: RegionSet) -> CellId {
        let id = self.face_parent.len();
        self.face_parent.push(id);
        self.face_in.push(membership);
        id
    }

    /// Adds a vertex, returning its id. `slots` and `sectors` must have equal
    /// length and be in counterclockwise order; `containing_face` is used only
    /// when the vertex is isolated (no slots).
    pub fn push_vertex(
        &mut self,
        slots: Vec<Slot>,
        sectors: Vec<CellId>,
        containing_face: Option<CellId>,
        in_regions: RegionSet,
        boundary_regions: RegionSet,
    ) -> CellId {
        assert_eq!(slots.len(), sectors.len(), "slots and sectors must align");
        let id = self.vertex_alive.len();
        self.vertex_alive.push(true);
        self.vertex_slots.push(slots);
        self.vertex_sectors.push(sectors);
        self.vertex_face.push(containing_face);
        self.vertex_in.push(in_regions);
        self.vertex_bnd.push(boundary_regions);
        id
    }

    /// Adds an edge, returning its id.
    pub fn push_edge(
        &mut self,
        ends: Option<(CellId, CellId)>,
        sides: (CellId, CellId),
        in_regions: RegionSet,
        boundary_regions: RegionSet,
    ) -> CellId {
        let id = self.edge_alive.len();
        self.edge_alive.push(true);
        self.edge_ends.push(ends);
        self.edge_sides.push(sides);
        self.edge_in.push(in_regions);
        self.edge_bnd.push(boundary_regions);
        id
    }

    /// Overrides the exterior face id (it is face 0 by default).
    pub fn set_exterior_face(&mut self, face: CellId) {
        self.exterior_face = face;
    }

    // ----- accessors --------------------------------------------------------

    /// The representative id of a face (faces merge during reduction).
    pub fn find_face(&self, face: CellId) -> CellId {
        let mut f = face;
        while self.face_parent[f] != f {
            f = self.face_parent[f];
        }
        f
    }

    /// Resolves every face id to its representative in one memoised pass:
    /// `resolved[f] == find_face(f)` for all ids, computed in time linear in
    /// the id space instead of one parent-chain walk per lookup. The freeze
    /// path ([`crate::TopologicalInvariant::from_complex`]) uses this to
    /// replace its per-reference `find_face` calls.
    pub fn resolved_faces(&self) -> Vec<CellId> {
        let n = self.face_parent.len();
        const UNRESOLVED: CellId = usize::MAX;
        let mut resolved: Vec<CellId> = vec![UNRESOLVED; n];
        let mut path: Vec<CellId> = Vec::new();
        for f in 0..n {
            if resolved[f] != UNRESOLVED {
                continue;
            }
            let mut cur = f;
            while self.face_parent[cur] != cur && resolved[cur] == UNRESOLVED {
                path.push(cur);
                cur = self.face_parent[cur];
            }
            let root = if resolved[cur] != UNRESOLVED { resolved[cur] } else { cur };
            resolved[cur] = root;
            for &p in &path {
                resolved[p] = root;
            }
            path.clear();
        }
        resolved
    }

    // Raw (unresolved) views for the freeze path, which maps face ids
    // through [`Complex::resolved_faces`] itself instead of paying a
    // `find_face` walk per reference.

    /// Upper bounds of the vertex / edge / face id spaces (dead ids
    /// included), for dense freeze-side index maps.
    pub(crate) fn id_bounds(&self) -> (usize, usize, usize) {
        (self.vertex_alive.len(), self.edge_alive.len(), self.face_parent.len())
    }

    /// The face sectors at a vertex with *unresolved* face ids.
    pub(crate) fn raw_sectors(&self, v: CellId) -> &[CellId] {
        &self.vertex_sectors[v]
    }

    /// The containing face of an isolated vertex, unresolved.
    pub(crate) fn raw_isolated_face(&self, v: CellId) -> Option<CellId> {
        if self.vertex_slots[v].is_empty() {
            self.vertex_face[v]
        } else {
            None
        }
    }

    /// The two faces beside an edge, unresolved.
    pub(crate) fn raw_edge_sides(&self, e: CellId) -> (CellId, CellId) {
        self.edge_sides[e]
    }

    /// The exterior face id, unresolved.
    pub(crate) fn raw_exterior_face(&self) -> CellId {
        self.exterior_face
    }

    /// The representative of the exterior face.
    pub fn exterior_face(&self) -> CellId {
        self.find_face(self.exterior_face)
    }

    /// True iff the vertex has not been removed.
    pub fn vertex_alive(&self, v: CellId) -> bool {
        self.vertex_alive[v]
    }

    /// True iff the edge has not been removed.
    pub fn edge_alive(&self, e: CellId) -> bool {
        self.edge_alive[e]
    }

    /// Ids of all live vertices.
    pub fn live_vertices(&self) -> Vec<CellId> {
        (0..self.vertex_alive.len()).filter(|&v| self.vertex_alive[v]).collect()
    }

    /// Ids of all live edges.
    pub fn live_edges(&self) -> Vec<CellId> {
        (0..self.edge_alive.len()).filter(|&e| self.edge_alive[e]).collect()
    }

    /// Representative ids of all live faces (faces referenced by live cells,
    /// plus the exterior face).
    pub fn live_faces(&self) -> Vec<CellId> {
        let mut out: Vec<CellId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let push =
            |f: CellId, out: &mut Vec<CellId>, seen: &mut std::collections::HashSet<CellId>| {
                if seen.insert(f) {
                    out.push(f);
                }
            };
        push(self.exterior_face(), &mut out, &mut seen);
        for e in self.live_edges() {
            let (a, b) = self.edge_sides(e);
            push(a, &mut out, &mut seen);
            push(b, &mut out, &mut seen);
        }
        for v in self.live_vertices() {
            for &f in &self.vertex_sectors[v] {
                push(self.find_face(f), &mut out, &mut seen);
            }
            if let Some(f) = self.vertex_face[v] {
                if self.vertex_slots[v].is_empty() {
                    push(self.find_face(f), &mut out, &mut seen);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Degree of a vertex (number of incident edge-ends; a loop counts twice).
    pub fn degree(&self, v: CellId) -> usize {
        self.vertex_slots[v].len()
    }

    /// The rotation (counterclockwise cyclic order of edge-end slots) at a
    /// vertex.
    pub fn slots(&self, v: CellId) -> &[Slot] {
        &self.vertex_slots[v]
    }

    /// The face sectors at a vertex: `sectors(v)[i]` is the face between
    /// `slots(v)[i]` and `slots(v)[i+1]` counterclockwise (resolved ids).
    pub fn sectors(&self, v: CellId) -> Vec<CellId> {
        self.vertex_sectors[v].iter().map(|&f| self.find_face(f)).collect()
    }

    /// The face containing an isolated (degree-0) vertex.
    pub fn isolated_face(&self, v: CellId) -> Option<CellId> {
        if self.vertex_slots[v].is_empty() {
            self.vertex_face[v].map(|f| self.find_face(f))
        } else {
            None
        }
    }

    /// Endpoints of an edge: `None` for closed curves, `Some((v, v))` for
    /// loops.
    pub fn edge_ends(&self, e: CellId) -> Option<(CellId, CellId)> {
        self.edge_ends[e]
    }

    /// The two faces beside an edge (resolved ids; equal for antenna edges).
    pub fn edge_sides(&self, e: CellId) -> (CellId, CellId) {
        let (a, b) = self.edge_sides[e];
        (self.find_face(a), self.find_face(b))
    }

    /// Regions containing a vertex.
    pub fn vertex_regions(&self, v: CellId) -> &RegionSet {
        &self.vertex_in[v]
    }

    /// Regions on whose boundary the vertex lies.
    pub fn vertex_boundary_regions(&self, v: CellId) -> &RegionSet {
        &self.vertex_bnd[v]
    }

    /// Regions containing an edge.
    pub fn edge_regions(&self, e: CellId) -> &RegionSet {
        &self.edge_in[e]
    }

    /// Regions on whose boundary the edge lies.
    pub fn edge_boundary_regions(&self, e: CellId) -> &RegionSet {
        &self.edge_bnd[e]
    }

    /// Regions whose interior contains the face.
    pub fn face_regions(&self, face: CellId) -> &RegionSet {
        &self.face_in[self.find_face(face)]
    }

    /// Mutable access to a face's membership set (used by the construction
    /// phase only; the reduction never changes memberships).
    pub fn face_membership_mut(&mut self, face: CellId) -> &mut RegionSet {
        let f = self.find_face(face);
        &mut self.face_in[f]
    }

    /// Number of live cells (vertices + edges + faces).
    pub fn cell_count(&self) -> usize {
        self.live_vertices().len() + self.live_edges().len() + self.live_faces().len()
    }

    // ----- reduction --------------------------------------------------------

    /// Reduces the complex to the maximal topological cell decomposition.
    pub fn reduce(&mut self) {
        loop {
            let mut changed = false;
            for e in 0..self.edge_alive.len() {
                if self.edge_alive[e] && self.edge_removable(e) {
                    self.remove_edge(e);
                    changed = true;
                }
            }
            for v in 0..self.vertex_alive.len() {
                if !self.vertex_alive[v] {
                    continue;
                }
                match self.degree(v) {
                    0 if self.isolated_vertex_removable(v) => {
                        self.vertex_alive[v] = false;
                        changed = true;
                    }
                    2 if self.vertex_smoothable(v) => {
                        self.smooth_vertex(v);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// An edge is removable when neither its membership nor its incident
    /// faces' memberships distinguish it: every region sees the edge and both
    /// faces identically.
    fn edge_removable(&self, e: CellId) -> bool {
        let (fa, fb) = self.edge_sides(e);
        self.edge_in[e] == self.face_in[fa] && self.edge_in[e] == self.face_in[fb]
    }

    fn isolated_vertex_removable(&self, v: CellId) -> bool {
        let face = self.isolated_face(v).expect("degree-0 vertex has a containing face");
        self.vertex_in[v] == self.face_in[face]
    }

    fn vertex_smoothable(&self, v: CellId) -> bool {
        debug_assert_eq!(self.degree(v), 2);
        let (e1, _) = self.vertex_slots[v][0];
        let (e2, _) = self.vertex_slots[v][1];
        self.vertex_in[v] == self.edge_in[e1]
            && self.vertex_in[v] == self.edge_in[e2]
            && self.vertex_bnd[v] == self.edge_bnd[e1]
            && self.vertex_bnd[v] == self.edge_bnd[e2]
    }

    /// Removes a removable edge, merging its two incident faces.
    fn remove_edge(&mut self, e: CellId) {
        let (fa, fb) = self.edge_sides(e);
        if fa != fb {
            // Union: keep the exterior face's representative stable by always
            // merging into the exterior when it is involved.
            let (keep, drop) = if fb == self.exterior_face() { (fb, fa) } else { (fa, fb) };
            self.face_parent[drop] = keep;
        }
        self.edge_alive[e] = false;
        if let Some((a, b)) = self.edge_ends[e] {
            for v in [a, b] {
                self.detach_edge_from_vertex(v, e);
            }
        }
    }

    /// Removes every slot of edge `e` from vertex `v`'s rotation, merging the
    /// neighbouring sectors. If the vertex becomes isolated it records its
    /// containing face.
    fn detach_edge_from_vertex(&mut self, v: CellId, e: CellId) {
        while let Some(pos) = self.vertex_slots[v].iter().position(|(edge, _)| *edge == e) {
            self.vertex_slots[v].remove(pos);
            self.vertex_sectors[v].remove(pos);
        }
        if self.vertex_slots[v].is_empty() {
            let face = self.find_face(self.edge_sides[e].0);
            self.vertex_face[v] = Some(face);
        }
    }

    /// Smooths a degree-2 vertex, merging its two incident edge-ends into a
    /// single edge (possibly a loop or a closed curve).
    fn smooth_vertex(&mut self, v: CellId) {
        let slots = self.vertex_slots[v].clone();
        let sectors = self.sectors(v);
        let (e1, end1) = slots[0];
        let (e2, end2) = slots[1];
        let membership = self.edge_in[e1].clone();
        let boundary = self.edge_bnd[e1].clone();
        let sides = (sectors[0], sectors[1]);

        if e1 == e2 {
            // A single loop at `v`: the result is a closed curve.
            let new_edge = self.push_edge(None, sides, membership, boundary);
            let _ = new_edge;
            self.edge_alive[e1] = false;
            self.vertex_alive[v] = false;
            return;
        }

        // Endpoints of the merged edge: the far ends of e1 and e2.
        let far = |this: &Complex, e: CellId, end_at_v: u8| -> (CellId, u8) {
            let (a, b) = this.edge_ends[e].expect("edge incident to a vertex has endpoints");
            // The far end is the one not used at `v`. For a loop at `v` both
            // ends are at `v`, but that case is handled above (e1 == e2).
            if end_at_v == 0 {
                (b, 1)
            } else {
                (a, 0)
            }
        };
        let (w1, far_end1) = far(self, e1, end1);
        let (w2, far_end2) = far(self, e2, end2);
        let new_edge = self.push_edge(Some((w1, w2)), sides, membership, boundary);
        // Replace the far slots by the new edge's ends.
        self.replace_slot(w1, (e1, far_end1), (new_edge, 0));
        self.replace_slot(w2, (e2, far_end2), (new_edge, 1));
        self.edge_alive[e1] = false;
        self.edge_alive[e2] = false;
        self.vertex_alive[v] = false;
    }

    fn replace_slot(&mut self, v: CellId, old: Slot, new: Slot) {
        let pos = self.vertex_slots[v]
            .iter()
            .position(|slot| *slot == old)
            .expect("slot to replace exists in the vertex rotation");
        self.vertex_slots[v][pos] = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_set_basic() {
        let mut s = RegionSet::new(70);
        assert!(s.is_empty());
        s.insert(3);
        s.insert(65);
        assert!(s.contains(3));
        assert!(s.contains(65));
        assert!(!s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 65]);
        s.remove(3);
        assert!(!s.contains(3));
        let empty = RegionSet::new(70);
        assert_ne!(s, empty);
    }

    /// Builds by hand the complex of a single square region: 4 vertices of
    /// degree 2, 4 boundary edges, inner face in the region, exterior not.
    fn square_complex() -> Complex {
        let mut c = Complex::new(1);
        let mut inside = RegionSet::new(1);
        inside.insert(0);
        let inner = c.push_face(inside.clone());
        let empty = RegionSet::new(1);
        // Vertices and edges: edge i connects vertex i and vertex (i+1) % 4.
        let mut boundary = RegionSet::new(1);
        boundary.insert(0);
        let edges: Vec<CellId> = (0..4)
            .map(|_| c.push_edge(Some((0, 0)), (inner, 0), boundary.clone(), boundary.clone()))
            .collect();
        for v in 0..4usize {
            let prev = edges[(v + 3) % 4];
            let next = edges[v];
            // Slots in CCW order with sectors alternating inner/exterior; the
            // exact geometric order does not matter for the reduction tests.
            c.push_vertex(
                vec![(next, 0), (prev, 1)],
                vec![inner, 0],
                None,
                boundary.clone(),
                boundary.clone(),
            );
        }
        // Fix edge endpoints now that vertices exist.
        for (i, &e) in edges.iter().enumerate() {
            c.edge_ends[e] = Some((i, (i + 1) % 4));
        }
        let _ = empty;
        c
    }

    #[test]
    fn square_reduces_to_single_loop_cell() {
        let mut c = square_complex();
        assert_eq!(c.live_vertices().len(), 4);
        assert_eq!(c.live_edges().len(), 4);
        c.reduce();
        // A square region's maximal decomposition: no vertices, one closed
        // curve, two faces.
        assert_eq!(c.live_vertices().len(), 0);
        assert_eq!(c.live_edges().len(), 1);
        let e = c.live_edges()[0];
        assert_eq!(c.edge_ends(e), None);
        assert_eq!(c.live_faces().len(), 2);
        assert!(c.edge_regions(e).contains(0));
    }

    #[test]
    fn edge_between_identical_faces_is_removed() {
        // Two faces with identical membership separated by an edge also with
        // that membership: everything merges.
        let mut c = Complex::new(1);
        let mut in_r = RegionSet::new(1);
        in_r.insert(0);
        let f1 = c.push_face(in_r.clone());
        let f2 = c.push_face(in_r.clone());
        let e = c.push_edge(Some((0, 1)), (f1, f2), in_r.clone(), RegionSet::new(1));
        c.push_vertex(vec![(e, 0)], vec![f1], None, in_r.clone(), RegionSet::new(1));
        c.push_vertex(vec![(e, 1)], vec![f2], None, in_r.clone(), RegionSet::new(1));
        c.reduce();
        assert!(c.live_edges().is_empty());
        assert!(c.live_vertices().is_empty());
        assert_eq!(c.find_face(f1), c.find_face(f2));
    }

    #[test]
    fn distinguished_isolated_vertex_survives() {
        // An isolated vertex of region 0 sitting in a face of region 1's
        // interior must survive; one of region 1 inside region 1's interior
        // must not.
        let mut c = Complex::new(2);
        let mut in_r1 = RegionSet::new(2);
        in_r1.insert(1);
        let face = c.push_face(in_r1.clone());
        let mut in_both = in_r1.clone();
        in_both.insert(0);
        let survivor =
            c.push_vertex(Vec::new(), Vec::new(), Some(face), in_both, RegionSet::new(2));
        let swallowed =
            c.push_vertex(Vec::new(), Vec::new(), Some(face), in_r1.clone(), RegionSet::new(2));
        c.reduce();
        assert!(c.vertex_alive(survivor));
        assert!(!c.vertex_alive(swallowed));
    }
}
