//! The frozen topological invariant and its derived structure.

use crate::canonical::{self, CanonicalCode, CanonicalForm, CellRef, CodeHash};
use crate::complex::{Complex, RegionSet};
use std::sync::OnceLock;
use topo_relational::Structure;
use topo_spatial::{RegionId, Schema};

/// Kind of a cell of the invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A 0-dimensional cell.
    Vertex,
    /// A 1-dimensional cell (possibly a loop or a closed curve).
    Edge,
    /// A 2-dimensional cell.
    Face,
}

/// Identifier of a connected component of the invariant's skeleton.
pub type ComponentId = usize;

/// One item of the *cone* of a vertex: the cyclic, alternating sequence of
/// incident edges and face sectors around the vertex, in counterclockwise
/// order. This is exactly the information the paper's `Orientation` relation
/// encodes, and the raw material of the cones/cycles normal form of Section 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConeItem {
    /// An incident edge (a loop appears twice).
    Edge(usize),
    /// A face sector.
    Face(usize),
}

/// A boundary component of a face.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundaryComponent {
    /// A closed walk of directed edges `(edge, direction)`, where direction 0
    /// walks from the edge's first endpoint to its second.
    Walk(Vec<(usize, u8)>),
    /// A vertex-free closed curve lying on the face's boundary.
    ClosedCurve(usize),
    /// An isolated vertex lying inside the face.
    IsolatedVertex(usize),
}

/// A connected component of the invariant's skeleton (the graph whose nodes
/// are the vertices and edges, connected by the Edge–Vertex relation).
#[derive(Clone, Debug, Default)]
pub struct Component {
    /// Vertices of the component.
    pub vertices: Vec<usize>,
    /// Edges of the component.
    pub edges: Vec<usize>,
    /// The face of the invariant in which the component is embedded.
    pub parent_face: usize,
    /// Depth in the connected-component tree (children of the root have
    /// depth 0).
    pub depth: usize,
}

/// The topological invariant `top(I)` of a spatial instance: the maximal
/// topological cell decomposition together with region membership and the
/// cyclic orientation of cells around every vertex (Theorem 2.1).
#[derive(Clone, Debug)]
pub struct TopologicalInvariant {
    schema: Schema,
    // Vertices.
    vertex_slots: Vec<Vec<(usize, u8)>>,
    vertex_sectors: Vec<Vec<usize>>,
    vertex_isolated_face: Vec<Option<usize>>,
    vertex_regions: Vec<RegionSet>,
    vertex_boundary: Vec<RegionSet>,
    // Edges.
    edge_ends: Vec<Option<(usize, usize)>>,
    edge_sides: Vec<(usize, usize)>,
    edge_regions: Vec<RegionSet>,
    edge_boundary: Vec<RegionSet>,
    // Faces.
    face_regions: Vec<RegionSet>,
    exterior_face: usize,
    // Derived structure.
    components: Vec<Component>,
    component_of_vertex: Vec<ComponentId>,
    component_of_edge: Vec<ComponentId>,
    face_owner: Vec<Option<ComponentId>>,
    // The canonical form and its hash, computed once on first use. The
    // invariant is immutable after construction, so the cache can never go
    // stale; cloning an invariant carries the cache along.
    canonical: OnceLock<(CanonicalForm, CodeHash)>,
}

/// The raw, serialisation-friendly data of a [`TopologicalInvariant`]: every
/// stored field, with all derived structure (skeleton components, the
/// component tree, face ownership, the cached canonical form) stripped.
///
/// Produced by [`TopologicalInvariant::to_parts`] and consumed by
/// [`TopologicalInvariant::from_parts`], which recomputes the derived
/// structure — the round trip is observationally exact (same canonical code,
/// same relational export). This is the surface persistence layers such as
/// `topo-store`'s snapshot/WAL format encode, so the invariant's in-memory
/// derived caches never leak into an on-disk format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantParts {
    /// The schema the invariant was built over.
    pub schema: Schema,
    /// Per vertex: edge-end slots in counterclockwise order.
    pub vertex_slots: Vec<Vec<(usize, u8)>>,
    /// Per vertex: face sectors (sector `i` follows slot `i`).
    pub vertex_sectors: Vec<Vec<usize>>,
    /// Per vertex: the containing face, for isolated vertices.
    pub vertex_isolated_face: Vec<Option<usize>>,
    /// Per vertex: regions containing it.
    pub vertex_regions: Vec<RegionSet>,
    /// Per vertex: regions on whose boundary it lies.
    pub vertex_boundary: Vec<RegionSet>,
    /// Per edge: endpoints (`None` for closed curves).
    pub edge_ends: Vec<Option<(usize, usize)>>,
    /// Per edge: the two faces beside it.
    pub edge_sides: Vec<(usize, usize)>,
    /// Per edge: regions containing it.
    pub edge_regions: Vec<RegionSet>,
    /// Per edge: regions on whose boundary it lies.
    pub edge_boundary: Vec<RegionSet>,
    /// Per face: regions whose interior contains it.
    pub face_regions: Vec<RegionSet>,
    /// Index of the exterior face.
    pub exterior_face: usize,
}

impl InvariantParts {
    /// Structural validation: every per-vertex/-edge/-face vector has the
    /// right length and every cross-reference (edge endpoints, face sides,
    /// sector faces, isolated faces, the exterior face) is in bounds. Returns
    /// a description of the first violation.
    fn validate(&self) -> Result<(), String> {
        let nv = self.vertex_slots.len();
        let ne = self.edge_ends.len();
        let nf = self.face_regions.len();
        let len = |name: &str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(format!("{name}: {got} entries for {want} cells"))
            }
        };
        len("vertex_sectors", self.vertex_sectors.len(), nv)?;
        len("vertex_isolated_face", self.vertex_isolated_face.len(), nv)?;
        len("vertex_regions", self.vertex_regions.len(), nv)?;
        len("vertex_boundary", self.vertex_boundary.len(), nv)?;
        len("edge_sides", self.edge_sides.len(), ne)?;
        len("edge_regions", self.edge_regions.len(), ne)?;
        len("edge_boundary", self.edge_boundary.len(), ne)?;
        if nf == 0 {
            return Err("no faces (every invariant has an exterior face)".to_string());
        }
        if self.exterior_face >= nf {
            return Err(format!("exterior face {} out of {nf} faces", self.exterior_face));
        }
        for (v, slots) in self.vertex_slots.iter().enumerate() {
            if self.vertex_sectors[v].len() != slots.len() {
                return Err(format!("vertex {v}: sector count diverges from slot count"));
            }
            for &(e, end) in slots {
                if e >= ne || end > 1 {
                    return Err(format!("vertex {v}: slot ({e}, {end}) out of range"));
                }
            }
            for &f in &self.vertex_sectors[v] {
                if f >= nf {
                    return Err(format!("vertex {v}: sector face {f} out of {nf}"));
                }
            }
            if let Some(f) = self.vertex_isolated_face[v] {
                if f >= nf {
                    return Err(format!("vertex {v}: isolated face {f} out of {nf}"));
                }
            }
            if slots.is_empty() && self.vertex_isolated_face[v].is_none() {
                return Err(format!("vertex {v}: isolated but has no containing face"));
            }
        }
        for (e, ends) in self.edge_ends.iter().enumerate() {
            if let Some((a, b)) = *ends {
                if a >= nv || b >= nv {
                    return Err(format!("edge {e}: endpoint out of {nv} vertices"));
                }
            }
            let (l, r) = self.edge_sides[e];
            if l >= nf || r >= nf {
                return Err(format!("edge {e}: side face out of {nf} faces"));
            }
        }
        Ok(())
    }
}

impl TopologicalInvariant {
    /// Freezes a (reduced or unreduced) complex into an invariant.
    ///
    /// The renumbering is flat: complex cell ids are dense, so the live-cell
    /// index maps are plain vectors rather than hash maps, and every face
    /// reference goes through one memoised [`Complex::resolved_faces`] table
    /// instead of a union-find parent-chain walk per lookup.
    pub fn from_complex(complex: &Complex, schema: Schema) -> Self {
        // Compact renumbering of live cells over the dense id spaces
        // (`usize::MAX` marks dead ids, which are never referenced).
        let live_vertices = complex.live_vertices();
        let live_edges = complex.live_edges();
        let live_faces = complex.live_faces();
        let (vertex_ids, edge_ids, face_ids) = complex.id_bounds();
        let mut vmap = vec![usize::MAX; vertex_ids];
        for (i, &v) in live_vertices.iter().enumerate() {
            vmap[v] = i;
        }
        let mut emap = vec![usize::MAX; edge_ids];
        for (i, &e) in live_edges.iter().enumerate() {
            emap[e] = i;
        }
        // `live_faces` holds representative ids, so indexing the resolved
        // table by any raw face id lands on a mapped slot.
        let resolved = complex.resolved_faces();
        let mut fmap = vec![usize::MAX; face_ids];
        for (i, &f) in live_faces.iter().enumerate() {
            fmap[f] = i;
        }
        let face_of = |f: usize| fmap[resolved[f]];

        let vertex_slots: Vec<Vec<(usize, u8)>> = live_vertices
            .iter()
            .map(|&v| complex.slots(v).iter().map(|&(e, end)| (emap[e], end)).collect())
            .collect();
        let vertex_sectors: Vec<Vec<usize>> = live_vertices
            .iter()
            .map(|&v| complex.raw_sectors(v).iter().map(|&f| face_of(f)).collect())
            .collect();
        let vertex_isolated_face: Vec<Option<usize>> =
            live_vertices.iter().map(|&v| complex.raw_isolated_face(v).map(face_of)).collect();
        let vertex_regions: Vec<RegionSet> =
            live_vertices.iter().map(|&v| complex.vertex_regions(v).clone()).collect();
        let vertex_boundary: Vec<RegionSet> =
            live_vertices.iter().map(|&v| complex.vertex_boundary_regions(v).clone()).collect();

        let edge_ends: Vec<Option<(usize, usize)>> = live_edges
            .iter()
            .map(|&e| complex.edge_ends(e).map(|(a, b)| (vmap[a], vmap[b])))
            .collect();
        let edge_sides: Vec<(usize, usize)> = live_edges
            .iter()
            .map(|&e| {
                let (a, b) = complex.raw_edge_sides(e);
                (face_of(a), face_of(b))
            })
            .collect();
        let edge_regions: Vec<RegionSet> =
            live_edges.iter().map(|&e| complex.edge_regions(e).clone()).collect();
        let edge_boundary: Vec<RegionSet> =
            live_edges.iter().map(|&e| complex.edge_boundary_regions(e).clone()).collect();

        let face_regions: Vec<RegionSet> =
            live_faces.iter().map(|&f| complex.face_regions(f).clone()).collect();
        let exterior_face = face_of(complex.raw_exterior_face());

        let mut invariant = TopologicalInvariant {
            schema,
            vertex_slots,
            vertex_sectors,
            vertex_isolated_face,
            vertex_regions,
            vertex_boundary,
            edge_ends,
            edge_sides,
            edge_regions,
            edge_boundary,
            face_regions,
            exterior_face,
            components: Vec::new(),
            component_of_vertex: Vec::new(),
            component_of_edge: Vec::new(),
            face_owner: Vec::new(),
            canonical: OnceLock::new(),
        };
        invariant.compute_components();
        invariant.compute_component_tree();
        invariant
    }

    /// Extracts the raw stored data of the invariant — the inverse of
    /// [`from_parts`](Self::from_parts). Derived structure and the cached
    /// canonical form are not included; `from_parts` recomputes them.
    pub fn to_parts(&self) -> InvariantParts {
        InvariantParts {
            schema: self.schema.clone(),
            vertex_slots: self.vertex_slots.clone(),
            vertex_sectors: self.vertex_sectors.clone(),
            vertex_isolated_face: self.vertex_isolated_face.clone(),
            vertex_regions: self.vertex_regions.clone(),
            vertex_boundary: self.vertex_boundary.clone(),
            edge_ends: self.edge_ends.clone(),
            edge_sides: self.edge_sides.clone(),
            edge_regions: self.edge_regions.clone(),
            edge_boundary: self.edge_boundary.clone(),
            face_regions: self.face_regions.clone(),
            exterior_face: self.exterior_face,
        }
    }

    /// Rebuilds an invariant from its raw parts, recomputing the skeleton
    /// components, the component tree and face ownership. Rejects
    /// structurally inconsistent parts (length mismatches, out-of-range
    /// cross-references) with a description instead of risking a panic in a
    /// later query — the contract persistence layers need when the parts come
    /// off a disk.
    ///
    /// For parts obtained from [`to_parts`](Self::to_parts) the round trip is
    /// observationally exact: the same canonical code, the same relational
    /// export, the same answer to every accessor.
    pub fn from_parts(parts: InvariantParts) -> Result<Self, String> {
        parts.validate()?;
        let mut invariant = TopologicalInvariant {
            schema: parts.schema,
            vertex_slots: parts.vertex_slots,
            vertex_sectors: parts.vertex_sectors,
            vertex_isolated_face: parts.vertex_isolated_face,
            vertex_regions: parts.vertex_regions,
            vertex_boundary: parts.vertex_boundary,
            edge_ends: parts.edge_ends,
            edge_sides: parts.edge_sides,
            edge_regions: parts.edge_regions,
            edge_boundary: parts.edge_boundary,
            face_regions: parts.face_regions,
            exterior_face: parts.exterior_face,
            components: Vec::new(),
            component_of_vertex: Vec::new(),
            component_of_edge: Vec::new(),
            face_owner: Vec::new(),
            canonical: OnceLock::new(),
        };
        invariant.compute_components();
        invariant.compute_component_tree();
        Ok(invariant)
    }

    // ----- basic accessors --------------------------------------------------

    /// The schema the invariant was built over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_slots.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_ends.len()
    }

    /// Number of faces (including the exterior face).
    pub fn face_count(&self) -> usize {
        self.face_regions.len()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.vertex_count() + self.edge_count() + self.face_count()
    }

    /// Index of the exterior face.
    pub fn exterior_face(&self) -> usize {
        self.exterior_face
    }

    /// Endpoints of an edge (`None` for closed curves, equal endpoints for
    /// loops).
    pub fn edge_endpoints(&self, e: usize) -> Option<(usize, usize)> {
        self.edge_ends[e]
    }

    /// The two faces beside an edge.
    pub fn edge_faces(&self, e: usize) -> (usize, usize) {
        self.edge_sides[e]
    }

    /// Degree of a vertex (edge-ends; loops count twice).
    pub fn degree(&self, v: usize) -> usize {
        self.vertex_slots[v].len()
    }

    /// Edge-end slots around a vertex in counterclockwise order.
    pub fn vertex_slots(&self, v: usize) -> &[(usize, u8)] {
        &self.vertex_slots[v]
    }

    /// Face sectors around a vertex (sector `i` follows slot `i`
    /// counterclockwise).
    pub fn vertex_sector_faces(&self, v: usize) -> &[usize] {
        &self.vertex_sectors[v]
    }

    /// The face containing an isolated vertex.
    pub fn isolated_vertex_face(&self, v: usize) -> Option<usize> {
        if self.vertex_slots[v].is_empty() {
            self.vertex_isolated_face[v]
        } else {
            None
        }
    }

    /// Regions containing a vertex.
    pub fn vertex_regions(&self, v: usize) -> &RegionSet {
        &self.vertex_regions[v]
    }

    /// Regions on whose boundary a vertex lies.
    pub fn vertex_boundary_regions(&self, v: usize) -> &RegionSet {
        &self.vertex_boundary[v]
    }

    /// Regions containing an edge.
    pub fn edge_regions(&self, e: usize) -> &RegionSet {
        &self.edge_regions[e]
    }

    /// Regions on whose boundary an edge lies.
    pub fn edge_boundary_regions(&self, e: usize) -> &RegionSet {
        &self.edge_boundary[e]
    }

    /// Regions whose interior contains a face.
    pub fn face_regions(&self, f: usize) -> &RegionSet {
        &self.face_regions[f]
    }

    /// True iff the cell of the given kind is contained in the region, which
    /// is the paper's per-region unary relation on cells.
    pub fn cell_in_region(&self, kind: CellKind, id: usize, region: RegionId) -> bool {
        match kind {
            CellKind::Vertex => self.vertex_regions[id].contains(region),
            CellKind::Edge => self.edge_regions[id].contains(region),
            CellKind::Face => self.face_regions[id].contains(region),
        }
    }

    /// The cone of a vertex: the cyclic alternating sequence of incident edges
    /// and face sectors in counterclockwise order. For an isolated vertex this
    /// is just its containing face.
    pub fn cone(&self, v: usize) -> Vec<ConeItem> {
        if self.vertex_slots[v].is_empty() {
            return vec![ConeItem::Face(
                self.vertex_isolated_face[v].expect("isolated vertex has a containing face"),
            )];
        }
        let mut out = Vec::with_capacity(self.vertex_slots[v].len() * 2);
        for (i, &(e, _)) in self.vertex_slots[v].iter().enumerate() {
            out.push(ConeItem::Edge(e));
            out.push(ConeItem::Face(self.vertex_sectors[v][i]));
        }
        out
    }

    /// All edges on the topological boundary of a face (the paper's
    /// `Face-Edge` relation), including edges of components nested inside the
    /// face.
    pub fn face_edges(&self, face: usize) -> Vec<usize> {
        (0..self.edge_count())
            .filter(|&e| self.edge_sides[e].0 == face || self.edge_sides[e].1 == face)
            .collect()
    }

    /// All vertices on the topological boundary of a face (the paper's
    /// `Face-Vertex` relation), including isolated vertices inside it.
    pub fn face_vertices(&self, face: usize) -> Vec<usize> {
        (0..self.vertex_count())
            .filter(|&v| {
                self.vertex_sectors[v].contains(&face)
                    || (self.vertex_slots[v].is_empty()
                        && self.vertex_isolated_face[v] == Some(face))
            })
            .collect()
    }

    // ----- components and the component tree --------------------------------

    fn compute_components(&mut self) {
        let nv = self.vertex_count();
        let ne = self.edge_count();
        let mut parent: Vec<usize> = (0..nv + ne).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in 0..ne {
            if let Some((a, b)) = self.edge_ends[e] {
                for v in [a, b] {
                    let (x, y) = (find(&mut parent, v), find(&mut parent, nv + e));
                    if x != y {
                        parent[x] = y;
                    }
                }
            }
        }
        let mut component_ids: std::collections::HashMap<usize, ComponentId> =
            std::collections::HashMap::new();
        let mut components: Vec<Component> = Vec::new();
        let mut component_of_vertex = vec![0; nv];
        let mut component_of_edge = vec![0; ne];
        for (v, comp) in component_of_vertex.iter_mut().enumerate() {
            let root = find(&mut parent, v);
            let id = *component_ids.entry(root).or_insert_with(|| {
                components.push(Component::default());
                components.len() - 1
            });
            components[id].vertices.push(v);
            *comp = id;
        }
        for (e, comp) in component_of_edge.iter_mut().enumerate() {
            let root = find(&mut parent, nv + e);
            let id = *component_ids.entry(root).or_insert_with(|| {
                components.push(Component::default());
                components.len() - 1
            });
            components[id].edges.push(e);
            *comp = id;
        }
        self.components = components;
        self.component_of_vertex = component_of_vertex;
        self.component_of_edge = component_of_edge;
    }

    /// Builds the connected-component tree of the paper (Fig. 2): a
    /// level-order traversal from the exterior face assigns to every face the
    /// unique closest component owning it and to every component the face it
    /// is embedded in.
    fn compute_component_tree(&mut self) {
        let face_count = self.face_count();
        // Adjacency between faces and components.
        let mut face_components: Vec<std::collections::HashSet<ComponentId>> =
            vec![std::collections::HashSet::new(); face_count];
        for e in 0..self.edge_count() {
            let c = self.component_of_edge[e];
            let (a, b) = self.edge_sides[e];
            face_components[a].insert(c);
            face_components[b].insert(c);
        }
        for v in 0..self.vertex_count() {
            let c = self.component_of_vertex[v];
            for &f in &self.vertex_sectors[v] {
                face_components[f].insert(c);
            }
            if self.vertex_slots[v].is_empty() {
                if let Some(f) = self.vertex_isolated_face[v] {
                    face_components[f].insert(c);
                }
            }
        }
        let mut face_owner: Vec<Option<ComponentId>> = vec![None; face_count];
        let mut component_assigned = vec![false; self.components.len()];
        let mut queue: std::collections::VecDeque<(ComponentId, usize, usize)> =
            std::collections::VecDeque::new();
        // The exterior face is owned by nobody; its adjacent components are the
        // roots of the forest (depth 0, parent = exterior face).
        for &c in &face_components[self.exterior_face] {
            if !component_assigned[c] {
                component_assigned[c] = true;
                queue.push_back((c, self.exterior_face, 0));
            }
        }
        while let Some((c, parent_face, depth)) = queue.pop_front() {
            self.components[c].parent_face = parent_face;
            self.components[c].depth = depth;
            // Faces adjacent to this component that are not yet owned belong
            // to it.
            let adjacent_faces: Vec<usize> = (0..face_count)
                .filter(|&f| f != self.exterior_face && face_components[f].contains(&c))
                .collect();
            for f in adjacent_faces {
                if face_owner[f].is_some() {
                    continue;
                }
                face_owner[f] = Some(c);
                for &child in &face_components[f] {
                    if !component_assigned[child] {
                        component_assigned[child] = true;
                        queue.push_back((child, f, depth + 1));
                    }
                }
            }
        }
        self.face_owner = face_owner;
    }

    /// The connected components of the skeleton.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The component a vertex belongs to.
    pub fn component_of_vertex(&self, v: usize) -> ComponentId {
        self.component_of_vertex[v]
    }

    /// The component an edge belongs to.
    pub fn component_of_edge(&self, e: usize) -> ComponentId {
        self.component_of_edge[e]
    }

    /// The component owning a face (the unique component closest to the
    /// exterior among those on the face's boundary), or `None` for the
    /// exterior face.
    pub fn face_owner(&self, face: usize) -> Option<ComponentId> {
        self.face_owner[face]
    }

    /// The faces owned by a component, sorted.
    pub fn owned_faces(&self, component: ComponentId) -> Vec<usize> {
        (0..self.face_count()).filter(|&f| self.face_owner[f] == Some(component)).collect()
    }

    /// The components directly embedded in a face (the children of the face in
    /// the component tree).
    pub fn components_in_face(&self, face: usize) -> Vec<ComponentId> {
        (0..self.components.len()).filter(|&c| self.components[c].parent_face == face).collect()
    }

    // ----- boundary walks ----------------------------------------------------

    /// The boundary components of a face: closed walks of directed edges,
    /// vertex-free closed curves, and isolated vertices.
    pub fn boundary_components(&self, face: usize) -> Vec<BoundaryComponent> {
        let mut out = Vec::new();
        // Closed curves.
        for e in 0..self.edge_count() {
            if self.edge_ends[e].is_none()
                && (self.edge_sides[e].0 == face || self.edge_sides[e].1 == face)
            {
                // A closed curve with the face on both sides appears twice.
                let occurrences = (self.edge_sides[e].0 == face) as usize
                    + (self.edge_sides[e].1 == face) as usize;
                for _ in 0..occurrences {
                    out.push(BoundaryComponent::ClosedCurve(e));
                }
            }
        }
        // Isolated vertices.
        for v in 0..self.vertex_count() {
            if self.vertex_slots[v].is_empty() && self.vertex_isolated_face[v] == Some(face) {
                out.push(BoundaryComponent::IsolatedVertex(v));
            }
        }
        // Walks: trace every directed edge with `face` on its left exactly once.
        let mut visited: std::collections::HashSet<(usize, u8)> = std::collections::HashSet::new();
        for e in 0..self.edge_count() {
            if self.edge_ends[e].is_none() {
                continue;
            }
            for direction in [0u8, 1u8] {
                if visited.contains(&(e, direction))
                    || self.half_edge_left_face(e, direction) != face
                {
                    continue;
                }
                let mut walk = Vec::new();
                let mut current = (e, direction);
                loop {
                    visited.insert(current);
                    walk.push(current);
                    current = self.next_half_edge(current.0, current.1);
                    if current == (e, direction) {
                        break;
                    }
                }
                out.push(BoundaryComponent::Walk(walk));
            }
        }
        out
    }

    /// The face to the left of the directed edge `(e, direction)` (direction 0
    /// walks from the first endpoint to the second).
    pub fn half_edge_left_face(&self, e: usize, direction: u8) -> usize {
        let head_end = if direction == 0 { 1u8 } else { 0u8 };
        let (a, b) = self.edge_ends[e].expect("half-edge of an edge with endpoints");
        let head_vertex = if head_end == 0 { a } else { b };
        let slots = &self.vertex_slots[head_vertex];
        let pos = slots
            .iter()
            .position(|&slot| slot == (e, head_end))
            .expect("edge end present in head vertex rotation");
        let degree = slots.len();
        // The face on the left of the arriving half-edge is the sector
        // immediately counterclockwise-before the arrival slot.
        self.vertex_sectors[head_vertex][(pos + degree - 1) % degree]
    }

    /// The half-edge following `(e, direction)` along the boundary of the face
    /// on its left.
    pub fn next_half_edge(&self, e: usize, direction: u8) -> (usize, u8) {
        let head_end = if direction == 0 { 1u8 } else { 0u8 };
        let (a, b) = self.edge_ends[e].expect("half-edge of an edge with endpoints");
        let head_vertex = if head_end == 0 { a } else { b };
        let slots = &self.vertex_slots[head_vertex];
        let pos = slots
            .iter()
            .position(|&slot| slot == (e, head_end))
            .expect("edge end present in head vertex rotation");
        let degree = slots.len();
        let (next_edge, next_end) = slots[(pos + degree - 1) % degree];
        // Departing via that slot: the slot is the tail end of the next
        // half-edge.
        let next_direction = if next_end == 0 { 0u8 } else { 1u8 };
        (next_edge, next_direction)
    }

    // ----- canonical form and relational export ------------------------------

    /// The canonical form of the invariant (code + realising cell order),
    /// computed once and cached; every later call is a cache hit.
    pub fn canonical_form(&self) -> &CanonicalForm {
        &self.canonical_entry().0
    }

    /// The canonical code of the invariant: equal codes iff the invariants are
    /// isomorphic (Theorems 3.2 / 3.4 made algorithmic; see the `canonical`
    /// module). Computed once and cached on the invariant; every later call
    /// returns the cached code without recomputation.
    pub fn canonical_code(&self) -> &CanonicalCode {
        &self.canonical_entry().0.code
    }

    /// A 64-bit digest of the canonical code, for hash-map keying (cached
    /// alongside the code).
    pub fn code_hash(&self) -> CodeHash {
        self.canonical_entry().1
    }

    /// The canonical total order on the invariant's cells: the order realising
    /// the canonical code (Theorem 3.4's canonical ordering). Isomorphic
    /// invariants produce orders related by the isomorphism.
    pub fn canonical_cell_order(&self) -> &[CellRef] {
        &self.canonical_entry().0.order
    }

    fn canonical_entry(&self) -> &(CanonicalForm, CodeHash) {
        self.canonical.get_or_init(|| {
            let form = canonical::canonical_form(self);
            let hash = form.code.code_hash();
            (form, hash)
        })
    }

    /// Seeds the canonical-form cache with an externally assembled form, so
    /// the first `canonical_code` / `code_hash` call never runs the global
    /// sweep. Used by the incremental maintainer, which proves its merged
    /// form equals what [`canonical::canonical_form`] would compute (the
    /// differential suite pins this bit-for-bit). A no-op if the cache is
    /// already filled.
    pub(crate) fn prime_canonical(&self, form: CanonicalForm) {
        let hash = form.code.code_hash();
        let _ = self.canonical.set((form, hash));
    }

    /// True iff two invariants are isomorphic, i.e. the underlying spatial
    /// instances are topologically equivalent (Theorem 2.1(ii)). Decided by
    /// comparing cached canonical codes (hash first), so repeated checks on
    /// the same invariants never recompute anything.
    pub fn is_isomorphic_to(&self, other: &TopologicalInvariant) -> bool {
        self.code_hash() == other.code_hash() && self.canonical_code() == other.canonical_code()
    }

    /// The domain element representing a cell in the relational exports
    /// ([`to_structure`](Self::to_structure) and friends): elements 0 and 1
    /// are the orientation constants, then vertices, edges and faces in
    /// index order. Consumers that add relations over exported structures
    /// (e.g. `topo-translate`'s ordered copies) must use this mapping rather
    /// than re-deriving the layout.
    pub fn cell_element(&self, kind: CellKind, id: usize) -> u32 {
        let (nv, ne) = (self.vertex_count(), self.edge_count());
        match kind {
            CellKind::Vertex => (2 + id) as u32,
            CellKind::Edge => (2 + nv + id) as u32,
            CellKind::Face => (2 + nv + ne + id) as u32,
        }
    }

    /// Exports the invariant as a relational structure over the schema
    /// `inv(Reg)` of the paper: unary `Vertex`, `Edge`, `Face`,
    /// `ExteriorFace`, binary `EdgeVertex`, `FaceEdge`, `FaceVertex`, one
    /// unary relation `Region_<name>` per region name, and the 5-ary
    /// `Orientation` relation over the cyclic order of cells around each
    /// vertex. Domain element 0 is the counterclockwise orientation constant,
    /// element 1 the clockwise one.
    pub fn to_structure(&self) -> Structure {
        self.export(true)
    }

    /// Exports the invariant with only the *successor* version of the
    /// orientation relation (4-ary `OrientationSucc`), as in \[PSV99\]. Used by
    /// the Figure 9 experiment showing that the full cyclic order is needed
    /// for the first-order translation.
    pub fn to_structure_successor_only(&self) -> Structure {
        self.export(false)
    }

    fn export(&self, full_cyclic: bool) -> Structure {
        let nv = self.vertex_count();
        let ne = self.edge_count();
        let nf = self.face_count();
        let vert = |v: usize| -> u32 { self.cell_element(CellKind::Vertex, v) };
        let edge = |e: usize| -> u32 { self.cell_element(CellKind::Edge, e) };
        let face = |f: usize| -> u32 { self.cell_element(CellKind::Face, f) };
        let mut s = Structure::new(2 + nv + ne + nf);
        s.add_relation("OrientationConstant", 1);
        s.insert("OrientationConstant", &[0]);
        s.insert("OrientationConstant", &[1]);
        s.add_relation("Vertex", 1);
        s.add_relation("Edge", 1);
        s.add_relation("Face", 1);
        s.add_relation("ExteriorFace", 1);
        s.add_relation("EdgeVertex", 2);
        s.add_relation("FaceEdge", 2);
        s.add_relation("FaceVertex", 2);
        for (_, name) in self.schema.iter() {
            s.add_relation(&format!("Region_{name}"), 1);
        }
        for v in 0..nv {
            s.insert("Vertex", &[vert(v)]);
        }
        for e in 0..ne {
            s.insert("Edge", &[edge(e)]);
            if let Some((a, b)) = self.edge_ends[e] {
                s.insert("EdgeVertex", &[edge(e), vert(a)]);
                s.insert("EdgeVertex", &[edge(e), vert(b)]);
            }
        }
        for f in 0..nf {
            s.insert("Face", &[face(f)]);
            for e in self.face_edges(f) {
                s.insert("FaceEdge", &[face(f), edge(e)]);
            }
            for v in self.face_vertices(f) {
                s.insert("FaceVertex", &[face(f), vert(v)]);
            }
        }
        s.insert("ExteriorFace", &[face(self.exterior_face)]);
        for (region, name) in self.schema.iter() {
            let relation = format!("Region_{name}");
            for v in 0..nv {
                if self.vertex_regions[v].contains(region) {
                    s.insert(&relation, &[vert(v)]);
                }
            }
            for e in 0..ne {
                if self.edge_regions[e].contains(region) {
                    s.insert(&relation, &[edge(e)]);
                }
            }
            for f in 0..nf {
                if self.face_regions[f].contains(region) {
                    s.insert(&relation, &[face(f)]);
                }
            }
        }
        // Orientation: the cyclic order of cells around each vertex, for both
        // orientations (element 0 = counterclockwise, element 1 = clockwise).
        let cell_id = |item: &ConeItem| -> u32 {
            match item {
                ConeItem::Edge(e) => edge(*e),
                ConeItem::Face(f) => face(*f),
            }
        };
        if full_cyclic {
            s.add_relation("Orientation", 5);
        } else {
            s.add_relation("OrientationSucc", 4);
        }
        for v in 0..nv {
            let cone = self.cone(v);
            let n = cone.len();
            if n == 0 {
                continue;
            }
            for (orientation, dir) in [(0u32, 1isize), (1u32, -1isize)] {
                let at = |start: usize, offset: usize| -> usize {
                    ((start as isize + dir * offset as isize).rem_euclid(n as isize)) as usize
                };
                if full_cyclic {
                    // (w, v, c1, c2, c3): c2 strictly between c1 and c3 going in
                    // the w direction from c1.
                    for i in 0..n {
                        for j_off in 1..n {
                            for k_off in (j_off + 1)..n {
                                let c1 = cell_id(&cone[i]);
                                let c2 = cell_id(&cone[at(i, j_off)]);
                                let c3 = cell_id(&cone[at(i, k_off)]);
                                if c1 != c2 && c2 != c3 && c1 != c3 {
                                    s.insert("Orientation", &[orientation, vert(v), c1, c2, c3]);
                                }
                            }
                        }
                    }
                } else {
                    for i in 0..n {
                        let c1 = cell_id(&cone[i]);
                        let c2 = cell_id(&cone[at(i, 1)]);
                        s.insert("OrientationSucc", &[orientation, vert(v), c1, c2]);
                    }
                }
            }
        }
        s
    }
}
