//! First-order logic over finite relational structures (`FO_inv`).

use crate::structure::Structure;
use std::collections::HashMap;
use std::fmt;

/// A term: a variable or a domain constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, identified by an index.
    Var(u32),
    /// A constant element of the domain.
    Const(u32),
}

/// A first-order formula over the vocabulary of a [`Structure`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// `R(t1, …, tk)`.
    Atom {
        /// Relation name.
        relation: String,
        /// Argument terms.
        terms: Vec<Term>,
    },
    /// `t1 = t2`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (true when empty).
    And(Vec<Formula>),
    /// Disjunction (false when empty).
    Or(Vec<Formula>),
    /// Existential quantification.
    Exists(u32, Box<Formula>),
    /// Universal quantification.
    Forall(u32, Box<Formula>),
}

impl Formula {
    /// Convenience constructor for atoms.
    pub fn atom(relation: &str, terms: Vec<Term>) -> Formula {
        Formula::Atom { relation: relation.to_string(), terms }
    }

    /// `φ → ψ` as `¬φ ∨ ψ`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Or(vec![Formula::Not(Box::new(self)), other])
    }

    /// Quantifier depth.
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 0,
            Formula::Not(f) => f.quantifier_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_depth()).max().unwrap_or(0)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(|f| f.size()).sum::<usize>(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_free(&self, bound: &mut Vec<u32>, out: &mut Vec<u32>) {
        let push_term = |t: &Term, bound: &Vec<u32>, out: &mut Vec<u32>| {
            if let Term::Var(v) = t {
                if !bound.contains(v) {
                    out.push(*v);
                }
            }
        };
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom { terms, .. } => {
                for t in terms {
                    push_term(t, bound, out);
                }
            }
            Formula::Eq(a, b) => {
                push_term(a, bound, out);
                push_term(b, bound, out);
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// True iff the formula has no free variables.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Evaluates a sentence on a structure.
    ///
    /// # Panics
    /// Panics if the formula has free variables.
    pub fn holds(&self, structure: &Structure) -> bool {
        assert!(self.is_sentence(), "evaluation of an open formula without an assignment");
        self.eval(structure, &mut HashMap::new())
    }

    /// Evaluates the formula under a (partial) assignment of its free
    /// variables.
    pub fn holds_with(&self, structure: &Structure, assignment: &HashMap<u32, u32>) -> bool {
        let mut assignment = assignment.clone();
        self.eval(structure, &mut assignment)
    }

    /// All assignments (as tuples in the order of `vars`) of the given free
    /// variables that satisfy the formula.
    pub fn satisfying_tuples(&self, structure: &Structure, vars: &[u32]) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut assignment = HashMap::new();
        self.enumerate(structure, vars, 0, &mut assignment, &mut out);
        out.sort();
        out
    }

    fn enumerate(
        &self,
        structure: &Structure,
        vars: &[u32],
        index: usize,
        assignment: &mut HashMap<u32, u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if index == vars.len() {
            if self.eval(structure, &mut assignment.clone()) {
                out.push(vars.iter().map(|v| assignment[v]).collect());
            }
            return;
        }
        for value in structure.domain() {
            assignment.insert(vars[index], value);
            self.enumerate(structure, vars, index + 1, assignment, out);
        }
        assignment.remove(&vars[index]);
    }

    fn value(term: &Term, assignment: &HashMap<u32, u32>) -> u32 {
        match term {
            Term::Const(c) => *c,
            Term::Var(v) => *assignment
                .get(v)
                .unwrap_or_else(|| panic!("unbound variable x{v} during evaluation")),
        }
    }

    fn eval(&self, structure: &Structure, assignment: &mut HashMap<u32, u32>) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom { relation, terms } => {
                let tuple: Vec<u32> = terms.iter().map(|t| Self::value(t, assignment)).collect();
                structure.contains(relation, &tuple)
            }
            Formula::Eq(a, b) => Self::value(a, assignment) == Self::value(b, assignment),
            Formula::Not(f) => !f.eval(structure, assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(structure, assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(structure, assignment)),
            Formula::Exists(v, f) => {
                let previous = assignment.get(v).copied();
                let mut result = false;
                for value in structure.domain() {
                    assignment.insert(*v, value);
                    if f.eval(structure, assignment) {
                        result = true;
                        break;
                    }
                }
                restore(assignment, *v, previous);
                result
            }
            Formula::Forall(v, f) => {
                let previous = assignment.get(v).copied();
                let mut result = true;
                for value in structure.domain() {
                    assignment.insert(*v, value);
                    if !f.eval(structure, assignment) {
                        result = false;
                        break;
                    }
                }
                restore(assignment, *v, previous);
                result
            }
        }
    }
}

fn restore(assignment: &mut HashMap<u32, u32>, var: u32, previous: Option<u32>) {
    match previous {
        Some(value) => {
            assignment.insert(var, value);
        }
        None => {
            assignment.remove(&var);
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom { relation, terms } => {
                write!(f, "{relation}(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        Term::Var(v) => write!(f, "x{v}")?,
                        Term::Const(c) => write!(f, "{c}")?,
                    }
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => {
                let show = |t: &Term| match t {
                    Term::Var(v) => format!("x{v}"),
                    Term::Const(c) => format!("{c}"),
                };
                write!(f, "{} = {}", show(a), show(b))
            }
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, inner) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{inner}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, inner) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{inner}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(v, inner) => write!(f, "∃x{v} {inner}"),
            Formula::Forall(v, inner) => write!(f, "∀x{v} {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A directed path 0 -> 1 -> 2 -> 3.
    fn path() -> Structure {
        let mut s = Structure::new(4);
        for i in 0..3u32 {
            s.insert("E", &[i, i + 1]);
        }
        s
    }

    #[test]
    fn atoms_and_connectives() {
        let s = path();
        let f = Formula::atom("E", vec![Term::Const(0), Term::Const(1)]);
        assert!(f.holds(&s));
        let g = Formula::Not(Box::new(Formula::atom("E", vec![Term::Const(1), Term::Const(0)])));
        assert!(g.holds(&s));
        assert!(Formula::And(vec![f, g]).holds(&s));
        assert!(Formula::And(vec![]).holds(&s));
        assert!(!Formula::Or(vec![]).holds(&s));
    }

    #[test]
    fn quantifiers() {
        let s = path();
        // Every element with an outgoing edge has one with an incoming edge: true.
        let has_out =
            Formula::Exists(1, Box::new(Formula::atom("E", vec![Term::Var(0), Term::Var(1)])));
        let has_in =
            Formula::Exists(2, Box::new(Formula::atom("E", vec![Term::Var(2), Term::Var(0)])));
        let sentence = Formula::Forall(0, Box::new(has_out.clone().implies(has_out.clone())));
        assert!(sentence.holds(&s));
        // There is a source: an element with outgoing but no incoming edge.
        let source = Formula::Exists(
            0,
            Box::new(Formula::And(vec![has_out, Formula::Not(Box::new(has_in))])),
        );
        assert!(source.holds(&s));
    }

    #[test]
    fn satisfying_tuples_enumeration() {
        let s = path();
        let f = Formula::atom("E", vec![Term::Var(0), Term::Var(1)]);
        let tuples = f.satisfying_tuples(&s, &[0, 1]);
        assert_eq!(tuples, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn depth_size_free_vars() {
        let f = Formula::Exists(
            0,
            Box::new(Formula::And(vec![
                Formula::atom("E", vec![Term::Var(0), Term::Var(1)]),
                Formula::Eq(Term::Var(1), Term::Const(2)),
            ])),
        );
        assert_eq!(f.quantifier_depth(), 1);
        assert_eq!(f.size(), 4);
        assert_eq!(f.free_vars(), vec![1]);
        assert!(!f.is_sentence());
    }

    #[test]
    fn holds_with_assignment() {
        let s = path();
        let f = Formula::atom("E", vec![Term::Var(0), Term::Var(1)]);
        let mut assignment = HashMap::new();
        assignment.insert(0, 1u32);
        assignment.insert(1, 2u32);
        assert!(f.holds_with(&s, &assignment));
        assignment.insert(1, 3u32);
        assert!(!f.holds_with(&s, &assignment));
    }

    #[test]
    fn display_round() {
        let f =
            Formula::Exists(0, Box::new(Formula::atom("R", vec![Term::Var(0), Term::Const(3)])));
        assert_eq!(format!("{f}"), "∃x0 R(x0, 3)");
    }

    #[test]
    #[should_panic]
    fn open_formula_needs_assignment() {
        let s = path();
        let f = Formula::atom("E", vec![Term::Var(0), Term::Var(1)]);
        let _ = f.holds(&s);
    }
}
