//! Inflationary Datalog with negation — the *fixpoint* queries — plus the
//! counting extension (*fixpoint+counting*) and the partial-fixpoint mode
//! (the *while* queries).
//!
//! The paper's Section 3 results are about these three languages evaluated on
//! topological invariants:
//!
//! * fixpoint ≙ inflationary Datalog¬ ≙ FO+IFP (Theorem 3.2),
//! * fixpoint+counting, obtained by adding counting over an auxiliary numeric
//!   domain (Theorem 3.4) — here a [`Literal::Count`] literal counting the
//!   matches of an atom, combined with the numeric relations installed by
//!   [`Structure::add_numeric_relations`],
//! * while ≙ partial fixpoint (Corollaries 3.3 and 3.5), obtained by
//!   recomputing the derived relations from scratch at every step instead of
//!   accumulating them.
//!
//! Rules must be *range-restricted*: every variable of the head, of a
//! negative literal, of a comparison, or of a count result must be bound by
//! an earlier positive literal in the body.
//!
//! # Evaluation
//!
//! All three modes share one round semantics: every rule fires
//! simultaneously against the frozen pre-round state, and the derived head
//! tuples are either accumulated (inflationary, stratified) or become the
//! next state outright (partial fixpoint). The engine behind [`Program::run`]
//! is *delta-driven* (semi-naive): after the first round, a rule with `k`
//! positive literals over relations being derived evaluates as `k` variants,
//! each binding one such literal to the facts new since the previous round,
//! the earlier ones to the state before those facts and the later ones to
//! the full pre-round state — so a round's cost scales with what changed,
//! not with the accumulated state. Joins run over per-relation hash indexes
//! keyed by each literal's bound positions and extended incrementally from
//! the deltas. Negative and counting literals always read the full frozen
//! pre-round state, which keeps all three semantics bit-for-bit identical to
//! the naive engine (frozen as `datalog::naive` behind the `naive-reference`
//! feature, and proven equivalent by `tests/datalog_equivalence.rs`). The
//! delta rewrite and its interaction with negation and counting are
//! documented in DESIGN.md, section "Datalog engine".
//!
//! # Example
//!
//! Transitive closure of a two-edge path, with a negated "is a source"
//! check — a two-rule fixpoint program:
//!
//! ```
//! use topo_relational::{Literal, Program, Rule, Semantics, Structure, Term};
//!
//! let mut graph = Structure::new(3);
//! graph.insert("E", &[0, 1]);
//! graph.insert("E", &[1, 2]);
//!
//! let v = Term::Var;
//! let program = Program::new("T")
//!     .rule(Rule::new(
//!         "T",
//!         vec![v(0), v(1)],
//!         vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
//!     ))
//!     .rule(Rule::new(
//!         "T",
//!         vec![v(0), v(2)],
//!         vec![
//!             Literal::Pos { relation: "T".into(), terms: vec![v(0), v(1)] },
//!             Literal::Pos { relation: "E".into(), terms: vec![v(1), v(2)] },
//!         ],
//!     ));
//!
//! let result = program.run(&graph, Semantics::Inflationary, usize::MAX).unwrap();
//! assert!(result.contains("T", &[0, 2])); // reachable in two steps
//! assert_eq!(result.relation("T").unwrap().len(), 3);
//! ```

use crate::fo::Term;
use crate::structure::Structure;
use std::collections::{HashMap, HashSet};

mod eval;
pub mod magic;
#[cfg(feature = "naive-reference")]
pub mod naive;

pub use magic::Goal;

/// A body literal of a Datalog rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// A positive atom `R(t̄)`; binds its variables.
    Pos {
        /// Relation name (base or derived).
        relation: String,
        /// Argument terms.
        terms: Vec<Term>,
    },
    /// A negative atom `¬R(t̄)`; all variables must already be bound.
    Neg {
        /// Relation name (base or derived).
        relation: String,
        /// Argument terms.
        terms: Vec<Term>,
    },
    /// Equality `t1 = t2`; all variables must already be bound.
    Eq(Term, Term),
    /// Disequality `t1 ≠ t2`; all variables must already be bound.
    Neq(Term, Term),
    /// Counting literal `#{ x̄ : R(t̄) } = result`.
    ///
    /// `counted` lists the variables of `t̄` that are counted over; every
    /// other variable of `t̄` must already be bound. If `result` is a bound
    /// term the literal is a test; if it is an unbound variable it is bound to
    /// the count (as a numeric domain element).
    Count {
        /// Relation whose matching tuples are counted.
        relation: String,
        /// Argument terms of the counted atom.
        terms: Vec<Term>,
        /// The counted (existential) variables.
        counted: Vec<u32>,
        /// The term receiving or tested against the count.
        result: Term,
    },
}

/// A Datalog rule `head(t̄) ← body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Head relation name.
    pub head_relation: String,
    /// Head argument terms.
    pub head_terms: Vec<Term>,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Convenience constructor.
    pub fn new(head_relation: &str, head_terms: Vec<Term>, body: Vec<Literal>) -> Self {
        Rule { head_relation: head_relation.to_string(), head_terms, body }
    }
}

/// Evaluation mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semantics {
    /// Inflationary fixpoint: all rules fire simultaneously against the
    /// current state and derived facts accumulate (the *fixpoint* queries;
    /// with counting literals, *fixpoint+counting*).
    Inflationary,
    /// Stratified semantics: rules are partitioned into strata so that a
    /// relation is never negated (or counted) before its stratum is complete,
    /// and each stratum runs inflationarily to its fixpoint. Every stratified
    /// program is expressible in inflationary fixpoint logic, so this mode is
    /// a convenience for writing the invariant-side query library, not an
    /// extension of expressive power.
    Stratified,
    /// Partial fixpoint: derived relations are recomputed from scratch each
    /// step (the *while* queries). May fail to converge.
    Partial,
}

/// A Datalog program with a designated Boolean output relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
    /// Name of the output relation; the Boolean answer is "is it non-empty
    /// after evaluation".
    pub output: String,
    /// Optional goal annotation: the atom the program exists to answer,
    /// made explicit so goal-directed evaluation ([`Program::run_goal`])
    /// knows which bindings to demand instead of relying on the
    /// "output relation non-empty" convention. `None` means the whole
    /// output relation is the goal ([`Program::goal_atom`]).
    pub goal: Option<Goal>,
}

impl Program {
    /// Creates an empty program with the given output relation.
    pub fn new(output: &str) -> Self {
        Program { rules: Vec::new(), output: output.to_string(), goal: None }
    }

    /// Annotates the program with its goal atom (builder style).
    pub fn with_goal(mut self, goal: Goal) -> Self {
        self.goal = Some(goal);
        self
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Names of the derived (intensional) relations (borrowed from the rules;
    /// no per-call cloning of the head names).
    pub fn derived_relations(&self) -> HashSet<&str> {
        self.rules.iter().map(|r| r.head_relation.as_str()).collect()
    }

    /// Runs the program on `input` and returns the resulting structure
    /// (input relations plus derived relations). Returns `None` only in
    /// partial-fixpoint mode when no fixpoint is reached within `max_steps`.
    ///
    /// ```
    /// use topo_relational::{Literal, Program, Rule, Semantics, Structure, Term};
    ///
    /// let mut s = Structure::new(2);
    /// s.insert("Node", &[0]);
    /// s.insert("Node", &[1]);
    /// s.insert("E", &[0, 1]);
    /// // Sink(x) ← Node(x), ¬HasOut(x);  HasOut(x) ← E(x, y).
    /// let v = Term::Var;
    /// let program = Program::new("Sink")
    ///     .rule(Rule::new(
    ///         "HasOut",
    ///         vec![v(0)],
    ///         vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
    ///     ))
    ///     .rule(Rule::new(
    ///         "Sink",
    ///         vec![v(0)],
    ///         vec![
    ///             Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
    ///             Literal::Neg { relation: "HasOut".into(), terms: vec![v(0)] },
    ///         ],
    ///     ));
    /// // Stratified semantics completes HasOut before negating it.
    /// let result = program.run(&s, Semantics::Stratified, usize::MAX).unwrap();
    /// assert_eq!(result.relation("Sink").unwrap().sorted_tuples(), vec![vec![1]]);
    /// ```
    pub fn run(
        &self,
        input: &Structure,
        semantics: Semantics,
        max_steps: usize,
    ) -> Option<Structure> {
        let derived = self.derived_relations();
        // The base state: input relations with the derived relations emptied.
        // Built once; partial-fixpoint rounds restart from a clone of it
        // instead of re-deriving it from `input` every round.
        let mut base = input.clone();
        for &name in &derived {
            base.remove_relation(name);
            if let Some(arity) = self.head_arity(name) {
                base.add_relation(name, arity);
            }
        }
        match semantics {
            Semantics::Inflationary => {
                let mut engine = eval::Engine::new(self, &base);
                engine.run_rules(&self.rules.iter().collect::<Vec<_>>());
                Some(engine.into_structure(base))
            }
            Semantics::Stratified => {
                let mut engine = eval::Engine::new(self, &base);
                for stratum in self.stratify() {
                    engine.run_rules(&stratum);
                }
                Some(engine.into_structure(base))
            }
            Semantics::Partial => {
                let mut seen: HashSet<String> = HashSet::new();
                let mut state = base.clone();
                for _ in 0..max_steps {
                    let mut next = base.clone();
                    {
                        let mut engine = eval::Engine::new(self, &state);
                        for rule in &self.rules {
                            for tuple in engine.rule_heads(rule) {
                                next.insert(&rule.head_relation, &tuple);
                            }
                        }
                    }
                    if next == state {
                        return Some(next);
                    }
                    if !seen.insert(next.fingerprint()) {
                        // The iteration entered a cycle that is not a fixpoint.
                        return None;
                    }
                    state = next;
                }
                None
            }
        }
    }

    /// The goal atom this program answers: the explicit [`Program::goal`]
    /// annotation if present, otherwise the fully free atom over the output
    /// relation (every output tuple is an answer).
    pub fn goal_atom(&self) -> Goal {
        self.goal.clone().unwrap_or_else(|| {
            Goal::all_free(&self.output, self.head_arity(&self.output).unwrap_or(0))
        })
    }

    /// Goal-directed evaluation: answers `goal` on `input`, deriving only
    /// demanded facts where possible. Attempts the magic-set rewrite
    /// ([`magic::rewrite`]) and runs the rewritten program through the same
    /// semi-naive engine as [`Program::run`]; whenever the rewrite refuses
    /// (partial semantics, non-monotone inflationary use, unstratifiable
    /// rewrite, unsafe rules, `TOPO_DEMAND=off`, …) it evaluates bottom-up
    /// instead. Either way the result is the sorted goal-matching tuples of
    /// the goal relation — bit-for-bit what [`Program::run`] plus a goal
    /// lookup returns (`tests/demand_equivalence.rs`). `None` only in
    /// partial-fixpoint mode when no fixpoint is reached within `max_steps`.
    ///
    /// ```
    /// use topo_relational::{Goal, Literal, Program, Rule, Semantics, Structure, Term};
    ///
    /// let mut graph = Structure::new(4);
    /// for (a, b) in [(0, 1), (1, 2), (2, 3)] {
    ///     graph.insert("E", &[a, b]);
    /// }
    /// let v = Term::Var;
    /// let program = Program::new("T")
    ///     .rule(Rule::new(
    ///         "T",
    ///         vec![v(0), v(1)],
    ///         vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
    ///     ))
    ///     .rule(Rule::new(
    ///         "T",
    ///         vec![v(0), v(2)],
    ///         vec![
    ///             Literal::Pos { relation: "T".into(), terms: vec![v(0), v(1)] },
    ///             Literal::Pos { relation: "E".into(), terms: vec![v(1), v(2)] },
    ///         ],
    ///     ));
    /// // What does 2 reach? Only the demanded slice of T is derived.
    /// let goal = Goal::new("T", vec![Term::Const(2), v(0)]);
    /// let answers = program.run_goal(&goal, &graph, Semantics::Inflationary, usize::MAX);
    /// assert_eq!(answers.unwrap(), vec![vec![2, 3]]);
    /// ```
    pub fn run_goal(
        &self,
        goal: &Goal,
        input: &Structure,
        semantics: Semantics,
        max_steps: usize,
    ) -> Option<Vec<Vec<u32>>> {
        let rewritten = if !magic::demand_enabled() {
            Err(magic::FallbackReason::Disabled)
        } else if goal
            .terms
            .iter()
            .any(|t| matches!(t, Term::Const(c) if *c as usize >= input.domain_size()))
        {
            // A magic seed outside the domain cannot be inserted; bottom-up
            // evaluation simply finds no matching tuple.
            Err(magic::FallbackReason::GoalOutOfDomain)
        } else {
            magic::rewrite(self, goal, semantics)
        };
        match rewritten {
            Ok(m) => m
                .program
                .run(input, semantics, max_steps)
                .map(|result| magic::goal_answers(&result, &m.goal_relation, goal)),
            Err(_) => self
                .run(input, semantics, max_steps)
                .map(|result| magic::goal_answers(&result, &goal.relation, goal)),
        }
    }

    /// Goal-directed Boolean evaluation: does [`Program::goal_atom`] have an
    /// answer on `input`? A diverging partial fixpoint counts as `false`,
    /// matching the "output non-empty" convention of [`Program::eval_boolean`].
    pub fn run_goal_boolean(&self, input: &Structure, semantics: Semantics) -> bool {
        self.run_goal(&self.goal_atom(), input, semantics, usize::MAX)
            .map(|answers| !answers.is_empty())
            .unwrap_or(false)
    }

    /// Runs the program with inflationary semantics and reports whether the
    /// output relation is non-empty.
    pub fn eval_boolean(&self, input: &Structure) -> bool {
        let result = self
            .run(input, Semantics::Inflationary, usize::MAX)
            .expect("inflationary evaluation always terminates");
        result.relation(&self.output).map(|r| !r.is_empty()).unwrap_or(false)
    }

    /// Runs the program with stratified semantics and reports whether the
    /// output relation is non-empty.
    pub fn eval_boolean_stratified(&self, input: &Structure) -> bool {
        let result = self
            .run(input, Semantics::Stratified, usize::MAX)
            .expect("stratified evaluation always terminates");
        result.relation(&self.output).map(|r| !r.is_empty()).unwrap_or(false)
    }

    /// Partitions the rules into strata: a rule goes into the first stratum in
    /// which every relation it negates or counts is already fully defined
    /// (i.e. no later stratum has a rule with that head).
    ///
    /// Shared by the delta-driven engine and the frozen `datalog::naive` oracle:
    /// stratification decides *which* rules run against *what*, not how a
    /// round is evaluated.
    ///
    /// # Panics
    /// Panics if the program has negation (or counting) through recursion,
    /// i.e. cannot be stratified.
    fn stratify(&self) -> Vec<Vec<&Rule>> {
        match self.try_stratify() {
            Ok(strata) => strata,
            Err(relation) => {
                panic!("program is not stratifiable (negation through recursion on {relation})")
            }
        }
    }

    /// Can the program be stratified? The non-panicking face of
    /// stratification; the magic-set rewrite uses it to decide statically
    /// whether stratified goal-directed evaluation is sound or must fall
    /// back to the bottom-up path.
    pub fn is_stratifiable(&self) -> bool {
        self.try_stratify().is_ok()
    }

    /// Stratification as a `Result`: the strata, or the head relation on
    /// which negation (or counting) through recursion was detected.
    fn try_stratify(&self) -> Result<Vec<Vec<&Rule>>, String> {
        let derived = self.derived_relations();
        // Stratum number per derived relation, computed by iterating the
        // standard constraints to a fixpoint (keys borrowed from the rules).
        let mut stratum: HashMap<&str, usize> =
            derived.iter().map(|&name| (name, 0usize)).collect();
        let max_stratum = derived.len() + 1;
        loop {
            let mut changed = false;
            for rule in &self.rules {
                let head_level = stratum[rule.head_relation.as_str()];
                let mut required = head_level;
                for literal in &rule.body {
                    match literal {
                        Literal::Pos { relation, .. } => {
                            if let Some(&level) = stratum.get(relation.as_str()) {
                                required = required.max(level);
                            }
                        }
                        Literal::Neg { relation, .. } | Literal::Count { relation, .. } => {
                            if let Some(&level) = stratum.get(relation.as_str()) {
                                required = required.max(level + 1);
                            }
                        }
                        Literal::Eq(..) | Literal::Neq(..) => {}
                    }
                }
                if required > head_level {
                    if required >= max_stratum {
                        return Err(rule.head_relation.clone());
                    }
                    stratum.insert(rule.head_relation.as_str(), required);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let levels = stratum.values().copied().max().unwrap_or(0);
        let mut out: Vec<Vec<&Rule>> = vec![Vec::new(); levels + 1];
        for rule in &self.rules {
            out[stratum[rule.head_relation.as_str()]].push(rule);
        }
        Ok(out)
    }

    fn head_arity(&self, name: &str) -> Option<usize> {
        self.rules.iter().find(|r| r.head_relation == name).map(|r| r.head_terms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(i)
    }

    /// A directed path 0 -> 1 -> 2 -> 3 plus an isolated element 4.
    fn path() -> Structure {
        let mut s = Structure::new(5);
        for i in 0..3u32 {
            s.insert("E", &[i, i + 1]);
        }
        s
    }

    fn transitive_closure() -> Program {
        Program::new("T")
            .rule(Rule::new(
                "T",
                vec![v(0), v(1)],
                vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
            ))
            .rule(Rule::new(
                "T",
                vec![v(0), v(2)],
                vec![
                    Literal::Pos { relation: "T".into(), terms: vec![v(0), v(1)] },
                    Literal::Pos { relation: "E".into(), terms: vec![v(1), v(2)] },
                ],
            ))
    }

    #[test]
    fn transitive_closure_inflationary() {
        let result =
            transitive_closure().run(&path(), Semantics::Inflationary, usize::MAX).unwrap();
        let t = result.relation("T").unwrap();
        assert_eq!(t.len(), 6);
        assert!(t.contains(&[0, 3]));
        assert!(!t.contains(&[3, 0]));
    }

    #[test]
    fn boolean_output() {
        // Is there a path from 0 to 3?
        let program = transitive_closure().rule(Rule::new(
            "Answer",
            vec![],
            vec![Literal::Pos {
                relation: "T".into(),
                terms: vec![Term::Const(0), Term::Const(3)],
            }],
        ));
        let program = Program { output: "Answer".into(), ..program };
        assert!(program.eval_boolean(&path()));

        let mut broken = path();
        broken.remove_relation("E");
        broken.insert("E", &[0, 1]);
        assert!(!program.eval_boolean(&broken));
    }

    #[test]
    fn negation_and_comparisons() {
        // Sink(x) <- Node(x), not HasOut(x);  HasOut(x) <- E(x, y).
        let mut s = path();
        for i in 0..5u32 {
            s.insert("Node", &[i]);
        }
        let program = Program::new("Sink")
            .rule(Rule::new(
                "HasOut",
                vec![v(0)],
                vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
            ))
            .rule(Rule::new(
                "Sink",
                vec![v(0)],
                vec![
                    Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
                    Literal::Neg { relation: "HasOut".into(), terms: vec![v(0)] },
                ],
            ));
        // Stratified semantics computes HasOut completely before negating it.
        let result = program.run(&s, Semantics::Stratified, usize::MAX).unwrap();
        let sinks = result.relation("Sink").unwrap().sorted_tuples();
        assert_eq!(sinks, vec![vec![3], vec![4]]);
        // Simultaneous inflationary firing instead sees the (still empty)
        // HasOut in the first round and keeps everything it derived.
        let result = program.run(&s, Semantics::Inflationary, usize::MAX).unwrap();
        assert_eq!(result.relation("Sink").unwrap().len(), 5);
    }

    #[test]
    fn stratification_orders_negation_correctly() {
        // Unreachable(x) <- Node(x), not Reach(x); Reach via recursion from 0.
        let mut s = path();
        for i in 0..5u32 {
            s.insert("Node", &[i]);
        }
        let program = Program::new("Unreachable")
            .rule(Rule::new(
                "Reach",
                vec![Term::Const(0)],
                vec![Literal::Pos { relation: "Node".into(), terms: vec![Term::Const(0)] }],
            ))
            .rule(Rule::new(
                "Reach",
                vec![v(1)],
                vec![
                    Literal::Pos { relation: "Reach".into(), terms: vec![v(0)] },
                    Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] },
                ],
            ))
            .rule(Rule::new(
                "Unreachable",
                vec![v(0)],
                vec![
                    Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
                    Literal::Neg { relation: "Reach".into(), terms: vec![v(0)] },
                ],
            ));
        let result = program.run(&s, Semantics::Stratified, usize::MAX).unwrap();
        assert_eq!(result.relation("Unreachable").unwrap().sorted_tuples(), vec![vec![4]]);
        assert!(program.eval_boolean_stratified(&s));
    }

    #[test]
    #[should_panic]
    fn unstratifiable_program_panics() {
        let mut s = Structure::new(2);
        s.insert("Node", &[0]);
        let program = Program::new("P")
            .rule(Rule::new(
                "P",
                vec![v(0)],
                vec![
                    Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
                    Literal::Neg { relation: "Q".into(), terms: vec![v(0)] },
                ],
            ))
            .rule(Rule::new(
                "Q",
                vec![v(0)],
                vec![
                    Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
                    Literal::Neg { relation: "P".into(), terms: vec![v(0)] },
                ],
            ));
        let _ = program.run(&s, Semantics::Stratified, usize::MAX);
    }

    #[test]
    fn counting_parity() {
        // Is the number of elements of U even? (The classical query fixpoint
        // alone cannot express.)
        let mut s = Structure::new(6);
        s.add_numeric_relations();
        for i in [1u32, 3, 4, 5] {
            s.insert("U", &[i]);
        }
        let program = Program::new("Answer").rule(Rule::new(
            "Answer",
            vec![],
            vec![
                Literal::Count {
                    relation: "U".into(),
                    terms: vec![v(0)],
                    counted: vec![0],
                    result: v(1),
                },
                Literal::Pos { relation: "Even".into(), terms: vec![v(1)] },
            ],
        ));
        assert!(program.eval_boolean(&s));
        s.insert("U", &[0]);
        assert!(!program.eval_boolean(&s));
    }

    #[test]
    fn count_with_bound_result() {
        let mut s = Structure::new(4);
        s.add_numeric_relations();
        s.insert("E", &[0, 1]);
        s.insert("E", &[0, 2]);
        s.insert("E", &[1, 2]);
        // OutDeg2(x) <- #{y : E(x,y)} = 2.
        let program = Program::new("OutDeg2").rule(Rule::new(
            "OutDeg2",
            vec![v(0)],
            vec![
                Literal::Pos { relation: "E".into(), terms: vec![v(0), v(2)] },
                Literal::Count {
                    relation: "E".into(),
                    terms: vec![v(0), v(1)],
                    counted: vec![1],
                    result: Term::Const(2),
                },
            ],
        ));
        let result = program.run(&s, Semantics::Inflationary, usize::MAX).unwrap();
        assert_eq!(result.relation("OutDeg2").unwrap().sorted_tuples(), vec![vec![0]]);
    }

    #[test]
    fn count_over_derived_relation_reevaluates() {
        // Deg(x, n) <- Node(x), #{y : T(x, y)} = n with T growing by
        // recursion: a counting literal over a relation being derived is not
        // delta-rewritable, so this exercises the full-re-evaluation fallback.
        // Inflationary semantics accumulates one Deg fact per intermediate
        // count, which pins the exact per-round states.
        let mut s = Structure::new(5);
        for i in 0..3u32 {
            s.insert("E", &[i, i + 1]);
        }
        for i in 0..4u32 {
            s.insert("Node", &[i]);
        }
        let program = Program::new("Deg")
            .rule(Rule::new(
                "T",
                vec![v(0), v(1)],
                vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
            ))
            .rule(Rule::new(
                "T",
                vec![v(0), v(2)],
                vec![
                    Literal::Pos { relation: "T".into(), terms: vec![v(0), v(1)] },
                    Literal::Pos { relation: "E".into(), terms: vec![v(1), v(2)] },
                ],
            ))
            .rule(Rule::new(
                "Deg",
                vec![v(0), v(1)],
                vec![
                    Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
                    Literal::Count {
                        relation: "T".into(),
                        terms: vec![v(0), v(2)],
                        counted: vec![2],
                        result: v(1),
                    },
                ],
            ));
        let result = program.run(&s, Semantics::Inflationary, usize::MAX).unwrap();
        let deg = result.relation("Deg").unwrap();
        // Node 0 reaches 1, then 2, then 3: counts 0 (round 0), 1, 2, 3 all
        // get recorded as the fixpoint inflates.
        for n in 0..=3u32 {
            assert!(deg.contains(&[0, n]), "missing Deg(0, {n})");
        }
        assert!(deg.contains(&[3, 0]));
        assert!(!deg.contains(&[3, 1]));
    }

    #[test]
    fn repeated_variables_and_constants_in_atoms() {
        // Loop(x) <- E(x, x); Hub(x) <- E(x, 2), E(2, x): repeated variables
        // within an atom and constant key positions must survive the
        // compiled join-key split.
        let mut s = Structure::new(4);
        s.insert("E", &[0, 0]);
        s.insert("E", &[0, 2]);
        s.insert("E", &[2, 0]);
        s.insert("E", &[1, 2]);
        let program = Program::new("Loop")
            .rule(Rule::new(
                "Loop",
                vec![v(0)],
                vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(0)] }],
            ))
            .rule(Rule::new(
                "Hub",
                vec![v(0)],
                vec![
                    Literal::Pos { relation: "E".into(), terms: vec![v(0), Term::Const(2)] },
                    Literal::Pos { relation: "E".into(), terms: vec![Term::Const(2), v(0)] },
                ],
            ));
        let result = program.run(&s, Semantics::Inflationary, usize::MAX).unwrap();
        assert_eq!(result.relation("Loop").unwrap().sorted_tuples(), vec![vec![0]]);
        assert_eq!(result.relation("Hub").unwrap().sorted_tuples(), vec![vec![0]]);
    }

    #[test]
    fn partial_fixpoint_reaches_stable_state() {
        // Partial fixpoint of the transitive-closure rules also converges
        // (each step recomputes a larger relation until stable).
        let result = transitive_closure().run(&path(), Semantics::Partial, 100).unwrap();
        assert_eq!(result.relation("T").unwrap().len(), 6);
    }

    #[test]
    fn partial_fixpoint_detects_divergence() {
        // Flip(x) <- Node(x), not Flip(x): oscillates, never converges.
        let mut s = Structure::new(2);
        s.insert("Node", &[0]);
        let program = Program::new("Flip").rule(Rule::new(
            "Flip",
            vec![v(0)],
            vec![
                Literal::Pos { relation: "Node".into(), terms: vec![v(0)] },
                Literal::Neg { relation: "Flip".into(), terms: vec![v(0)] },
            ],
        ));
        assert!(program.run(&s, Semantics::Partial, 50).is_none());
        // The inflationary semantics of the same rules converges.
        assert!(program.run(&s, Semantics::Inflationary, usize::MAX).is_some());
    }

    #[test]
    #[should_panic]
    fn unsafe_rule_panics() {
        let program = Program::new("Bad").rule(Rule::new(
            "Bad",
            vec![v(7)],
            vec![Literal::Pos { relation: "E".into(), terms: vec![v(0), v(1)] }],
        ));
        let _ = program.eval_boolean(&path());
    }
}
