//! Finite relational structures and the invariant-side query languages.
//!
//! The topological invariant of a spatial database is an ordinary finite
//! relational structure, so the languages the paper studies on the invariant
//! side are classical: first-order logic (`FO_inv`), inflationary fixpoint /
//! inflationary Datalog with negation (*fixpoint*), its extension with
//! counting (*fixpoint+counting*), and partial-fixpoint iteration (*while*).
//! This crate provides all of them, independently of anything spatial:
//!
//! * [`Structure`] — a finite structure: a domain `{0, …, n-1}` plus named
//!   relations of fixed arity.
//! * [`fo`] — first-order formulas and their evaluation.
//! * [`datalog`] — inflationary Datalog¬ programs (the fixpoint queries),
//!   with counting literals (fixpoint+counting) and a partial-fixpoint mode
//!   (the while queries).
//! * [`isomorphism`] — isomorphism testing between structures, used to
//!   cross-validate the canonical forms computed by `topo-invariant`.
//! * [`games`] — Ehrenfeucht–Fraïssé games: `FO_r` equivalence of two finite
//!   structures, used by the Section 4 translation machinery and its tests.
//!
//! These are the target languages of the paper's translations: fixpoint and
//! fixpoint+counting receive the Theorem 4.1/4.2 translations (with
//! fixpoint+counting capturing PTIME on invariants via Theorem 3.4's order
//! construction), `FO_inv` receives the single-region Theorem 4.9
//! translation, and the games implement the `FO_r`-equivalence tests behind
//! Lemmas 4.6–4.7.

pub mod datalog;
pub mod fo;
pub mod games;
pub mod isomorphism;
pub mod structure;

pub use datalog::magic::{FallbackReason, MagicProgram};
pub use datalog::{Goal, Literal, Program, Rule, Semantics};
pub use fo::{Formula, Term};
pub use games::fo_equivalent;
pub use isomorphism::{find_isomorphism, isomorphic, isomorphic_with_keys};
pub use structure::Structure;
