//! Finite relational structures.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A finite relational structure: a domain `{0, …, n-1}` and a family of
/// named relations, each with a fixed arity.
///
/// Relations are stored as hash sets of tuples; relation names are kept in a
/// sorted map so that iteration order (and therefore canonical textual forms)
/// is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Structure {
    domain_size: usize,
    relations: BTreeMap<String, Relation>,
}

/// A single relation of a structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Vec<u32>>,
}

impl Relation {
    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[u32]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterates over the tuples in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.tuples.iter()
    }

    /// The tuples in sorted order (deterministic).
    pub fn sorted_tuples(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = self.tuples.iter().cloned().collect();
        out.sort();
        out
    }
}

impl Structure {
    /// Creates a structure with the given domain size and no relations.
    pub fn new(domain_size: usize) -> Self {
        Structure { domain_size, relations: BTreeMap::new() }
    }

    /// The domain size `n`; elements are `0, …, n-1`.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Grows the domain to at least `size` elements.
    pub fn ensure_domain(&mut self, size: usize) {
        self.domain_size = self.domain_size.max(size);
    }

    /// Declares a relation with the given arity (idempotent).
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn add_relation(&mut self, name: &str, arity: usize) {
        let entry = self
            .relations
            .entry(name.to_string())
            .or_insert_with(|| Relation { arity, tuples: HashSet::new() });
        assert_eq!(entry.arity, arity, "relation {name} redeclared with different arity");
    }

    /// Inserts a tuple, declaring the relation if necessary.
    ///
    /// # Panics
    /// Panics if the tuple's length does not match the relation's arity or if
    /// an element is outside the domain.
    pub fn insert(&mut self, name: &str, tuple: &[u32]) {
        for &x in tuple {
            assert!(
                (x as usize) < self.domain_size,
                "element {x} outside domain of size {}",
                self.domain_size
            );
        }
        let entry = self
            .relations
            .entry(name.to_string())
            .or_insert_with(|| Relation { arity: tuple.len(), tuples: HashSet::new() });
        assert_eq!(entry.arity, tuple.len(), "tuple arity mismatch for relation {name}");
        entry.tuples.insert(tuple.to_vec());
    }

    /// Membership test; unknown relations contain nothing.
    pub fn contains(&self, name: &str, tuple: &[u32]) -> bool {
        self.relations.get(name).is_some_and(|r| r.contains(tuple))
    }

    /// The relation with the given name, if declared.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Arity of a relation, if declared.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.relations.get(name).map(|r| r.arity)
    }

    /// Names of all declared relations, in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Removes a relation entirely (used by the Datalog engine to reset
    /// derived relations).
    pub fn remove_relation(&mut self, name: &str) {
        self.relations.remove(name);
    }

    /// The elements of the domain.
    pub fn domain(&self) -> impl Iterator<Item = u32> {
        0..self.domain_size as u32
    }

    /// A deterministic textual fingerprint of the structure (domain size plus
    /// all relations with sorted tuples). Two structures have equal
    /// fingerprints iff they are identical (not merely isomorphic).
    pub fn fingerprint(&self) -> String {
        let mut out = format!("domain={};", self.domain_size);
        for (name, rel) in &self.relations {
            out.push_str(name);
            out.push('/');
            out.push_str(&rel.arity.to_string());
            out.push('{');
            for tuple in rel.sorted_tuples() {
                out.push('(');
                for (i, x) in tuple.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&x.to_string());
                }
                out.push(')');
            }
            out.push('}');
        }
        out
    }

    /// Adds the standard arithmetic scaffolding on a numeric copy of the
    /// domain: elements `0..domain_size` get relations `Zero`, `MaxNum`,
    /// `Succ`, `NumLess`, `Even`. This is the auxiliary ordered domain that
    /// fixpoint+counting queries count into. `NumLess` is quadratic in the
    /// domain; programs that only need to walk the order should prepare
    /// their input with [`Structure::add_successor_relations`] instead.
    pub fn add_numeric_relations(&mut self) {
        let n = self.domain_size;
        self.add_successor_relations();
        self.add_relation("NumLess", 2);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                self.insert("NumLess", &[i, j]);
            }
        }
    }

    /// Adds the linear-size slice of the numeric scaffolding: `Zero`,
    /// `MaxNum`, `Succ` and `Even`, without the quadratic `NumLess`. This is
    /// the Theorem 3.4 auxiliary successor structure — enough for programs
    /// that walk the domain in order (the query library's linear
    /// connectivity derivation seeds its component walk from `Zero`/`Succ`)
    /// and for parity tests via `Even`; `O(domain)` tuples total.
    pub fn add_successor_relations(&mut self) {
        let n = self.domain_size;
        self.add_relation("Zero", 1);
        self.add_relation("MaxNum", 1);
        self.add_relation("Succ", 2);
        self.add_relation("Even", 1);
        if n == 0 {
            return;
        }
        self.insert("Zero", &[0]);
        self.insert("MaxNum", &[(n - 1) as u32]);
        for i in 0..n as u32 {
            if i % 2 == 0 {
                self.insert("Even", &[i]);
            }
            if (i as usize) + 1 < n {
                self.insert("Succ", &[i, i + 1]);
            }
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "structure with {} elements", self.domain_size)?;
        for (name, rel) in &self.relations {
            writeln!(f, "  {name}/{} ({} tuples)", rel.arity, rel.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = Structure::new(3);
        s.insert("E", &[0, 1]);
        s.insert("E", &[1, 2]);
        assert!(s.contains("E", &[0, 1]));
        assert!(!s.contains("E", &[2, 1]));
        assert!(!s.contains("F", &[0]));
        assert_eq!(s.arity("E"), Some(2));
        assert_eq!(s.tuple_count(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut s = Structure::new(3);
        s.insert("E", &[0, 1]);
        s.insert("E", &[0]);
    }

    #[test]
    #[should_panic]
    fn out_of_domain_panics() {
        let mut s = Structure::new(2);
        s.insert("E", &[5, 0]);
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        let mut a = Structure::new(2);
        a.insert("R", &[0]);
        let mut b = Structure::new(2);
        b.insert("R", &[0]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.insert("R", &[1]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn numeric_relations() {
        let mut s = Structure::new(4);
        s.add_numeric_relations();
        assert!(s.contains("Zero", &[0]));
        assert!(s.contains("MaxNum", &[3]));
        assert!(s.contains("Succ", &[1, 2]));
        assert!(s.contains("NumLess", &[0, 3]));
        assert!(s.contains("Even", &[2]));
        assert!(!s.contains("Even", &[1]));
        assert_eq!(s.relation("NumLess").unwrap().len(), 6);
    }

    #[test]
    fn sorted_tuples_deterministic() {
        let mut s = Structure::new(3);
        s.insert("E", &[2, 1]);
        s.insert("E", &[0, 1]);
        assert_eq!(s.relation("E").unwrap().sorted_tuples(), vec![vec![0, 1], vec![2, 1]]);
    }
}
