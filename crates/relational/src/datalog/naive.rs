//! The frozen pre-semi-naive Datalog evaluator — the reference oracle.
//!
//! This module preserves, bit for bit, the rule evaluation that shipped
//! before the engine was rebuilt around delta-driven (semi-naive) iteration:
//! every round re-evaluates every rule against the full pre-round state, one
//! nested scan per positive literal, with `HashMap` bindings cloned at every
//! extension. It exists only behind the `naive-reference` feature, as the
//! oracle that `tests/datalog_equivalence.rs` and the bench runner compare
//! the delta-driven engine against — the same pattern the arrangement
//! (`topo-arrangement::naive`) and the canonicalisation
//! (`topo-invariant`'s `canonical::naive`) use for their frozen reference
//! paths.
//!
//! Stratification ([`Program::stratify`]) and the base-state setup are shared
//! with the live engine: they define *which* rules run against *what*, not
//! how a round is evaluated, so sharing them keeps the two evaluators
//! comparable without duplicating semantics-defining code.
//!
//! Do not optimise this module; its value is that it never changes.

use super::{Literal, Program, Rule, Semantics};
use crate::fo::Term;
use crate::structure::Structure;
use std::collections::{HashMap, HashSet};

/// Runs `program` on `input` with the frozen naive evaluator. Same contract
/// as [`Program::run`]: `None` only in partial-fixpoint mode when no fixpoint
/// is reached within `max_steps`.
pub fn run(
    program: &Program,
    input: &Structure,
    semantics: Semantics,
    max_steps: usize,
) -> Option<Structure> {
    let derived = program.derived_relations();
    // The base state: input relations with the derived relations emptied.
    let mut base = input.clone();
    for &name in &derived {
        base.remove_relation(name);
        if let Some(arity) = program.head_arity(name) {
            base.add_relation(name, arity);
        }
    }
    match semantics {
        Semantics::Inflationary => {
            let mut state = base;
            run_inflationary(program, &mut state, &program.rules.iter().collect::<Vec<_>>());
            Some(state)
        }
        Semantics::Stratified => {
            let mut state = base;
            for stratum in program.stratify() {
                run_inflationary(program, &mut state, &stratum);
            }
            Some(state)
        }
        Semantics::Partial => {
            let mut seen: HashSet<String> = HashSet::new();
            let mut state = base.clone();
            for _ in 0..max_steps {
                let mut next = base.clone();
                for rule in &program.rules {
                    for tuple in rule_heads(rule, &state) {
                        next.insert(&rule.head_relation, &tuple);
                    }
                }
                if next == state {
                    return Some(next);
                }
                if !seen.insert(next.fingerprint()) {
                    // The iteration entered a cycle that is not a fixpoint.
                    return None;
                }
                state = next;
            }
            None
        }
    }
}

/// Runs `program` inflationarily with the frozen evaluator and reports
/// whether the output relation is non-empty.
pub fn eval_boolean(program: &Program, input: &Structure) -> bool {
    let result = run(program, input, Semantics::Inflationary, usize::MAX)
        .expect("inflationary evaluation always terminates");
    result.relation(&program.output).map(|r| !r.is_empty()).unwrap_or(false)
}

/// Applies the given rules inflationarily until nothing new is derived.
///
/// Simultaneous firing against the pre-round state needs no snapshot clone:
/// all head tuples of the round are derived from the unmodified state first,
/// then inserted.
fn run_inflationary(_program: &Program, state: &mut Structure, rules: &[&Rule]) {
    let mut round: Vec<(&str, Vec<Vec<u32>>)> = Vec::with_capacity(rules.len());
    loop {
        round.clear();
        round.extend(
            rules.iter().map(|rule| (rule.head_relation.as_str(), rule_heads(rule, state))),
        );
        let mut changed = false;
        for (head, tuples) in &round {
            for tuple in tuples {
                if !state.contains(head, tuple) {
                    state.insert(head, tuple);
                    changed = true;
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// All head tuples derivable from one rule against a snapshot.
fn rule_heads(rule: &Rule, snapshot: &Structure) -> Vec<Vec<u32>> {
    let mut bindings: Vec<HashMap<u32, u32>> = vec![HashMap::new()];
    for literal in &rule.body {
        bindings = apply_literal(literal, &bindings, snapshot);
        if bindings.is_empty() {
            return Vec::new();
        }
    }
    let mut out = Vec::new();
    for binding in &bindings {
        let tuple: Vec<u32> = rule
            .head_terms
            .iter()
            .map(|t| {
                value(t, binding).unwrap_or_else(|| {
                    panic!(
                        "unsafe rule: head variable of {} not bound by the body",
                        rule.head_relation
                    )
                })
            })
            .collect();
        out.push(tuple);
    }
    out
}

fn value(term: &Term, binding: &HashMap<u32, u32>) -> Option<u32> {
    match term {
        Term::Const(c) => Some(*c),
        Term::Var(v) => binding.get(v).copied(),
    }
}

fn apply_literal(
    literal: &Literal,
    bindings: &[HashMap<u32, u32>],
    snapshot: &Structure,
) -> Vec<HashMap<u32, u32>> {
    let mut out = Vec::new();
    match literal {
        Literal::Pos { relation, terms } => {
            let Some(rel) = snapshot.relation(relation) else {
                return Vec::new();
            };
            for binding in bindings {
                for tuple in rel.iter() {
                    if let Some(extended) = unify(terms, tuple, binding) {
                        out.push(extended);
                    }
                }
            }
        }
        Literal::Neg { relation, terms } => {
            for binding in bindings {
                let tuple: Vec<u32> = terms
                    .iter()
                    .map(|t| {
                        value(t, binding)
                            .expect("unsafe rule: negative literal with unbound variable")
                    })
                    .collect();
                if !snapshot.contains(relation, &tuple) {
                    out.push(binding.clone());
                }
            }
        }
        Literal::Eq(a, b) | Literal::Neq(a, b) => {
            let want_equal = matches!(literal, Literal::Eq(..));
            for binding in bindings {
                let va = value(a, binding).expect("unsafe rule: comparison with unbound variable");
                let vb = value(b, binding).expect("unsafe rule: comparison with unbound variable");
                if (va == vb) == want_equal {
                    out.push(binding.clone());
                }
            }
        }
        Literal::Count { relation, terms, counted, result } => {
            for binding in bindings {
                let count = count_matches(relation, terms, counted, binding, snapshot);
                match value(result, binding) {
                    Some(expected) => {
                        if expected as usize == count {
                            out.push(binding.clone());
                        }
                    }
                    None => {
                        if let Term::Var(v) = result {
                            let mut extended = binding.clone();
                            extended.insert(*v, count as u32);
                            out.push(extended);
                        } else {
                            unreachable!("constant result term is always bound");
                        }
                    }
                }
            }
        }
    }
    out
}

fn count_matches(
    relation: &str,
    terms: &[Term],
    counted: &[u32],
    binding: &HashMap<u32, u32>,
    snapshot: &Structure,
) -> usize {
    let Some(rel) = snapshot.relation(relation) else {
        return 0;
    };
    let mut witnesses: HashSet<Vec<u32>> = HashSet::new();
    for tuple in rel.iter() {
        if let Some(extended) = unify(terms, tuple, binding) {
            let witness: Vec<u32> = counted
                .iter()
                .map(|v| {
                    *extended.get(v).expect("counted variable does not occur in the counted atom")
                })
                .collect();
            witnesses.insert(witness);
        }
    }
    witnesses.len()
}

/// Tries to extend `binding` so the atom's terms match `tuple`.
fn unify(terms: &[Term], tuple: &[u32], binding: &HashMap<u32, u32>) -> Option<HashMap<u32, u32>> {
    if terms.len() != tuple.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (term, &value) in terms.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(&bound) => {
                    if bound != value {
                        return None;
                    }
                }
                None => {
                    extended.insert(*v, value);
                }
            },
        }
    }
    Some(extended)
}
