//! Magic-set rewriting: goal-directed evaluation on top of the semi-naive
//! engine.
//!
//! Bottom-up evaluation derives *every* fact of every derived relation; a
//! goal atom such as `Reach(17, y)` only needs the facts reachable from the
//! binding `17`. The classical cure is the magic-set transformation: adorn
//! each derived relation with a bound/free pattern per argument position,
//! thread the bindings through rule bodies left to right (sideways
//! information passing), and guard every adorned rule with a *magic*
//! predicate holding exactly the bindings that are actually demanded. The
//! rewritten program is ordinary Datalog, so the existing delta-driven
//! engine runs it unchanged — the rewrite buys demand-driven behaviour
//! without a second evaluator.
//!
//! # Scope and fallback
//!
//! The rewrite is *exact* on the fragment it accepts and refuses everything
//! else up front ([`rewrite`] returns a [`FallbackReason`]); the caller
//! ([`Program::run_goal`]) then answers the goal through the untouched
//! bottom-up path, so a fallback can reorder nothing and break nothing:
//!
//! * **Partial fixpoint** re-computes derived relations from scratch every
//!   round; restricting derivations changes the per-round states and hence
//!   possibly the fixpoint, so partial semantics always falls back.
//! * **Inflationary** programs are rewritten only when every negative and
//!   counting literal reads a *base* relation. Such programs are monotone in
//!   the derived relations, their inflationary fixpoint is the least
//!   fixpoint, and the standard magic correctness theorem applies. A
//!   negation or count over a derived relation makes intermediate states
//!   observable and falls back.
//! * **Stratified** programs are rewritten when the original stratifies
//!   (otherwise evaluation must keep panicking exactly like [`Program::run`])
//!   *and* the rewritten program stratifies too. Negated and counted derived
//!   relations are *not* adorned: restricting them by demand would read a
//!   partial complement, and routing demand through negation is what makes
//!   naive magic rewrites unstratifiable. Instead their original rules (and
//!   transitively everything those depend on) ride along verbatim, so a
//!   stratum boundary below the adorned rules computes exactly the bottom-up
//!   value before it is read negatively or counted. Demand pruning applies
//!   to the positive part reachable from the goal — which is where bound
//!   arguments restrict anything in the first place.
//! * Rules that are not statically range-restricted fall back, so the
//!   engine's deferred unsafe-rule panics fire (or stay latent) exactly as
//!   they would bottom-up. Goal constants outside the input domain, arity
//!   mismatches between a goal and its relation, and relation names that
//!   collide with the rewrite's `@` mangling all fall back the same way.
//!
//! `tests/demand_equivalence.rs` proves `run_goal` bit-for-bit equal to
//! `run` + goal lookup on the query library and on random template programs
//! (including programs built to be rejected into the fallback); DESIGN.md,
//! "Demand-driven evaluation" documents the transformation.

use super::{Literal, Program, Rule, Semantics};
use crate::fo::Term;
use crate::structure::Structure;
use std::collections::{HashMap, HashSet, VecDeque};

/// A goal atom: the tuple pattern the caller wants answered. `Const`
/// positions are bound (the rewrite seeds demand with them), `Var` positions
/// are free; a repeated variable additionally constrains matching tuples to
/// be equal at those positions (enforced by [`Goal::matches`], not by the
/// rewrite, which conservatively treats repeated variables as free).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Goal {
    /// Relation the goal asks about.
    pub relation: String,
    /// One term per argument position.
    pub terms: Vec<Term>,
}

impl Goal {
    /// A goal over `relation` with the given terms.
    pub fn new(relation: &str, terms: Vec<Term>) -> Self {
        Goal { relation: relation.to_string(), terms }
    }

    /// The Boolean goal `relation()` — the shape of every query-library
    /// program's `Answer` atom.
    pub fn nullary(relation: &str) -> Self {
        Goal::new(relation, Vec::new())
    }

    /// The fully free goal `relation(x0, …, xk-1)`: every tuple is an answer.
    pub fn all_free(relation: &str, arity: usize) -> Self {
        Goal::new(relation, (0..arity as u32).map(Term::Var).collect())
    }

    /// Does `tuple` match the goal pattern? Checks length, constant
    /// positions, and repeated-variable consistency.
    pub fn matches(&self, tuple: &[u32]) -> bool {
        if tuple.len() != self.terms.len() {
            return false;
        }
        let mut binding: HashMap<u32, u32> = HashMap::new();
        for (term, &value) in self.terms.iter().zip(tuple) {
            match term {
                Term::Const(c) => {
                    if *c != value {
                        return false;
                    }
                }
                Term::Var(v) => {
                    if *binding.entry(*v).or_insert(value) != value {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Why [`rewrite`] refused a (program, goal, semantics) triple. Every
/// variant routes [`Program::run_goal`] through the bottom-up path, so a
/// fallback is a performance statement, never a correctness one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// Goal-directed mode is switched off (`TOPO_DEMAND=off`).
    Disabled,
    /// Partial-fixpoint semantics observes intermediate states; restricting
    /// derivations would change them.
    PartialSemantics,
    /// Inflationary program with a negation or count over a derived
    /// relation: not monotone, intermediate states are observable.
    NonMonotoneInflationary,
    /// The original program does not stratify; the fallback reproduces the
    /// engine's stratification panic verbatim.
    UnstratifiableInput,
    /// The rewritten program does not stratify, so the classical soundness
    /// condition for magic sets with stratified negation fails.
    UnstratifiableRewrite,
    /// Some rule is not statically range-restricted; the engine's deferred
    /// unsafe-rule behaviour must be preserved exactly.
    UnsafeRule,
    /// A relation name contains `@`, which the rewrite reserves for its
    /// adorned / magic name mangling.
    NameClash,
    /// A derived relation has rules with different head arities (bottom-up
    /// evaluation panics on insertion; the fallback reproduces that).
    InconsistentArity,
    /// The goal's arity differs from its relation's head arity.
    GoalArityMismatch,
    /// The goal relation is not derived by the program; there is nothing to
    /// restrict.
    EdbGoal,
    /// A goal constant lies outside the input domain; the magic seed could
    /// not even be inserted.
    GoalOutOfDomain,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            FallbackReason::Disabled => "goal-directed mode disabled",
            FallbackReason::PartialSemantics => "partial-fixpoint semantics",
            FallbackReason::NonMonotoneInflationary => {
                "inflationary negation/count over a derived relation"
            }
            FallbackReason::UnstratifiableInput => "original program is not stratifiable",
            FallbackReason::UnstratifiableRewrite => "rewritten program is not stratifiable",
            FallbackReason::UnsafeRule => "rule is not statically range-restricted",
            FallbackReason::NameClash => "relation name contains the reserved '@'",
            FallbackReason::InconsistentArity => "derived relation with inconsistent head arities",
            FallbackReason::GoalArityMismatch => "goal arity differs from the relation's",
            FallbackReason::EdbGoal => "goal relation is not derived by the program",
            FallbackReason::GoalOutOfDomain => "goal constant outside the input domain",
        };
        f.write_str(msg)
    }
}

/// The result of a successful magic-set rewrite: the transformed program
/// (its `output` is the adorned goal relation) plus the adorned relation
/// name to read answers from.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten program; run it with the same semantics the rewrite was
    /// asked about.
    pub program: Program,
    /// Adorned copy of the goal relation holding exactly the demanded facts.
    pub goal_relation: String,
}

/// Is goal-directed evaluation enabled? Reads `TOPO_DEMAND` per call:
/// `off` / `0` / `false` (case-insensitive) disable the rewrite, everything
/// else (including the variable being unset) enables it. The switch exists
/// so the equivalence suites can run both paths in CI.
pub fn demand_enabled() -> bool {
    match std::env::var("TOPO_DEMAND") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    }
}

/// The tuples of `relation` in `result` that match `goal`, sorted. A missing
/// relation yields no answers (the bottom-up engine only interns relations
/// the program references).
pub fn goal_answers(result: &Structure, relation: &str, goal: &Goal) -> Vec<Vec<u32>> {
    match result.relation(relation) {
        Some(rel) => rel.sorted_tuples().into_iter().filter(|t| goal.matches(t)).collect(),
        None => Vec::new(),
    }
}

/// An adornment: one bound/free flag per argument position.
type Adornment = Vec<bool>;

fn adornment_suffix(ad: &Adornment) -> String {
    ad.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// `R` adorned with `ad` becomes `R@bf…`; its magic predicate is `m@R@bf…`
/// (arity = number of bound positions). Original names are checked to be
/// `@`-free, so the mangled names cannot collide with anything.
fn adorned_name(relation: &str, ad: &Adornment) -> String {
    format!("{relation}@{}", adornment_suffix(ad))
}

fn magic_name(relation: &str, ad: &Adornment) -> String {
    format!("m@{relation}@{}", adornment_suffix(ad))
}

fn term_vars(terms: &[Term]) -> impl Iterator<Item = u32> + '_ {
    terms.iter().filter_map(|t| match t {
        Term::Var(v) => Some(*v),
        Term::Const(_) => None,
    })
}

/// The adornment of an atom given the variables bound so far: constants and
/// already-bound variables are bound positions.
fn adorn(terms: &[Term], bound: &HashSet<u32>) -> Adornment {
    terms
        .iter()
        .map(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        })
        .collect()
}

fn bound_terms(terms: &[Term], ad: &Adornment) -> Vec<Term> {
    terms.iter().zip(ad).filter(|(_, &b)| b).map(|(t, _)| *t).collect()
}

/// Mirrors the engine's range-restriction rules statically: positive atoms
/// bind their variables; negative literals, comparisons and the non-counted
/// variables of a counting atom must already be bound; counted variables
/// must occur in the counted atom; a count result binds if free; counted
/// variables do not stay bound past their literal; every head variable must
/// be bound by the body. A rule the engine might reject at runtime is never
/// rewritten — the fallback preserves the deferred panic behaviour exactly.
fn rule_statically_safe(rule: &Rule) -> bool {
    let mut bound: HashSet<u32> = HashSet::new();
    for literal in &rule.body {
        match literal {
            Literal::Pos { terms, .. } => bound.extend(term_vars(terms)),
            Literal::Neg { terms, .. } => {
                if term_vars(terms).any(|v| !bound.contains(&v)) {
                    return false;
                }
            }
            Literal::Eq(a, b) | Literal::Neq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            return false;
                        }
                    }
                }
            }
            Literal::Count { terms, counted, result, .. } => {
                let atom_vars: HashSet<u32> = term_vars(terms).collect();
                if counted.iter().any(|c| !atom_vars.contains(c)) {
                    return false;
                }
                if atom_vars.iter().any(|v| !counted.contains(v) && !bound.contains(v)) {
                    return false;
                }
                if let Term::Var(v) = result {
                    bound.insert(*v);
                }
            }
        }
    }
    term_vars(&rule.head_terms).all(|v| bound.contains(&v))
}

/// Every relation name the program mentions (heads and body atoms).
fn mentioned_relations(program: &Program) -> HashSet<&str> {
    let mut out: HashSet<&str> = HashSet::new();
    for rule in &program.rules {
        out.insert(rule.head_relation.as_str());
        for literal in &rule.body {
            match literal {
                Literal::Pos { relation, .. }
                | Literal::Neg { relation, .. }
                | Literal::Count { relation, .. } => {
                    out.insert(relation.as_str());
                }
                Literal::Eq(..) | Literal::Neq(..) => {}
            }
        }
    }
    out
}

/// Computes the magic-set rewrite of `program` for `goal` under `semantics`,
/// or the [`FallbackReason`] routing the caller to bottom-up evaluation.
/// The rewritten program derives, for every demanded (relation, adornment)
/// pair, an adorned copy guarded by a magic predicate; running it under the
/// same semantics and reading [`MagicProgram::goal_relation`] yields exactly
/// the goal-matching tuples the original program derives into the goal
/// relation.
pub fn rewrite(
    program: &Program,
    goal: &Goal,
    semantics: Semantics,
) -> Result<MagicProgram, FallbackReason> {
    if semantics == Semantics::Partial {
        return Err(FallbackReason::PartialSemantics);
    }
    let derived = program.derived_relations();
    if !derived.contains(goal.relation.as_str()) {
        return Err(FallbackReason::EdbGoal);
    }
    if mentioned_relations(program).iter().any(|name| name.contains('@')) {
        return Err(FallbackReason::NameClash);
    }
    // One arity per derived relation, or bottom-up insertion panics and the
    // fallback must reproduce that.
    let mut arity: HashMap<&str, usize> = HashMap::new();
    for rule in &program.rules {
        let entry = arity.entry(rule.head_relation.as_str()).or_insert(rule.head_terms.len());
        if *entry != rule.head_terms.len() {
            return Err(FallbackReason::InconsistentArity);
        }
    }
    if arity[goal.relation.as_str()] != goal.terms.len() {
        return Err(FallbackReason::GoalArityMismatch);
    }
    if !program.rules.iter().all(rule_statically_safe) {
        return Err(FallbackReason::UnsafeRule);
    }
    match semantics {
        Semantics::Inflationary => {
            let non_monotone = program.rules.iter().flat_map(|r| &r.body).any(|l| match l {
                Literal::Neg { relation, .. } | Literal::Count { relation, .. } => {
                    derived.contains(relation.as_str())
                }
                _ => false,
            });
            if non_monotone {
                return Err(FallbackReason::NonMonotoneInflationary);
            }
        }
        Semantics::Stratified => {
            if !program.is_stratifiable() {
                return Err(FallbackReason::UnstratifiableInput);
            }
        }
        Semantics::Partial => unreachable!("rejected above"),
    }

    // Demand-driven adornment pass: start from the goal's adornment and
    // thread bindings through each rule body left to right, emitting one
    // magic (demand) rule per derived body atom and enqueueing its
    // adornment.
    let goal_ad = adorn(&goal.terms, &HashSet::new());
    let goal_relation = adorned_name(&goal.relation, &goal_ad);
    let mut rules: Vec<Rule> = Vec::new();
    // The seed: the goal's own bindings are demanded unconditionally. An
    // empty body derives in round 0; with no bound positions this is a
    // nullary magic fact.
    rules.push(Rule::new(
        &magic_name(&goal.relation, &goal_ad),
        bound_terms(&goal.terms, &goal_ad),
        Vec::new(),
    ));
    let mut queue: VecDeque<(String, Adornment)> = VecDeque::new();
    let mut seen: HashSet<(String, Adornment)> = HashSet::new();
    // Derived relations read under negation or counting: carried over with
    // their original rules instead of adorned copies.
    let mut full_queue: VecDeque<String> = VecDeque::new();
    let mut full_seen: HashSet<String> = HashSet::new();
    queue.push_back((goal.relation.clone(), goal_ad));
    seen.insert(queue[0].clone());
    while let Some((relation, ad)) = queue.pop_front() {
        let magic = magic_name(&relation, &ad);
        let adorned = adorned_name(&relation, &ad);
        for rule in program.rules.iter().filter(|r| r.head_relation == relation) {
            // Head variables at bound positions arrive through the magic
            // guard; body bindings accumulate left to right from there.
            let guard_terms = bound_terms(&rule.head_terms, &ad);
            let mut bound: HashSet<u32> = term_vars(&guard_terms).collect();
            let mut body: Vec<Literal> =
                vec![Literal::Pos { relation: magic.clone(), terms: guard_terms }];
            let mut demand = |rel: &str, terms: &[Term], bound: &HashSet<u32>, body: &[Literal]| {
                let ad2 = adorn(terms, bound);
                rules.push(Rule::new(
                    &magic_name(rel, &ad2),
                    bound_terms(terms, &ad2),
                    body.to_vec(),
                ));
                let key = (rel.to_string(), ad2.clone());
                if seen.insert(key.clone()) {
                    queue.push_back(key);
                }
                adorned_name(rel, &ad2)
            };
            for literal in &rule.body {
                match literal {
                    Literal::Pos { relation: rel, terms } => {
                        if derived.contains(rel.as_str()) {
                            let name = demand(rel, terms, &bound, &body);
                            body.push(Literal::Pos { relation: name, terms: terms.clone() });
                        } else {
                            body.push(literal.clone());
                        }
                        bound.extend(term_vars(terms));
                    }
                    Literal::Neg { relation: rel, .. } => {
                        // A negated derived relation keeps its original
                        // (unrestricted) definition: restricting it by
                        // demand would test against a partial complement,
                        // and magic rules threading demand *through* a
                        // negation are the classical source of
                        // unstratifiable rewrites.
                        if derived.contains(rel.as_str()) && full_seen.insert(rel.clone()) {
                            full_queue.push_back(rel.clone());
                        }
                        body.push(literal.clone());
                    }
                    Literal::Eq(..) | Literal::Neq(..) => body.push(literal.clone()),
                    Literal::Count { relation: rel, result, .. } => {
                        // Counted derived relations likewise stay original:
                        // a count over a demand-restricted copy would
                        // undercount.
                        if derived.contains(rel.as_str()) && full_seen.insert(rel.clone()) {
                            full_queue.push_back(rel.clone());
                        }
                        body.push(literal.clone());
                        if let Term::Var(v) = result {
                            bound.insert(*v);
                        }
                    }
                }
            }
            rules.push(Rule {
                head_relation: adorned.clone(),
                head_terms: rule.head_terms.clone(),
                body,
            });
        }
    }

    // Pull in the full bottom-up definitions of every negated / counted
    // derived relation, transitively: these rules are copied verbatim, so
    // that cluster computes round for round what the original program
    // computes, and the stratifiability check below places it under the
    // adorned rules that read it. (Only reachable under stratified
    // semantics — the inflationary gate already rejected derived negation
    // and counting.)
    while let Some(relation) = full_queue.pop_front() {
        for rule in program.rules.iter().filter(|r| r.head_relation == relation) {
            for literal in &rule.body {
                if let Literal::Pos { relation: rel, .. }
                | Literal::Neg { relation: rel, .. }
                | Literal::Count { relation: rel, .. } = literal
                {
                    if derived.contains(rel.as_str()) && full_seen.insert(rel.clone()) {
                        full_queue.push_back(rel.clone());
                    }
                }
            }
            rules.push(rule.clone());
        }
    }

    let rewritten = Program { rules, output: goal_relation.clone(), goal: None };
    if semantics == Semantics::Stratified && !rewritten.is_stratifiable() {
        return Err(FallbackReason::UnstratifiableRewrite);
    }
    Ok(MagicProgram { program: rewritten, goal_relation })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(i)
    }

    fn pos(relation: &str, terms: Vec<Term>) -> Literal {
        Literal::Pos { relation: relation.to_string(), terms }
    }

    /// Transitive closure over `E`.
    fn tc() -> Program {
        Program::new("T")
            .rule(Rule::new("T", vec![v(0), v(1)], vec![pos("E", vec![v(0), v(1)])]))
            .rule(Rule::new(
                "T",
                vec![v(0), v(2)],
                vec![pos("T", vec![v(0), v(1)]), pos("E", vec![v(1), v(2)])],
            ))
    }

    fn long_path(n: u32) -> Structure {
        let mut s = Structure::new(n as usize);
        for i in 0..n - 1 {
            s.insert("E", &[i, i + 1]);
        }
        s
    }

    #[test]
    fn goal_matching() {
        let g = Goal::new("R", vec![Term::Const(3), v(0), v(0)]);
        assert!(g.matches(&[3, 5, 5]));
        assert!(!g.matches(&[2, 5, 5]));
        assert!(!g.matches(&[3, 5, 6]));
        assert!(!g.matches(&[3, 5]));
    }

    #[test]
    fn bound_goal_restricts_derivation() {
        // Reachability from one source on a long path: the rewritten program
        // derives O(n) adorned facts where bottom-up T holds O(n²).
        let input = long_path(64);
        let goal = Goal::new("T", vec![Term::Const(0), v(0)]);
        let magic = rewrite(&tc(), &goal, Semantics::Inflationary).expect("rewrite accepted");
        let result = magic.program.run(&input, Semantics::Inflationary, usize::MAX).unwrap();
        let answers = goal_answers(&result, &magic.goal_relation, &goal);
        assert_eq!(answers.len(), 63);
        // Demand never leaves source 0, so the adorned copy stays linear.
        let adorned = result.relation(&magic.goal_relation).unwrap().len();
        assert_eq!(adorned, 63);
        let full = tc().run(&input, Semantics::Inflationary, usize::MAX).unwrap();
        assert_eq!(full.relation("T").unwrap().len(), 63 * 64 / 2);
        assert_eq!(goal_answers(&full, "T", &goal), answers);
    }

    #[test]
    fn fallback_reasons() {
        let goal = Goal::all_free("T", 2);
        assert!(matches!(
            rewrite(&tc(), &goal, Semantics::Partial),
            Err(FallbackReason::PartialSemantics)
        ));
        assert!(matches!(
            rewrite(&tc(), &Goal::nullary("E"), Semantics::Stratified),
            Err(FallbackReason::EdbGoal)
        ));
        assert!(matches!(
            rewrite(&tc(), &Goal::nullary("T"), Semantics::Stratified),
            Err(FallbackReason::GoalArityMismatch)
        ));
        let unsafe_rule = Program::new("B").rule(Rule::new("B", vec![v(7)], vec![]));
        assert!(matches!(
            rewrite(&unsafe_rule, &Goal::all_free("B", 1), Semantics::Stratified),
            Err(FallbackReason::UnsafeRule)
        ));
        let non_monotone = tc().rule(Rule::new(
            "Iso",
            vec![v(0)],
            vec![
                pos("E", vec![v(0), v(1)]),
                Literal::Neg { relation: "T".into(), terms: vec![v(0), v(1)] },
            ],
        ));
        assert!(matches!(
            rewrite(&non_monotone, &Goal::all_free("Iso", 1), Semantics::Inflationary),
            Err(FallbackReason::NonMonotoneInflationary)
        ));
        // The same program stratifies, so the stratified rewrite accepts it.
        assert!(rewrite(&non_monotone, &Goal::all_free("Iso", 1), Semantics::Stratified).is_ok());
    }

    #[test]
    fn stratified_negation_through_demand() {
        // Unreachable(x) ← Node(x), ¬T(0, x): the negated derived relation
        // rides along with its full bottom-up definition and the rewrite
        // stays stratified.
        let mut input = long_path(6);
        for i in 0..6u32 {
            input.insert("Node", &[i]);
        }
        input.insert("E", &[4, 2]); // extra edge; 5 stays reachable via path
        let program = tc().rule(Rule::new(
            "Unreachable",
            vec![v(0)],
            vec![
                pos("Node", vec![v(0)]),
                Literal::Neg { relation: "T".into(), terms: vec![Term::Const(0), v(0)] },
            ],
        ));
        let goal = Goal::all_free("Unreachable", 1);
        let magic = rewrite(&program, &goal, Semantics::Stratified).expect("rewrite accepted");
        let result = magic.program.run(&input, Semantics::Stratified, usize::MAX).unwrap();
        let bottom_up = program.run(&input, Semantics::Stratified, usize::MAX).unwrap();
        assert_eq!(
            goal_answers(&result, &magic.goal_relation, &goal),
            goal_answers(&bottom_up, "Unreachable", &goal),
        );
        assert_eq!(goal_answers(&result, &magic.goal_relation, &goal), vec![vec![0]]);
    }
}
