//! The delta-driven (semi-naive) rule evaluator behind [`Program::run`].
//!
//! The naive engine re-evaluates every rule against the full pre-round state
//! every round, so a transitive-closure program pays `O(|T| · |E|)` scans per
//! round even when the last round added three facts. This engine instead
//! tracks, per derived relation, the *delta* — the facts that became true in
//! the previous round — and rewrites each rule into delta variants:
//!
//! * a rule whose body has `k` positive literals over relations being derived
//!   in the current run evaluates as `k` variants; variant `j` binds the
//!   `j`-th such literal to the delta, the earlier ones to the state *before*
//!   the delta (so no binding is enumerated by two variants' prefixes), and
//!   the later ones to the full pre-round state;
//! * negative, equality and counting literals always read the full frozen
//!   pre-round state, exactly as the naive engine does, so inflationary,
//!   stratified and partial-fixpoint semantics are unchanged;
//! * a rule with `k = 0` (nothing it reads positively is being derived) can
//!   only lose matches as the state grows — negation shrinks, counts over
//!   relations outside the run are constant — so the facts it derives in
//!   round 0 are all the facts it ever derives, and it never runs again;
//! * a rule with a counting literal *over a relation being derived* is not
//!   delta-rewritable (a growing count can newly satisfy a test without any
//!   positive literal touching the delta), so it re-evaluates in full — but
//!   only in rounds where a relation it positively reads or counts actually
//!   changed.
//!
//! Joins go through per-relation hash indexes keyed by the bound term
//! positions of each literal (bound positions are static per literal, so the
//! key shape is compiled once per rule). Indexes are extended incrementally
//! from the appended tuple suffix, never rebuilt, and posting lists store
//! insertion ranks so a delta variant reads exactly the slice of an index
//! that belongs to its round window.
//!
//! The pre-rewrite evaluator is frozen as [`super::naive`] behind the
//! `naive-reference` feature; `tests/datalog_equivalence.rs` in the workspace
//! root proves the two engines produce identical derived relations on all
//! three semantics, counting and negation included.

use super::{Literal, Program, Rule};
use crate::fo::Term;
use crate::structure::Structure;
use std::collections::{HashMap, HashSet};

/// A compiled term: a constant or a slot in the flat per-rule binding array.
#[derive(Clone, Copy, Debug)]
enum CTerm {
    Const(u32),
    Slot(usize),
}

/// A term position of an atom whose value is known when the literal is
/// reached (a constant or an already-bound variable): together these
/// positions form the join key.
#[derive(Clone, Copy, Debug)]
struct KeyPart {
    pos: usize,
    term: CTerm,
}

/// A term position not bound at literal entry: either the first occurrence of
/// a variable (which binds it) or a repeat within the same atom (which must
/// match the value just bound).
#[derive(Clone, Copy, Debug)]
enum RestAction {
    Assign { pos: usize, slot: usize },
    CheckSlot { pos: usize, slot: usize },
}

/// A compiled atom (`R(t̄)` in a positive or counting literal).
#[derive(Clone, Debug)]
struct CAtom {
    rel: usize,
    arity: usize,
    /// Bitmask over term positions of `key` (0 ⇒ full scan, no index).
    mask: u64,
    key: Vec<KeyPart>,
    rest: Vec<RestAction>,
}

/// What to do with the result term of a counting literal.
#[derive(Clone, Copy, Debug)]
enum CountResult {
    /// Result is bound: the literal tests `count == value`.
    Test(CTerm),
    /// Result is an unbound variable: bind it to the count.
    Assign(usize),
}

/// A compiled body literal.
#[derive(Clone, Debug)]
enum CLiteral {
    Pos {
        atom: CAtom,
        /// `Some(i)` iff the relation is being derived in the current run;
        /// `i` numbers this occurrence among the rule's active positive
        /// literals and selects which delta variant binds it to the delta.
        active_occurrence: Option<usize>,
    },
    Neg {
        rel: usize,
        terms: Vec<CTerm>,
        /// False iff some variable was not bound by an earlier literal; the
        /// panic fires only if a binding actually reaches the literal,
        /// mirroring the naive engine.
        safe: bool,
    },
    Cmp {
        a: CTerm,
        b: CTerm,
        want_equal: bool,
        safe: bool,
    },
    Count {
        atom: CAtom,
        /// Slot of each counted variable (`None` ⇒ the variable occurs
        /// neither in the binding nor in the atom; panic on first match).
        counted: Vec<Option<usize>>,
        result: CountResult,
    },
}

/// A rule compiled against a fixed set of active (currently-derived)
/// relations.
#[derive(Clone, Debug)]
struct CRule {
    head_rel: usize,
    head: Vec<CTerm>,
    head_safe: bool,
    body: Vec<CLiteral>,
    nslots: usize,
    /// Relation of each active positive occurrence, indexed by occurrence.
    active_occ_rels: Vec<usize>,
    /// False iff a counting literal counts an active relation.
    rewritable: bool,
    /// Active relations read by positive or counting literals: the rule can
    /// derive something new in a round only if one of these changed.
    reads_active: Vec<usize>,
}

/// Which round window a rule evaluation reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    /// Every literal reads the full pre-round state.
    Full,
    /// Active positive occurrence `j` reads the delta, earlier ones the
    /// pre-delta state, later ones the full pre-round state.
    Delta(usize),
}

/// Per-relation evaluation state: append-only tuple log, membership set, and
/// incrementally-extended join indexes.
#[derive(Debug, Default)]
struct RelState {
    arity: Option<usize>,
    /// Insertion-ordered log; `[..prev_len)` is the pre-delta state,
    /// `[prev_len..full_len)` the delta, `[..full_len)` the full pre-round
    /// state. Tuples past `full_len` were derived this round and are
    /// invisible until the boundaries advance.
    tuples: Vec<Vec<u32>>,
    set: HashSet<Vec<u32>>,
    initial_len: usize,
    prev_len: usize,
    full_len: usize,
    /// Join indexes by key mask; posting lists hold insertion ranks in
    /// ascending order so round windows are contiguous sub-slices.
    indexes: HashMap<u64, Index>,
}

#[derive(Debug, Default)]
struct Index {
    upto: usize,
    map: HashMap<Vec<u32>, Vec<u32>>,
}

impl RelState {
    fn delta_is_empty(&self) -> bool {
        self.prev_len == self.full_len
    }
}

/// The evaluation engine: interned relation names plus per-relation state.
///
/// One engine evaluates one inflationary run (or, for the partial-fixpoint
/// mode, one from-scratch step); [`Program::run`] drives it.
///
/// Only the relations the program actually mentions (heads and literal
/// relations) are loaded: a program touching three relations of a structure
/// that exports twenty pays for three, and the untouched ones flow through
/// [`Engine::into_structure`] untouched.
pub(super) struct Engine<'p> {
    names: Vec<&'p str>,
    ids: HashMap<&'p str, usize>,
    rels: Vec<RelState>,
}

impl<'p> Engine<'p> {
    /// Builds an engine over the given base state (input relations with the
    /// derived relations already emptied and re-declared by the caller).
    pub(super) fn new(program: &'p Program, base: &Structure) -> Self {
        let mut engine = Engine { names: Vec::new(), ids: HashMap::new(), rels: Vec::new() };
        for rule in &program.rules {
            engine.intern(&rule.head_relation);
            for literal in &rule.body {
                match literal {
                    Literal::Pos { relation, .. }
                    | Literal::Neg { relation, .. }
                    | Literal::Count { relation, .. } => {
                        engine.intern(relation);
                    }
                    Literal::Eq(..) | Literal::Neq(..) => {}
                }
            }
        }
        for id in 0..engine.names.len() {
            let name = engine.names[id];
            let rel = &mut engine.rels[id];
            if let Some(source) = base.relation(name) {
                rel.arity = Some(source.arity());
                rel.tuples = source.iter().cloned().collect();
                rel.set = rel.tuples.iter().cloned().collect();
            }
            let len = rel.tuples.len();
            rel.initial_len = len;
            rel.prev_len = len;
            rel.full_len = len;
        }
        engine
    }

    fn intern(&mut self, name: &'p str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name);
        self.ids.insert(name, id);
        self.rels.push(RelState::default());
        id
    }

    /// Runs the given rules (one stratum, or the whole program) inflationarily
    /// to their fixpoint with semi-naive iteration.
    pub(super) fn run_rules(&mut self, rules: &[&'p Rule]) {
        let mut active = vec![false; self.rels.len()];
        for rule in rules {
            active[self.ids[rule.head_relation.as_str()]] = true;
        }
        let compiled: Vec<CRule> = rules.iter().map(|rule| self.compile(rule, &active)).collect();
        // A fresh run: everything already derived is plain state, no delta.
        for rel in &mut self.rels {
            let len = rel.tuples.len();
            rel.prev_len = len;
            rel.full_len = len;
        }
        // Round 0: every rule runs in full against the pre-run state.
        let mut pending: Vec<(usize, Vec<Vec<u32>>)> = Vec::new();
        for rule in &compiled {
            let heads = self.rule_heads_compiled(rule, Variant::Full);
            if !heads.is_empty() {
                pending.push((rule.head_rel, heads));
            }
        }
        let mut changed = self.commit(&mut pending);
        // Semi-naive rounds: only delta variants, plus full re-evaluation of
        // the (rare) non-rewritable rules whose counted relations changed.
        while changed {
            for rel in &mut self.rels {
                rel.prev_len = rel.full_len;
                rel.full_len = rel.tuples.len();
            }
            for rule in &compiled {
                if rule.rewritable {
                    for j in 0..rule.active_occ_rels.len() {
                        if self.rels[rule.active_occ_rels[j]].delta_is_empty() {
                            continue;
                        }
                        let heads = self.rule_heads_compiled(rule, Variant::Delta(j));
                        if !heads.is_empty() {
                            pending.push((rule.head_rel, heads));
                        }
                    }
                } else if rule.reads_active.iter().any(|&r| !self.rels[r].delta_is_empty()) {
                    let heads = self.rule_heads_compiled(rule, Variant::Full);
                    if !heads.is_empty() {
                        pending.push((rule.head_rel, heads));
                    }
                }
            }
            changed = self.commit(&mut pending);
        }
    }

    /// All head tuples derivable from one (uncompiled) rule against the
    /// engine's current state — the partial-fixpoint step primitive.
    pub(super) fn rule_heads(&mut self, rule: &'p Rule) -> Vec<Vec<u32>> {
        let active = vec![false; self.rels.len()];
        let compiled = self.compile(rule, &active);
        self.rule_heads_compiled(&compiled, Variant::Full)
    }

    /// Moves the derived facts onto the caller's base structure (which the
    /// engine does not borrow, so no extra clone of the input relations).
    pub(super) fn into_structure(self, mut base: Structure) -> Structure {
        for (id, rel) in self.rels.iter().enumerate() {
            for tuple in &rel.tuples[rel.initial_len..] {
                base.insert(self.names[id], tuple);
            }
        }
        base
    }

    /// Inserts the round's pending head tuples; returns whether anything was
    /// genuinely new. Insertion happens strictly after every rule of the
    /// round has been evaluated, so rules never observe mid-round facts.
    fn commit(&mut self, pending: &mut Vec<(usize, Vec<Vec<u32>>)>) -> bool {
        let mut changed = false;
        for (rel_id, tuples) in pending.drain(..) {
            let rel = &mut self.rels[rel_id];
            for tuple in tuples {
                if rel.set.insert(tuple.clone()) {
                    rel.tuples.push(tuple);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Compiles a rule against the active-relation set: variables become
    /// slots in a flat binding array, atom positions split into a static join
    /// key (constants and variables bound by earlier literals) and the
    /// assign/check actions for the remaining positions.
    fn compile(&mut self, rule: &'p Rule, active: &[bool]) -> CRule {
        let mut vars = VarMap::default();
        let mut body = Vec::with_capacity(rule.body.len());
        let mut active_occ_rels = Vec::new();
        let mut rewritable = true;
        let mut reads_active = Vec::new();
        for literal in &rule.body {
            match literal {
                Literal::Pos { relation, terms } => {
                    let rel = self.intern(relation);
                    let atom = compile_atom(rel, terms, &mut vars, true);
                    let active_occurrence = active[rel].then(|| {
                        active_occ_rels.push(rel);
                        reads_active.push(rel);
                        active_occ_rels.len() - 1
                    });
                    body.push(CLiteral::Pos { atom, active_occurrence });
                }
                Literal::Neg { relation, terms } => {
                    let rel = self.intern(relation);
                    let mut safe = true;
                    let terms = terms.iter().map(|t| vars.bound_term(t, &mut safe)).collect();
                    body.push(CLiteral::Neg { rel, terms, safe });
                }
                Literal::Eq(a, b) | Literal::Neq(a, b) => {
                    let mut safe = true;
                    let a = vars.bound_term(a, &mut safe);
                    let b = vars.bound_term(b, &mut safe);
                    let want_equal = matches!(literal, Literal::Eq(..));
                    body.push(CLiteral::Cmp { a, b, want_equal, safe });
                }
                Literal::Count { relation, terms, counted, result } => {
                    let rel = self.intern(relation);
                    if active[rel] {
                        // A growing count can newly satisfy the literal with
                        // no delta fact in any positive literal: fall back to
                        // full re-evaluation whenever a read relation grows.
                        rewritable = false;
                        reads_active.push(rel);
                    }
                    // The atom's variables are existential within the count:
                    // they bind slots while matching but stay unbound for the
                    // rest of the body, exactly like the naive engine, which
                    // discards the per-tuple extension.
                    let atom = compile_atom(rel, terms, &mut vars, false);
                    let assigned: HashSet<usize> = atom
                        .rest
                        .iter()
                        .filter_map(|a| match a {
                            RestAction::Assign { slot, .. } => Some(*slot),
                            RestAction::CheckSlot { .. } => None,
                        })
                        .collect();
                    let counted = counted
                        .iter()
                        .map(|v| {
                            vars.slots
                                .get(v)
                                .copied()
                                .filter(|&s| vars.bound[s] || assigned.contains(&s))
                        })
                        .collect();
                    let result = match result {
                        Term::Const(c) => CountResult::Test(CTerm::Const(*c)),
                        Term::Var(v) => {
                            let slot = vars.slot(*v);
                            if vars.bound[slot] {
                                CountResult::Test(CTerm::Slot(slot))
                            } else {
                                vars.bound[slot] = true;
                                CountResult::Assign(slot)
                            }
                        }
                    };
                    body.push(CLiteral::Count { atom, counted, result });
                }
            }
        }
        let mut head_safe = true;
        let head = rule.head_terms.iter().map(|t| vars.bound_term(t, &mut head_safe)).collect();
        reads_active.sort_unstable();
        reads_active.dedup();
        CRule {
            head_rel: self.intern(&rule.head_relation),
            head,
            head_safe,
            body,
            nslots: vars.bound.len(),
            active_occ_rels,
            rewritable,
            reads_active,
        }
    }

    /// All head tuples derivable from one compiled rule under the given
    /// variant. Every read is capped at the pre-round boundaries, so facts
    /// committed by earlier rounds of the same run are visible and facts of
    /// the current round are not.
    fn rule_heads_compiled(&mut self, rule: &CRule, variant: Variant) -> Vec<Vec<u32>> {
        let mut bindings: Vec<Vec<u32>> = vec![vec![0; rule.nslots]];
        for literal in &rule.body {
            match literal {
                CLiteral::Pos { atom, active_occurrence } => {
                    let (lo, hi) = match (variant, active_occurrence) {
                        (Variant::Delta(j), Some(i)) if *i == j => {
                            (self.rels[atom.rel].prev_len, self.rels[atom.rel].full_len)
                        }
                        (Variant::Delta(j), Some(i)) if *i < j => (0, self.rels[atom.rel].prev_len),
                        _ => (0, self.rels[atom.rel].full_len),
                    };
                    bindings = self.eval_pos(atom, &bindings, lo, hi);
                }
                CLiteral::Neg { rel, terms, safe } => {
                    if bindings.is_empty() {
                        return Vec::new();
                    }
                    assert!(*safe, "unsafe rule: negative literal with unbound variable");
                    let state = &self.rels[*rel];
                    let mut scratch = Vec::with_capacity(terms.len());
                    bindings.retain(|binding| {
                        scratch.clear();
                        scratch.extend(terms.iter().map(|t| term_value(*t, binding)));
                        !state.set.contains(scratch.as_slice())
                    });
                }
                CLiteral::Cmp { a, b, want_equal, safe } => {
                    if bindings.is_empty() {
                        return Vec::new();
                    }
                    assert!(*safe, "unsafe rule: comparison with unbound variable");
                    bindings.retain(|binding| {
                        (term_value(*a, binding) == term_value(*b, binding)) == *want_equal
                    });
                }
                CLiteral::Count { atom, counted, result } => {
                    bindings = self.eval_count(atom, counted, *result, &bindings);
                }
            }
            if bindings.is_empty() {
                return Vec::new();
            }
        }
        assert!(
            rule.head_safe,
            "unsafe rule: head variable of {} not bound by the body",
            self.names[rule.head_rel]
        );
        bindings
            .iter()
            .map(|binding| rule.head.iter().map(|t| term_value(*t, binding)).collect())
            .collect()
    }

    /// Extends each binding by the matches of a positive atom within the
    /// tuple-rank window `[lo, hi)`, through the join index on the atom's
    /// bound positions. An atom that binds no new variable degenerates to a
    /// semi-join (the binding survives iff at least one tuple matches).
    fn eval_pos(
        &mut self,
        atom: &CAtom,
        bindings: &[Vec<u32>],
        lo: usize,
        hi: usize,
    ) -> Vec<Vec<u32>> {
        if lo >= hi || self.rels[atom.rel].arity != Some(atom.arity) {
            return Vec::new();
        }
        if atom.mask != 0 {
            self.ensure_index(atom.rel, atom.mask, &atom.key);
        }
        let rel = &self.rels[atom.rel];
        let semi_join = !atom.rest.iter().any(|a| matches!(a, RestAction::Assign { .. }));
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(atom.key.len());
        for binding in bindings {
            if atom.mask != 0 {
                key.clear();
                key.extend(atom.key.iter().map(|kp| term_value(kp.term, binding)));
                let Some(postings) = rel.indexes[&atom.mask].map.get(&key) else {
                    continue;
                };
                let start = postings.partition_point(|&i| (i as usize) < lo);
                let end = postings.partition_point(|&i| (i as usize) < hi);
                for &rank in &postings[start..end] {
                    let tuple = &rel.tuples[rank as usize];
                    if let Some(extended) = extend_binding(binding, atom, tuple, false) {
                        out.push(extended);
                        if semi_join {
                            break;
                        }
                    }
                }
            } else {
                for tuple in &rel.tuples[lo..hi] {
                    if let Some(extended) = extend_binding(binding, atom, tuple, true) {
                        out.push(extended);
                        if semi_join {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Evaluates a counting literal: the number of distinct projections onto
    /// the counted variables over the atom's matches in the full pre-round
    /// state, tested against or bound to the result term.
    fn eval_count(
        &mut self,
        atom: &CAtom,
        counted: &[Option<usize>],
        result: CountResult,
        bindings: &[Vec<u32>],
    ) -> Vec<Vec<u32>> {
        let arity_ok = self.rels[atom.rel].arity == Some(atom.arity);
        if arity_ok && atom.mask != 0 {
            self.ensure_index(atom.rel, atom.mask, &atom.key);
        }
        let rel = &self.rels[atom.rel];
        let hi = rel.full_len;
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(atom.key.len());
        let mut witnesses: HashSet<Vec<u32>> = HashSet::new();
        let mut scratch: Vec<u32> = Vec::new();
        for binding in bindings {
            witnesses.clear();
            scratch.clear();
            scratch.extend_from_slice(binding);
            let witness_of = |scratch: &[u32]| -> Vec<u32> {
                counted
                    .iter()
                    .map(|slot| {
                        scratch[slot.expect("counted variable does not occur in the counted atom")]
                    })
                    .collect()
            };
            if arity_ok {
                if atom.mask != 0 {
                    key.clear();
                    key.extend(atom.key.iter().map(|kp| term_value(kp.term, binding)));
                    if let Some(postings) = rel.indexes[&atom.mask].map.get(&key) {
                        let end = postings.partition_point(|&i| (i as usize) < hi);
                        for &rank in &postings[..end] {
                            if extend_in_place(
                                &mut scratch,
                                atom,
                                &rel.tuples[rank as usize],
                                false,
                            ) {
                                witnesses.insert(witness_of(&scratch));
                            }
                        }
                    }
                } else {
                    for tuple in &rel.tuples[..hi] {
                        if extend_in_place(&mut scratch, atom, tuple, true) {
                            witnesses.insert(witness_of(&scratch));
                        }
                    }
                }
            }
            let count = witnesses.len();
            match result {
                CountResult::Test(term) => {
                    if term_value(term, binding) as usize == count {
                        out.push(binding.clone());
                    }
                }
                CountResult::Assign(slot) => {
                    let mut extended = binding.clone();
                    extended[slot] = count as u32;
                    out.push(extended);
                }
            }
        }
        out
    }

    /// Gets or incrementally extends the index of `rel` on the key positions
    /// in `mask`: only the tuples appended since the last extension are
    /// visited, never the whole relation.
    fn ensure_index(&mut self, rel_id: usize, mask: u64, key: &[KeyPart]) {
        let rel = &mut self.rels[rel_id];
        let index = rel.indexes.entry(mask).or_default();
        if index.upto == rel.tuples.len() {
            return;
        }
        for rank in index.upto..rel.tuples.len() {
            let tuple = &rel.tuples[rank];
            let key_values: Vec<u32> = key.iter().map(|kp| tuple[kp.pos]).collect();
            index.map.entry(key_values).or_default().push(rank as u32);
        }
        index.upto = rel.tuples.len();
    }
}

/// Variable-to-slot mapping built up while compiling one rule.
#[derive(Default)]
struct VarMap {
    slots: HashMap<u32, usize>,
    bound: Vec<bool>,
}

impl VarMap {
    /// The slot of a variable, allocated (unbound) on first sight.
    fn slot(&mut self, v: u32) -> usize {
        let bound = &mut self.bound;
        *self.slots.entry(v).or_insert_with(|| {
            bound.push(false);
            bound.len() - 1
        })
    }

    /// Compiles a term that the semantics require to be already bound,
    /// clearing `safe` if it is not (the panic fires at evaluation time, and
    /// only if a binding actually reaches the literal, like the naive
    /// engine).
    fn bound_term(&mut self, term: &Term, safe: &mut bool) -> CTerm {
        match term {
            Term::Const(c) => CTerm::Const(*c),
            Term::Var(v) => {
                let slot = self.slot(*v);
                *safe &= self.bound[slot];
                CTerm::Slot(slot)
            }
        }
    }
}

/// Compiles an atom's positions into join-key parts (constants and variables
/// bound before the literal) and assign/check actions for the rest. When
/// `persist` is false (counting atoms), freshly-assigned variables do not
/// stay bound after the literal.
fn compile_atom(rel: usize, terms: &[Term], vars: &mut VarMap, persist: bool) -> CAtom {
    let mut key = Vec::new();
    let mut rest = Vec::new();
    let mut mask = 0u64;
    let mut local: HashSet<usize> = HashSet::new();
    for (pos, term) in terms.iter().enumerate() {
        match term {
            Term::Const(c) => {
                key.push(KeyPart { pos, term: CTerm::Const(*c) });
                if pos < 64 {
                    mask |= 1 << pos;
                }
            }
            Term::Var(v) => {
                let slot = vars.slot(*v);
                if vars.bound[slot] {
                    key.push(KeyPart { pos, term: CTerm::Slot(slot) });
                    if pos < 64 {
                        mask |= 1 << pos;
                    }
                } else if local.contains(&slot) {
                    rest.push(RestAction::CheckSlot { pos, slot });
                } else {
                    local.insert(slot);
                    rest.push(RestAction::Assign { pos, slot });
                }
            }
        }
    }
    if terms.len() > 64 {
        // Key positions past the mask width cannot be distinguished; fall
        // back to the scan path, which re-checks every key part.
        mask = 0;
    }
    if persist {
        for &slot in &local {
            vars.bound[slot] = true;
        }
    }
    CAtom { rel, arity: terms.len(), mask, key, rest }
}

fn term_value(term: CTerm, binding: &[u32]) -> u32 {
    match term {
        CTerm::Const(c) => c,
        CTerm::Slot(slot) => binding[slot],
    }
}

/// Clones `binding` extended by the atom's match against `tuple`, or `None`
/// if the tuple does not match. `check_key` re-verifies the key positions
/// (needed on the index-free scan path).
fn extend_binding(
    binding: &[u32],
    atom: &CAtom,
    tuple: &[u32],
    check_key: bool,
) -> Option<Vec<u32>> {
    if check_key && !atom.key.iter().all(|kp| term_value(kp.term, binding) == tuple[kp.pos]) {
        return None;
    }
    let mut extended = binding.to_vec();
    for action in &atom.rest {
        match *action {
            RestAction::Assign { pos, slot } => extended[slot] = tuple[pos],
            RestAction::CheckSlot { pos, slot } => {
                if extended[slot] != tuple[pos] {
                    return None;
                }
            }
        }
    }
    Some(extended)
}

/// In-place variant of [`extend_binding`] over a reusable scratch array (the
/// counting path, where per-match extensions are discarded).
fn extend_in_place(scratch: &mut [u32], atom: &CAtom, tuple: &[u32], check_key: bool) -> bool {
    if check_key
        && !atom.key.iter().all(|kp| match kp.term {
            CTerm::Const(c) => c == tuple[kp.pos],
            CTerm::Slot(slot) => scratch[slot] == tuple[kp.pos],
        })
    {
        return false;
    }
    for action in &atom.rest {
        match *action {
            RestAction::Assign { pos, slot } => scratch[slot] = tuple[pos],
            RestAction::CheckSlot { pos, slot } => {
                if scratch[slot] != tuple[pos] {
                    return false;
                }
            }
        }
    }
    true
}
