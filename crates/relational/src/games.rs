//! Ehrenfeucht–Fraïssé games.
//!
//! Two structures satisfy the same `FO_r` sentences iff Duplicator wins the
//! r-round EF game on them. The translation results of Section 4 lean on this
//! characterisation (for coloured cycles and words); this module provides the
//! generic game on arbitrary finite structures, used directly in tests and as
//! the reference implementation against which the specialised word/cycle type
//! machinery of `topo-translate` is validated.
//!
//! The implementation is the textbook recursive search over Spoiler's moves
//! with memoisation on the played configuration; its cost is
//! `O((|A|·|B|)^r)`, fine for the small structures the games are played on.

use crate::structure::Structure;
use std::collections::HashMap;

/// True iff `a` and `b` satisfy the same first-order sentences of quantifier
/// depth at most `rounds` (i.e. Duplicator wins the EF game of that length).
pub fn fo_equivalent(a: &Structure, b: &Structure, rounds: usize) -> bool {
    let mut memo = HashMap::new();
    duplicator_wins(a, b, rounds, &mut Vec::new(), &mut Vec::new(), &mut memo)
}

fn duplicator_wins(
    a: &Structure,
    b: &Structure,
    rounds: usize,
    pebbles_a: &mut Vec<u32>,
    pebbles_b: &mut Vec<u32>,
    memo: &mut HashMap<(usize, Vec<u32>, Vec<u32>), bool>,
) -> bool {
    if !partial_isomorphism(a, b, pebbles_a, pebbles_b) {
        return false;
    }
    if rounds == 0 {
        return true;
    }
    let key = (rounds, pebbles_a.clone(), pebbles_b.clone());
    if let Some(&cached) = memo.get(&key) {
        return cached;
    }
    // Spoiler plays in A: Duplicator must answer in B; and symmetrically.
    let mut result = true;
    'outer: for (spoiler_struct, responder_struct, spoiler_pebbles_first) in
        [(a, b, true), (b, a, false)]
    {
        for spoiler_choice in spoiler_struct.domain() {
            let mut answered = false;
            for response in responder_struct.domain() {
                let (pa, pb) = if spoiler_pebbles_first {
                    (spoiler_choice, response)
                } else {
                    (response, spoiler_choice)
                };
                pebbles_a.push(pa);
                pebbles_b.push(pb);
                let ok = duplicator_wins(a, b, rounds - 1, pebbles_a, pebbles_b, memo);
                pebbles_a.pop();
                pebbles_b.pop();
                if ok {
                    answered = true;
                    break;
                }
            }
            if !answered {
                result = false;
                break 'outer;
            }
        }
    }
    memo.insert(key, result);
    result
}

/// Do the pebbled elements induce a partial isomorphism? All relations are
/// checked on tuples built from pebbled elements only, in both directions,
/// together with the equality pattern.
fn partial_isomorphism(a: &Structure, b: &Structure, pebbles_a: &[u32], pebbles_b: &[u32]) -> bool {
    let k = pebbles_a.len();
    debug_assert_eq!(k, pebbles_b.len());
    for i in 0..k {
        for j in 0..k {
            if (pebbles_a[i] == pebbles_a[j]) != (pebbles_b[i] == pebbles_b[j]) {
                return false;
            }
        }
    }
    for name in a.relation_names() {
        let arity = a.arity(name).unwrap();
        if !check_relation_on_pebbles(a, b, name, arity, pebbles_a, pebbles_b) {
            return false;
        }
    }
    for name in b.relation_names() {
        if a.relation(name).is_none() {
            let arity = b.arity(name).unwrap();
            if !check_relation_on_pebbles(b, a, name, arity, pebbles_b, pebbles_a) {
                return false;
            }
        }
    }
    true
}

fn check_relation_on_pebbles(
    a: &Structure,
    b: &Structure,
    name: &str,
    arity: usize,
    pebbles_a: &[u32],
    pebbles_b: &[u32],
) -> bool {
    let k = pebbles_a.len();
    if k == 0 {
        return true;
    }
    // Enumerate all index tuples of length `arity` over the pebbles.
    let mut indices = vec![0usize; arity];
    loop {
        let tuple_a: Vec<u32> = indices.iter().map(|&i| pebbles_a[i]).collect();
        let tuple_b: Vec<u32> = indices.iter().map(|&i| pebbles_b[i]).collect();
        if a.contains(name, &tuple_a) != b.contains(name, &tuple_b) {
            return false;
        }
        // Next index tuple.
        let mut pos = 0;
        loop {
            if pos == arity {
                return true;
            }
            indices[pos] += 1;
            if indices[pos] < k {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linear order of size `n` given by its strict order relation.
    fn linear_order(n: u32) -> Structure {
        let mut s = Structure::new(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                s.insert("<", &[i, j]);
            }
        }
        s
    }

    #[test]
    fn linear_orders_classical_bound() {
        // Classical fact (used in the proof of Lemma 4.6): linear orders are
        // FO_r-equivalent iff they have equal size or both have size
        // >= 2^r - 1.
        assert!(fo_equivalent(&linear_order(7), &linear_order(8), 3));
        assert!(fo_equivalent(&linear_order(7), &linear_order(9), 3));
        assert!(!fo_equivalent(&linear_order(6), &linear_order(7), 3));
        assert!(fo_equivalent(&linear_order(3), &linear_order(4), 2));
        assert!(!fo_equivalent(&linear_order(2), &linear_order(3), 2));
        assert!(fo_equivalent(&linear_order(2), &linear_order(3), 1));
    }

    #[test]
    fn cycles_vs_disjoint_cycles() {
        // A 6-cycle and two 3-cycles are FO_1 equivalent but not FO_3
        // equivalent (distance arguments need 3 rounds to tell them apart).
        let mut six = Structure::new(6);
        for i in 0..6u32 {
            six.insert("E", &[i, (i + 1) % 6]);
        }
        let mut two_threes = Structure::new(6);
        for offset in [0u32, 3] {
            for i in 0..3 {
                two_threes.insert("E", &[offset + i, offset + (i + 1) % 3]);
            }
        }
        assert!(fo_equivalent(&six, &two_threes, 1));
        assert!(!fo_equivalent(&six, &two_threes, 3));
    }

    #[test]
    fn identical_structures_always_equivalent() {
        let s = linear_order(5);
        for r in 0..4 {
            assert!(fo_equivalent(&s, &s, r));
        }
    }

    #[test]
    fn unary_predicates_matter() {
        let mut a = Structure::new(3);
        a.insert("U", &[0]);
        let mut b = Structure::new(3);
        b.insert("U", &[0]);
        b.insert("U", &[1]);
        assert!(fo_equivalent(&a, &b, 0));
        assert!(!fo_equivalent(&a, &b, 2));
    }
}
