//! Isomorphism of finite relational structures.
//!
//! Theorem 2.1(ii) reduces topological equivalence of spatial instances to
//! isomorphism of their invariants, so an isomorphism test is part of the
//! public API. The implementation is a colour-refinement-guided backtracking
//! search: adequate for invariants of the sizes the tests and experiments
//! use, and independent of the canonical codes computed by `topo-invariant`
//! (the two are cross-validated against each other in the test suites).

use crate::structure::Structure;
use std::collections::HashMap;

/// Returns an isomorphism from `a` to `b` as a mapping of domain elements, if
/// one exists.
pub fn find_isomorphism(a: &Structure, b: &Structure) -> Option<Vec<u32>> {
    if a.domain_size() != b.domain_size() {
        return None;
    }
    // Vocabulary check: same relation names, arities and cardinalities.
    let names_a: Vec<&str> = a.relation_names().collect();
    let names_b: Vec<&str> = b.relation_names().collect();
    if names_a != names_b {
        return None;
    }
    for name in &names_a {
        let ra = a.relation(name).unwrap();
        let rb = b.relation(name).unwrap();
        if ra.arity() != rb.arity() || ra.len() != rb.len() {
            return None;
        }
    }
    let n = a.domain_size();
    if n == 0 {
        return Some(Vec::new());
    }
    let colors_a = refine_colors(a);
    let colors_b = refine_colors(b);
    // The multisets of colours must agree.
    let mut hist_a: HashMap<u64, usize> = HashMap::new();
    let mut hist_b: HashMap<u64, usize> = HashMap::new();
    for &c in &colors_a {
        *hist_a.entry(c).or_default() += 1;
    }
    for &c in &colors_b {
        *hist_b.entry(c).or_default() += 1;
    }
    if hist_a != hist_b {
        return None;
    }
    // Fast path: a discrete colouring admits exactly one colour-respecting
    // bijection, and any isomorphism must respect the refined colours — so
    // verify that single candidate instead of backtracking.
    if hist_a.values().all(|&size| size == 1) {
        let by_color: HashMap<u64, u32> =
            colors_b.iter().enumerate().map(|(y, &c)| (c, y as u32)).collect();
        let mapping: Vec<Option<u32>> = colors_a.iter().map(|c| Some(by_color[c])).collect();
        return if full_check(a, b, &mapping) {
            Some(mapping.into_iter().map(|m| m.unwrap()).collect())
        } else {
            None
        };
    }
    // Backtracking: map elements of `a` in order of ascending colour-class
    // size (most constrained first).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&x| (hist_a[&colors_a[x as usize]], x));
    let mut mapping: Vec<Option<u32>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];
    if backtrack(a, b, &colors_a, &colors_b, &order, 0, &mut mapping, &mut used) {
        Some(mapping.into_iter().map(|m| m.unwrap()).collect())
    } else {
        None
    }
}

/// True iff the two structures are isomorphic.
pub fn isomorphic(a: &Structure, b: &Structure) -> bool {
    find_isomorphism(a, b).is_some()
}

/// Isomorphism with a complete-invariant fast path: callers that already hold
/// a *canonical key* for each structure — a value equal iff the structures are
/// isomorphic, such as the canonical code of a topological invariant — pass
/// the keys and the answer is a single comparison; when either key is missing
/// the generic backtracking search decides.
///
/// The keys must be complete invariants for isomorphism of the structures
/// passed (equal keys ⟺ isomorphic structures); partial invariants such as
/// hashes would make the `false` answer unsound.
pub fn isomorphic_with_keys<K: Eq>(
    a: &Structure,
    b: &Structure,
    key_a: Option<&K>,
    key_b: Option<&K>,
) -> bool {
    match (key_a, key_b) {
        (Some(ka), Some(kb)) => ka == kb,
        _ => isomorphic(a, b),
    }
}

/// Iterated colour refinement (1-dimensional Weisfeiler–Leman adapted to
/// arbitrary arities): each element's colour is refined by the multiset of
/// (relation, position, colours of the other tuple members) it participates
/// in.
fn refine_colors(s: &Structure) -> Vec<u64> {
    let n = s.domain_size();
    let mut colors: Vec<u64> = vec![0; n];
    for _round in 0..n.max(1) {
        let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); n];
        for name in s.relation_names() {
            let rel = s.relation(name).unwrap();
            let name_hash = hash_str(name);
            for tuple in rel.iter() {
                for (pos, &x) in tuple.iter().enumerate() {
                    let mut sig = name_hash ^ (pos as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    for (other_pos, &y) in tuple.iter().enumerate() {
                        if other_pos != pos {
                            sig = sig
                                .wrapping_mul(31)
                                .wrapping_add(colors[y as usize].wrapping_add(other_pos as u64));
                        }
                    }
                    signatures[x as usize].push(sig);
                }
            }
        }
        let mut next: Vec<u64> = Vec::with_capacity(n);
        for x in 0..n {
            let mut sig = signatures[x].clone();
            sig.sort_unstable();
            let mut h = colors[x].wrapping_mul(0x1000_0000_01b3);
            for v in sig {
                h = h.wrapping_mul(0x1000_0000_01b3).wrapping_add(v);
            }
            next.push(h);
        }
        if next == colors {
            break;
        }
        colors = next;
    }
    colors
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &Structure,
    b: &Structure,
    colors_a: &[u64],
    colors_b: &[u64],
    order: &[u32],
    index: usize,
    mapping: &mut Vec<Option<u32>>,
    used: &mut Vec<bool>,
) -> bool {
    if index == order.len() {
        return full_check(a, b, mapping);
    }
    let x = order[index] as usize;
    for y in 0..b.domain_size() {
        if used[y] || colors_a[x] != colors_b[y] {
            continue;
        }
        mapping[x] = Some(y as u32);
        used[y] = true;
        if partial_check(a, b, mapping, x as u32)
            && backtrack(a, b, colors_a, colors_b, order, index + 1, mapping, used)
        {
            return true;
        }
        mapping[x] = None;
        used[y] = false;
    }
    false
}

/// Checks all tuples involving `just_mapped` whose elements are all mapped.
fn partial_check(a: &Structure, b: &Structure, mapping: &[Option<u32>], just_mapped: u32) -> bool {
    for name in a.relation_names() {
        let rel_a = a.relation(name).unwrap();
        for tuple in rel_a.iter() {
            if !tuple.contains(&just_mapped) {
                continue;
            }
            let image: Option<Vec<u32>> = tuple.iter().map(|&x| mapping[x as usize]).collect();
            if let Some(image) = image {
                if !b.contains(name, &image) {
                    return false;
                }
            }
        }
    }
    true
}

/// Final verification that the complete mapping is an isomorphism in both
/// directions (tuple counts are equal, so one direction plus injectivity is
/// enough; injectivity is guaranteed by `used`).
fn full_check(a: &Structure, b: &Structure, mapping: &[Option<u32>]) -> bool {
    for name in a.relation_names() {
        let rel_a = a.relation(name).unwrap();
        for tuple in rel_a.iter() {
            let image: Vec<u32> = tuple.iter().map(|&x| mapping[x as usize].unwrap()).collect();
            if !b.contains(name, &image) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A directed cycle of length `n` with elements renamed by `shift`.
    fn cycle(n: u32, shift: u32) -> Structure {
        let mut s = Structure::new(n as usize);
        for i in 0..n {
            s.insert("E", &[(i + shift) % n, (i + 1 + shift) % n]);
        }
        s
    }

    #[test]
    fn isomorphic_cycles() {
        let a = cycle(6, 0);
        let b = cycle(6, 3);
        let iso = find_isomorphism(&a, &b).expect("cycles are isomorphic");
        // Verify the witness.
        for i in 0..6u32 {
            assert!(b.contains("E", &[iso[i as usize], iso[((i + 1) % 6) as usize]]));
        }
    }

    #[test]
    fn non_isomorphic_different_size() {
        assert!(!isomorphic(&cycle(5, 0), &cycle(6, 0)));
    }

    #[test]
    fn non_isomorphic_same_counts() {
        // A 6-cycle vs two 3-cycles: same number of elements and edges.
        let a = cycle(6, 0);
        let mut b = Structure::new(6);
        for offset in [0u32, 3] {
            for i in 0..3 {
                b.insert("E", &[offset + i, offset + (i + 1) % 3]);
            }
        }
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn respects_unary_relations() {
        let mut a = cycle(4, 0);
        a.insert("Mark", &[0]);
        let mut b = cycle(4, 0);
        b.insert("Mark", &[1]);
        // Still isomorphic (rotate by one).
        assert!(isomorphic(&a, &b));
        let mut c = cycle(4, 0);
        c.insert("Mark", &[0]);
        c.insert("Mark", &[1]);
        assert!(!isomorphic(&a, &c));
    }

    #[test]
    fn empty_structures() {
        assert!(isomorphic(&Structure::new(0), &Structure::new(0)));
        assert!(!isomorphic(&Structure::new(0), &Structure::new(1)));
    }

    #[test]
    fn directed_vs_reversed_path() {
        let mut a = Structure::new(3);
        a.insert("E", &[0, 1]);
        a.insert("E", &[1, 2]);
        let mut b = Structure::new(3);
        b.insert("E", &[2, 1]);
        b.insert("E", &[1, 0]);
        // Reversing a path is an isomorphic directed graph (relabel endpoints).
        assert!(isomorphic(&a, &b));
        let mut c = Structure::new(3);
        c.insert("E", &[0, 1]);
        c.insert("E", &[0, 2]);
        assert!(!isomorphic(&a, &c));
    }
}
