//! Effective translations into invariant-side queries (Theorems 3.4, 4.1, 4.2).

use topo_invariant::invert::InvertError;
use topo_invariant::TopologicalInvariant;
use topo_relational::Structure;
use topo_spatial::{DirectEvaluator, PointFormula, RealFormula};

/// Builds a copy of the invariant's relational form on an auxiliary *ordered*
/// domain: the export of [`TopologicalInvariant::to_structure`] augmented with
/// the numeric scaffolding (`Succ`, `NumLess`, …) and a total order `CellOrder`
/// on the cells. This is the object the fixpoint+counting query of
/// Theorem 3.4 constructs; once it exists, any PTIME query can be evaluated
/// on it by an order-aware fixpoint program (Immerman–Vardi).
///
/// The cell order used here is the deterministic export order, which is
/// enough for query evaluation; [`canonical_ordered_copy`] instead uses the
/// canonical order of Theorem 3.4 (invariant under isomorphism), the object
/// the logical-definability argument needs.
///
/// ```
/// use topo_spatial::{Region, SpatialInstance};
/// use topo_translate::ordered_copy;
///
/// // A single rectangle: a 3-cell invariant (boundary curve, inside, outside).
/// let instance =
///     SpatialInstance::from_regions([("P", Region::rectangle(0, 0, 100, 100))]);
/// let invariant = topo_invariant::top(&instance);
/// assert_eq!(invariant.cell_count(), 3);
/// let ordered = ordered_copy(&invariant);
/// // The copy carries the numeric scaffolding and a strict total order on
/// // the 3 cells: 3 ordered pairs.
/// assert!(ordered.relation("Succ").is_some());
/// assert_eq!(ordered.relation("CellOrder").unwrap().len(), 3);
/// ```
pub fn ordered_copy(invariant: &TopologicalInvariant) -> Structure {
    // Export order: the cell elements in ascending domain order.
    let elements: Vec<u32> = (2..(invariant.cell_count() as u32 + 2)).collect();
    with_cell_order(invariant, &elements)
}

/// An ordered copy whose `CellOrder` is the *canonical* cell order realising
/// the invariant's canonical code ([`TopologicalInvariant::canonical_cell_order`],
/// cached on the invariant). Unlike [`ordered_copy`], this order is invariant
/// under isomorphism: isomorphic invariants yield isomorphic canonical ordered
/// copies, which is exactly the order Theorem 3.4's fixpoint+counting query
/// defines before handing the structure to an order-aware program
/// (Immerman–Vardi).
///
/// ```
/// use topo_spatial::{Region, SpatialInstance};
/// use topo_translate::canonical_ordered_copy;
///
/// // The same topology drawn at two different places.
/// let a = topo_invariant::top(&SpatialInstance::from_regions([
///     ("P", Region::rectangle(0, 0, 100, 100)),
/// ]));
/// let b = topo_invariant::top(&SpatialInstance::from_regions([
///     ("P", Region::rectangle(500, 500, 900, 700)),
/// ]));
/// assert!(a.is_isomorphic_to(&b));
/// // The canonical order is isomorphism-invariant, so the ordered copies
/// // are isomorphic structures.
/// assert!(topo_relational::isomorphic(
///     &canonical_ordered_copy(&a),
///     &canonical_ordered_copy(&b),
/// ));
/// ```
pub fn canonical_ordered_copy(invariant: &TopologicalInvariant) -> Structure {
    let elements: Vec<u32> = invariant
        .canonical_cell_order()
        .iter()
        .map(|&(kind, id)| invariant.cell_element(kind, id))
        .collect();
    with_cell_order(invariant, &elements)
}

/// The shared scaffold of the ordered copies: the relational export plus the
/// numeric relations plus `CellOrder` as the strict total order listing the
/// given domain elements first to last.
fn with_cell_order(invariant: &TopologicalInvariant, elements: &[u32]) -> Structure {
    let mut structure = invariant.to_structure();
    structure.add_numeric_relations();
    structure.add_relation("CellOrder", 2);
    for (i, &a) in elements.iter().enumerate() {
        for &b in &elements[i + 1..] {
            structure.insert("CellOrder", &[a, b]);
        }
    }
    structure
}

/// A topological spatial query translated to run against the invariant
/// (Theorem 4.1 / 4.2).
///
/// The paper's translation produces a fixpoint+counting sentence that (a)
/// rebuilds an ordered copy of the invariant, (b) simulates the PTIME Turing
/// machine that inverts the invariant into a linear instance `J` (Theorem
/// 2.2) and evaluates the original sentence on `J`. This type executes that
/// very computation natively: `evaluate` inverts the invariant and runs the
/// sentence with the direct evaluator. The translation itself
/// ([`TranslatedQuery::new`]) is linear time in the size of the formula, as
/// Theorem 4.1(2) states.
#[derive(Clone, Debug)]
pub struct TranslatedQuery {
    formula: PointFormula,
    real_form: RealFormula,
}

impl TranslatedQuery {
    /// Translates a topological `FO(P, <x, <y)` sentence. The input is assumed
    /// to be topological (the paper makes the same assumption; topologicality
    /// of `FO(R,<)` sentences is undecidable).
    ///
    /// ```
    /// use topo_spatial::{PointFormula, Region, SpatialInstance};
    /// use topo_translate::TranslatedQuery;
    ///
    /// // ∀p (p ∈ lake → p ∈ park): the containment sentence.
    /// let sentence = PointFormula::Forall(
    ///     0,
    ///     Box::new(
    ///         PointFormula::InRegion { region: 1, var: 0 }
    ///             .implies(PointFormula::InRegion { region: 0, var: 0 }),
    ///     ),
    /// );
    /// let query = TranslatedQuery::new(sentence);
    ///
    /// let instance = SpatialInstance::from_regions([
    ///     ("park", Region::rectangle(0, 0, 100, 100)),
    ///     ("lake", Region::rectangle(30, 30, 70, 70)),
    /// ]);
    /// let invariant = topo_invariant::top(&instance);
    /// // φ(I) = inv(φ)(top(I)) — Theorem 4.1(1).
    /// assert_eq!(
    ///     query.evaluate_on_instance(&instance),
    ///     query.evaluate(&invariant).unwrap(),
    /// );
    /// ```
    ///
    /// # Panics
    /// Panics if the formula is not a sentence.
    pub fn new(formula: PointFormula) -> Self {
        assert!(formula.is_sentence(), "only sentences can be translated");
        let real_form = formula.to_real();
        TranslatedQuery { formula, real_form }
    }

    /// The `FO(R, <)` form of the translated sentence.
    pub fn real_formula(&self) -> &RealFormula {
        &self.real_form
    }

    /// The point-language form of the translated sentence.
    pub fn point_formula(&self) -> &PointFormula {
        &self.formula
    }

    /// Size of the translated query; linear in the input size (Theorem
    /// 4.1(2)).
    pub fn size(&self) -> usize {
        self.formula.size()
    }

    /// Evaluates the translated query against a topological invariant: invert
    /// to a linear instance (Theorem 2.2) and evaluate the sentence on it.
    /// Because the sentence is topological and the rebuilt instance is
    /// topologically equivalent to the original, the answer equals the answer
    /// on the original spatial database.
    pub fn evaluate(&self, invariant: &TopologicalInvariant) -> Result<bool, InvertError> {
        let instance = topo_invariant::invert(invariant)?;
        Ok(DirectEvaluator::new(&instance).evaluate(&self.formula))
    }

    /// Evaluates the query directly on a spatial instance (the left-hand side
    /// of Theorem 4.1(1): `φ(I)`).
    pub fn evaluate_on_instance(&self, instance: &topo_spatial::SpatialInstance) -> bool {
        DirectEvaluator::new(instance).evaluate(&self.formula)
    }
}

/// Counts cells of each kind in an ordered copy — a tiny order-invariant
/// sanity query used by tests and the experiments harness.
///
/// ```
/// use topo_spatial::{Region, SpatialInstance};
///
/// let invariant = topo_invariant::top(&SpatialInstance::from_regions([
///     ("P", Region::rectangle(0, 0, 100, 100)),
/// ]));
/// let ordered = topo_translate::ordered_copy(&invariant);
/// // (vertices, edges, faces): the rectangle reduces to one closed curve
/// // between two faces, and the census agrees with the invariant itself.
/// assert_eq!(topo_translate::cell_census(&ordered), (0, 1, 2));
/// assert_eq!(
///     topo_translate::cell_census(&ordered),
///     topo_translate::invariant_census(&invariant),
/// );
/// ```
pub fn cell_census(structure: &Structure) -> (usize, usize, usize) {
    let count = |name: &str| structure.relation(name).map(|r| r.len()).unwrap_or(0);
    (count("Vertex"), count("Edge"), count("Face"))
}

/// Convenience: the kinds and counts of an invariant, for comparison with
/// [`cell_census`].
pub fn invariant_census(invariant: &TopologicalInvariant) -> (usize, usize, usize) {
    (invariant.vertex_count(), invariant.edge_count(), invariant.face_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_invariant::top;
    use topo_spatial::{Region, SpatialInstance};

    fn nested_instance() -> SpatialInstance {
        SpatialInstance::from_regions([
            ("P", Region::rectangle(0, 0, 100, 100)),
            ("Q", Region::rectangle(20, 20, 80, 80)),
        ])
    }

    fn containment_sentence() -> PointFormula {
        PointFormula::Forall(
            0,
            Box::new(
                PointFormula::InRegion { region: 1, var: 0 }
                    .implies(PointFormula::InRegion { region: 0, var: 0 }),
            ),
        )
    }

    #[test]
    fn ordered_copy_has_order_and_census() {
        let invariant = top(&nested_instance());
        let structure = ordered_copy(&invariant);
        assert!(structure.relation("CellOrder").is_some());
        assert!(structure.relation("Succ").is_some());
        assert_eq!(cell_census(&structure), invariant_census(&invariant));
        // The order is total on the cell part of the domain.
        let cells = structure.domain_size() - 2;
        assert_eq!(structure.relation("CellOrder").unwrap().len(), cells * (cells - 1) / 2);
    }

    #[test]
    fn canonical_ordered_copies_of_isomorphic_invariants_are_isomorphic() {
        // Isomorphic invariants from different geometry: the canonical cell
        // order is isomorphism-invariant, so the canonical ordered copies are
        // isomorphic structures — the deterministic export order need not be.
        let a = top(&nested_instance());
        let b = top(&SpatialInstance::from_regions([
            ("P", Region::rectangle(500, -300, 900, 100)),
            ("Q", Region::rectangle(600, -200, 800, 0)),
        ]));
        assert!(a.is_isomorphic_to(&b));
        let (ca, cb) = (canonical_ordered_copy(&a), canonical_ordered_copy(&b));
        assert_eq!(cell_census(&ca), cell_census(&cb));
        // The canonical order is total on the cell part of the domain.
        let cells = ca.domain_size() - 2;
        assert_eq!(ca.relation("CellOrder").unwrap().len(), cells * (cells - 1) / 2);
        assert!(topo_relational::isomorphic(&ca, &cb));
    }

    #[test]
    fn translated_query_agrees_with_direct_evaluation() {
        let instance = nested_instance();
        let invariant = top(&instance);
        let query = TranslatedQuery::new(containment_sentence());
        // φ(I) = inv(φ)(top(I)) — Theorem 4.1(1).
        assert_eq!(query.evaluate_on_instance(&instance), query.evaluate(&invariant).unwrap());
        assert!(query.evaluate(&invariant).unwrap());

        // A false sentence stays false through the translation.
        let reversed = TranslatedQuery::new(PointFormula::Forall(
            0,
            Box::new(
                PointFormula::InRegion { region: 0, var: 0 }
                    .implies(PointFormula::InRegion { region: 1, var: 0 }),
            ),
        ));
        assert!(!reversed.evaluate(&invariant).unwrap());
    }

    #[test]
    fn translation_is_linear_in_formula_size() {
        let base = containment_sentence();
        let query = TranslatedQuery::new(base.clone());
        assert_eq!(query.size(), base.size());
        assert_eq!(query.real_formula().quantifier_depth(), 2 * base.quantifier_depth());
    }
}
