//! Whole-invariant parameterised orderings (Lemma 3.1 and Theorem 3.2).
//!
//! Lemma 3.1 defines, for every connected component and every admissible
//! parameter choice (orientation, vertex, adjacent proper edge), a total order
//! of the component's vertices, edges and faces. Theorem 3.2 glues the
//! per-component orders into total orders of the whole invariant (one per
//! combination of choices) and runs the given order-invariant query on all of
//! them simultaneously: since the query is order-invariant, every ordering
//! yields the same answer. This module makes those objects concrete so the
//! experiments can *check* the order-invariance claim rather than assume it.

use topo_invariant::canonical::{component_orderings, CellRef, ComponentOrdering, Orientation};
use topo_invariant::TopologicalInvariant;

/// A total order of all cells of the invariant, obtained from one parameter
/// choice per connected component.
#[derive(Clone, Debug)]
pub struct InvariantOrdering {
    /// The global orientation used.
    pub orientation: Orientation,
    /// The per-component parameter choices `(component, start vertex, start
    /// edge)`.
    pub choices: Vec<(usize, Option<usize>, Option<usize>)>,
    /// The resulting total order on all cells (exterior face last).
    pub order: Vec<CellRef>,
}

/// Enumerates whole-invariant orderings: for each global orientation, the
/// product of the per-component choices of Lemma 3.1, capped at `limit`
/// orderings (the number of orderings is polynomial but the constant matters
/// for large invariants).
pub fn all_invariant_orderings(
    invariant: &TopologicalInvariant,
    limit: usize,
) -> Vec<InvariantOrdering> {
    let mut out = Vec::new();
    for orientation in [Orientation::CounterClockwise, Orientation::Clockwise] {
        let per_component: Vec<Vec<ComponentOrdering>> = (0..invariant.components().len())
            .map(|c| component_orderings(invariant, c, orientation))
            .collect();
        // Cartesian product, lazily truncated.
        let mut stack: Vec<usize> = vec![0; per_component.len()];
        loop {
            if out.len() >= limit {
                return out;
            }
            let selected: Vec<&ComponentOrdering> =
                per_component.iter().zip(&stack).map(|(options, &index)| &options[index]).collect();
            out.push(glue(invariant, orientation, &selected));
            // Advance the mixed-radix counter.
            let mut position = 0;
            loop {
                if position == stack.len() {
                    // Exhausted this orientation.
                    stack.clear();
                    break;
                }
                stack[position] += 1;
                if stack[position] < per_component[position].len() {
                    break;
                }
                stack[position] = 0;
                position += 1;
            }
            if stack.is_empty() {
                break;
            }
            if per_component.is_empty() {
                break;
            }
        }
    }
    out
}

fn glue(
    invariant: &TopologicalInvariant,
    orientation: Orientation,
    selected: &[&ComponentOrdering],
) -> InvariantOrdering {
    let mut order: Vec<CellRef> = Vec::with_capacity(invariant.cell_count());
    let mut choices = Vec::new();
    for (component, ordering) in selected.iter().enumerate() {
        choices.push((component, ordering.start_vertex, ordering.start_edge));
        order.extend(ordering.order.iter().copied());
    }
    // The exterior face is owned by no component; it closes the order.
    order.push((topo_invariant::CellKind::Face, invariant.exterior_face()));
    InvariantOrdering { orientation, choices, order }
}

/// Runs an order-dependent computation under every ordering (up to `limit`)
/// and reports whether all runs produced the same answer, together with that
/// answer. This is the experimental check of Theorem 3.2's "run the query on
/// all orderings simultaneously" argument.
pub fn orderings_agree<T: PartialEq + Clone>(
    invariant: &TopologicalInvariant,
    limit: usize,
    mut query: impl FnMut(&InvariantOrdering) -> T,
) -> (bool, Option<T>) {
    let orderings = all_invariant_orderings(invariant, limit);
    let mut result: Option<T> = None;
    for ordering in &orderings {
        let value = query(ordering);
        match &result {
            None => result = Some(value),
            Some(existing) => {
                if *existing != value {
                    return (false, result);
                }
            }
        }
    }
    (true, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_invariant::{top, CellKind};
    use topo_spatial::{Region, SpatialInstance};

    fn instance() -> SpatialInstance {
        let mut p = Region::rectangle(0, 0, 100, 100);
        p.add_polyline(vec![
            topo_geometry::Point::from_ints(100, 100),
            topo_geometry::Point::from_ints(150, 150),
        ]);
        SpatialInstance::from_regions([("P", p), ("Q", Region::rectangle(200, 0, 300, 100))])
    }

    #[test]
    fn every_ordering_is_a_permutation_of_all_cells() {
        let invariant = top(&instance());
        let orderings = all_invariant_orderings(&invariant, 64);
        assert!(!orderings.is_empty());
        for ordering in &orderings {
            assert_eq!(ordering.order.len(), invariant.cell_count());
            let set: std::collections::HashSet<_> = ordering.order.iter().collect();
            assert_eq!(set.len(), invariant.cell_count());
        }
    }

    #[test]
    fn order_invariant_queries_agree_across_orderings() {
        let invariant = top(&instance());
        // An order-invariant query: the number of edge cells.
        let (agree, value) = orderings_agree(&invariant, 64, |ordering| {
            ordering.order.iter().filter(|(kind, _)| *kind == CellKind::Edge).count()
        });
        assert!(agree);
        assert_eq!(value, Some(invariant.edge_count()));
        // An order-dependent query need not agree (first cell kind).
        let orderings = all_invariant_orderings(&invariant, 64);
        assert!(orderings.len() > 1);
    }
}
