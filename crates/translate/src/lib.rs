//! Translation of topological spatial queries into queries on the invariant
//! (Segoufin–Vianu, Sections 3 and 4).
//!
//! * [`orderings`] — the parameterised orderings of Lemma 3.1 lifted to whole
//!   invariants (the formula Ψ_π of Theorem 3.2): every admissible parameter
//!   choice yields a total order on the cells, and order-invariant queries
//!   evaluate identically on all of them.
//! * [`translate`] — the effective translations: the ordered copy of the
//!   invariant on an auxiliary ordered domain (the object Theorem 3.4's
//!   fixpoint+counting query constructs), and the linear-time translation of
//!   topological `FO(P,<x,<y)` / `FO(R,<)` sentences into invariant-side
//!   queries that evaluate by inverting the invariant and running the
//!   sentence on the rebuilt linear instance (the computation that the
//!   fixpoint+counting query of Theorem 4.1 simulates).
//! * [`cycles`] — the Section 4 machinery for single-region schemas: the
//!   coloured cycles `cycles(I)` read off the invariant (Lemma 4.5), r-type
//!   equivalence of coloured cyclic words via Ehrenfeucht–Fraïssé games
//!   (Lemmas 4.6–4.8), the `≈r` equivalence of Lemma 4.7, and a
//!   finite-universe variant of the Theorem 4.9 translation into `FO_inv`
//!   whose cost explodes with the quantifier depth — the hyperexponential
//!   behaviour the paper reports.

pub mod cycles;
pub mod orderings;
pub mod translate;

pub use cycles::{
    cycles_equivalent, cycles_of, equivalent_lemma_4_7, ColoredCycle, CycleColor,
    SingleRegionTranslator,
};
pub use orderings::{all_invariant_orderings, orderings_agree, InvariantOrdering};
pub use translate::{
    canonical_ordered_copy, cell_census, invariant_census, ordered_copy, TranslatedQuery,
};
