//! The Section 4 machinery for single-region schemas: coloured cycles,
//! r-types, and the (finite-universe) translation into `FO_inv`.
//!
//! For a schema with a single region name, \[KPV97\] shows that topological
//! elementary equivalence of instances is characterised by the *cone type*:
//! the multiset of vertices together with the cyclic list of the edges and
//! faces around them, each labelled by whether it belongs to the region. The
//! paper reads those cyclic lists directly off the invariant (`cycles(I)`,
//! Lemma 4.5), compares them with Ehrenfeucht–Fraïssé games on coloured
//! cyclic words (Lemma 4.6), extends the comparison to multisets of cycles
//! (`≈r`, Lemma 4.7), and obtains an effective — but hyperexponential —
//! translation of `FO_top(R,<)` sentences into `FO_inv` (Theorem 4.9).
//!
//! This module implements those objects. The full Lemma 4.8 enumeration of
//! dot-depth-`r` languages is replaced by a *finite-universe* variant: the
//! translation is computed relative to a caller-supplied family of candidate
//! instances whose cycles realise the types of interest; its cost already
//! grows explosively with `r`, which is what experiment E7 measures (see
//! DESIGN.md for the substitution note).

use topo_invariant::{ConeItem, TopologicalInvariant};
use topo_relational::{fo_equivalent, Structure};
use topo_spatial::{DirectEvaluator, PointFormula, RegionId, SpatialInstance};

/// The colour of one node of a coloured cycle: what kind of cell it is and
/// whether it belongs to the region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CycleColor {
    /// True for a face node, false for an edge node.
    pub is_face: bool,
    /// True when the cell belongs to the region.
    pub in_region: bool,
}

/// A coloured cycle: the cyclic sequence of colours of the cells around one
/// vertex, read counterclockwise.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ColoredCycle {
    /// The colours, in counterclockwise order.
    pub colors: Vec<CycleColor>,
}

impl ColoredCycle {
    /// Length of the cycle.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// True iff the cycle is empty.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The cycle read in the opposite (clockwise) orientation.
    pub fn reversed(&self) -> ColoredCycle {
        let mut colors = self.colors.clone();
        colors.reverse();
        ColoredCycle { colors }
    }

    /// Encodes the cycle as a relational structure: one element per position,
    /// unary colour predicates, and the cyclic successor relation. EF games on
    /// these structures decide the r-type equivalence used by Lemmas 4.6–4.8.
    pub fn to_structure(&self) -> Structure {
        let n = self.colors.len();
        let mut s = Structure::new(n);
        s.add_relation("FaceNode", 1);
        s.add_relation("InRegion", 1);
        s.add_relation("Next", 2);
        for (i, color) in self.colors.iter().enumerate() {
            if color.is_face {
                s.insert("FaceNode", &[i as u32]);
            }
            if color.in_region {
                s.insert("InRegion", &[i as u32]);
            }
            if n > 1 {
                s.insert("Next", &[i as u32, ((i + 1) % n) as u32]);
            }
        }
        s
    }
}

/// Reads `cycles(I)` off an invariant: one coloured cycle per vertex, for the
/// given region (Lemma 4.5 — the construction is first-order over the
/// invariant; here it is executed directly).
pub fn cycles_of(invariant: &TopologicalInvariant, region: RegionId) -> Vec<ColoredCycle> {
    (0..invariant.vertex_count())
        .map(|v| {
            let colors = invariant
                .cone(v)
                .into_iter()
                .map(|item| match item {
                    ConeItem::Edge(e) => CycleColor {
                        is_face: false,
                        in_region: invariant.edge_regions(e).contains(region),
                    },
                    ConeItem::Face(f) => CycleColor {
                        is_face: true,
                        in_region: invariant.face_regions(f).contains(region),
                    },
                })
                .collect();
            ColoredCycle { colors }
        })
        .collect()
}

/// FO_r equivalence of two coloured cycles, orientation taken into account by
/// comparing against both readings of the second cycle (an orientation swap
/// is a homeomorphism of the plane, so a reflected cycle is equivalent).
pub fn cycles_equivalent(a: &ColoredCycle, b: &ColoredCycle, r: usize) -> bool {
    let sa = a.to_structure();
    fo_equivalent(&sa, &b.to_structure(), r) || fo_equivalent(&sa, &b.reversed().to_structure(), r)
}

/// The `≈r` relation of Lemma 4.7 on two invariants of a single-region
/// schema: for each (r+2)-type of coloured cycles, both invariants contain
/// the same number of cycles of that type, or both contain more than `2^r`.
pub fn equivalent_lemma_4_7(
    a: &TopologicalInvariant,
    b: &TopologicalInvariant,
    region: RegionId,
    r: usize,
) -> bool {
    let cycles_a = cycles_of(a, region);
    let cycles_b = cycles_of(b, region);
    let game_rounds = r + 2;
    let threshold = 1usize << r;
    // Group all cycles (from both sides) into type classes.
    let mut representatives: Vec<ColoredCycle> = Vec::new();
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for (side, cycles) in [(0usize, &cycles_a), (1usize, &cycles_b)] {
        for cycle in cycles {
            let class =
                representatives.iter().position(|rep| cycles_equivalent(rep, cycle, game_rounds));
            match class {
                Some(i) => {
                    if side == 0 {
                        counts[i].0 += 1;
                    } else {
                        counts[i].1 += 1;
                    }
                }
                None => {
                    representatives.push(cycle.clone());
                    counts.push(if side == 0 { (1, 0) } else { (0, 1) });
                }
            }
        }
    }
    counts.iter().all(|&(ca, cb)| ca == cb || (ca > threshold && cb > threshold))
}

/// The finite-universe variant of the Theorem 4.9 translator for single-region
/// schemas.
///
/// The translator is built from a family of *candidate instances* whose cone
/// structures realise the (r+2)-types of interest. Translating a sentence
/// `φ` amounts to evaluating `φ` on every candidate (Lemma 4.8's step (ii))
/// and remembering the cycle-type summaries of the satisfying ones; the
/// translated query then accepts an invariant iff its own summary is
/// `≈r`-equivalent to one of the remembered summaries (the disjunction `(*)`
/// in the paper). The work grows with the number of candidates and with
/// `2^r`, reproducing the blow-up in `r` that makes the FO target expensive
/// compared to the fixpoint target (Remark (ii) after Theorem 4.9).
pub struct SingleRegionTranslator {
    /// The quantifier-depth parameter `r`.
    pub r: usize,
    region: RegionId,
    candidates: Vec<(SpatialInstance, TopologicalInvariant)>,
}

impl SingleRegionTranslator {
    /// Builds a translator from candidate instances over a single-region
    /// schema.
    pub fn new(r: usize, region: RegionId, candidates: Vec<SpatialInstance>) -> Self {
        let candidates = candidates
            .into_iter()
            .map(|instance| {
                let invariant = topo_invariant::top(&instance);
                (instance, invariant)
            })
            .collect();
        SingleRegionTranslator { r, region, candidates }
    }

    /// Number of candidate instances.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Translates a topological sentence of quantifier depth at most `r` into
    /// an invariant-side classifier. Returns the classifier together with the
    /// number of `≈r` classes it had to examine (the measured translation
    /// cost).
    pub fn translate(&self, formula: &PointFormula) -> (TranslatedFoQuery, usize) {
        assert!(formula.is_sentence(), "only sentences can be translated");
        let mut accepted: Vec<TopologicalInvariant> = Vec::new();
        let mut examined = 0usize;
        for (instance, invariant) in &self.candidates {
            examined += 1;
            // Skip candidates equivalent to an already accepted one.
            if accepted
                .iter()
                .any(|prev| equivalent_lemma_4_7(prev, invariant, self.region, self.r))
            {
                continue;
            }
            if DirectEvaluator::new(instance).evaluate(formula) {
                accepted.push(invariant.clone());
            }
        }
        (TranslatedFoQuery { r: self.r, region: self.region, accepted }, examined)
    }
}

/// The result of translating a single-region topological sentence into an
/// invariant-side first-order classifier (the sentence `(*)` of Section 4):
/// a disjunction over the accepted `≈r` classes.
pub struct TranslatedFoQuery {
    /// The quantifier-depth parameter.
    pub r: usize,
    region: RegionId,
    accepted: Vec<TopologicalInvariant>,
}

impl TranslatedFoQuery {
    /// Number of accepted equivalence classes (the size of the disjunction).
    pub fn class_count(&self) -> usize {
        self.accepted.len()
    }

    /// Evaluates the translated query on an invariant.
    pub fn evaluate(&self, invariant: &TopologicalInvariant) -> bool {
        self.accepted
            .iter()
            .any(|accepted| equivalent_lemma_4_7(accepted, invariant, self.region, self.r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_invariant::top;
    use topo_spatial::{Region, Schema};

    fn single(region: Region) -> SpatialInstance {
        let mut instance = SpatialInstance::new(Schema::from_names(["P"]));
        instance.set_region(0, region);
        instance
    }

    fn cross_instance() -> SpatialInstance {
        // Two crossing polylines: a degree-4 cone.
        let mut r = Region::polyline(vec![
            topo_geometry::Point::from_ints(0, 0),
            topo_geometry::Point::from_ints(10, 10),
        ]);
        r.add_polyline(vec![
            topo_geometry::Point::from_ints(0, 10),
            topo_geometry::Point::from_ints(10, 0),
        ]);
        single(r)
    }

    #[test]
    fn cycles_read_off_the_invariant() {
        let invariant = top(&cross_instance());
        let cycles = cycles_of(&invariant, 0);
        // Five vertices: the crossing (degree 4) and four tips (degree 1).
        assert_eq!(cycles.len(), 5);
        let longest = cycles.iter().map(|c| c.len()).max().unwrap();
        assert_eq!(longest, 8); // 4 edges + 4 face sectors around the crossing
        for cycle in &cycles {
            // Colours alternate edge/face around every vertex.
            for (i, color) in cycle.colors.iter().enumerate() {
                assert_eq!(color.is_face, i % 2 == 1);
            }
        }
    }

    #[test]
    fn cycle_equivalence_respects_length_and_colors() {
        let a = ColoredCycle {
            colors: vec![
                CycleColor { is_face: false, in_region: true },
                CycleColor { is_face: true, in_region: false },
            ],
        };
        let b = a.clone();
        assert!(cycles_equivalent(&a, &b, 2));
        let c = ColoredCycle {
            colors: vec![
                CycleColor { is_face: false, in_region: true },
                CycleColor { is_face: true, in_region: true },
            ],
        };
        assert!(!cycles_equivalent(&a, &c, 2));
    }

    #[test]
    fn lemma_4_7_distinguishes_different_cone_counts() {
        // One crossing vs a single straight polyline: different cone multisets.
        let a = top(&cross_instance());
        let b = top(&single(Region::polyline(vec![
            topo_geometry::Point::from_ints(0, 0),
            topo_geometry::Point::from_ints(10, 0),
        ])));
        assert!(!equivalent_lemma_4_7(&a, &b, 0, 1));
        // An instance is always equivalent to itself.
        assert!(equivalent_lemma_4_7(&a, &a, 0, 2));
        // A translated (homeomorphic) copy is equivalent.
        let shifted = topo_spatial::transform::AffineMap::translation(500, 500)
            .apply_instance(&cross_instance());
        assert!(equivalent_lemma_4_7(&a, &top(&shifted), 0, 2));
    }

    #[test]
    fn single_region_translation_roundtrip() {
        // Sentence: "region P is nonempty" (depth 1).
        let nonempty =
            PointFormula::Exists(0, Box::new(PointFormula::InRegion { region: 0, var: 0 }));
        let candidates = vec![
            cross_instance(),
            single(Region::polyline(vec![
                topo_geometry::Point::from_ints(0, 0),
                topo_geometry::Point::from_ints(10, 0),
            ])),
        ];
        let translator = SingleRegionTranslator::new(1, 0, candidates);
        let (query, examined) = translator.translate(&nonempty);
        assert_eq!(examined, 2);
        assert!(query.class_count() >= 1);
        // The translated classifier accepts the invariants of instances that
        // satisfy the sentence.
        assert!(query.evaluate(&top(&cross_instance())));
    }
}
