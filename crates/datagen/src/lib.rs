//! Seeded synthetic cartographic workloads.
//!
//! The paper's practical-considerations section measures the size of the
//! topological invariant against three real cartographic data sets (two from
//! Sequoia 2000, one from the French IGN). Those data sets are proprietary,
//! so this crate provides deterministic, seeded generators whose *shape
//! parameters* (number of polygons, points per polygon, bounded number of
//! lines meeting at a point, thematic classes) match the published statistics;
//! DESIGN.md records the substitution.
//!
//! All generators return ordinary [`SpatialInstance`]s, so they compose with
//! every other crate of the workspace. Besides the statistics-matched data
//! sets, [`figure1`] and [`nested_rings`] reproduce the paper's running
//! examples, and the hydrography-style workloads stay inside the class
//! supported by the Theorem 2.2 inversion (pairwise non-crossing
//! boundaries), so round-trip experiments can use them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use topo_geometry::Point;
use topo_spatial::{Region, Schema, SpatialInstance};

/// Scale knob shared by the generators: roughly the number of polygons
/// produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Cells per side of the underlying generation lattice.
    pub grid: usize,
}

impl Scale {
    /// A small scale suitable for unit tests.
    pub fn tiny() -> Self {
        Scale { grid: 4 }
    }

    /// The default experiment scale.
    pub fn medium() -> Self {
        Scale { grid: 16 }
    }

    /// A larger scale for the dataset-statistics experiment.
    pub fn large() -> Self {
        Scale { grid: 40 }
    }
}

/// A land-cover map in the style of the first Sequoia 2000 data set: a
/// subdivision of a rectangle into grid-aligned patches, each assigned one of
/// the land-use classes the paper lists (agriculture, range land, forest,
/// lake, bay, estuary, wetland, beach, tundra). Patches of the same class
/// share boundaries with other classes, so the arrangement has many
/// degree-3/degree-4 junction vertices — the "lines intersecting at a point"
/// statistic stays small and bounded, as in the paper's data.
pub fn sequoia_landcover(scale: Scale, seed: u64) -> SpatialInstance {
    let classes = [
        "agriculture",
        "range_land",
        "forest",
        "lake",
        "bay",
        "estuary",
        "wetland",
        "beach",
        "tundra",
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = scale.grid.max(2);
    let cell = 100i64;
    // Perturbed lattice of corner points so patches are not all rectangles.
    let mut corners = vec![vec![Point::origin(); n + 1]; n + 1];
    #[allow(clippy::needless_range_loop)]
    for i in 0..=n {
        for j in 0..=n {
            let dx = if i == 0 || i == n { 0 } else { rng.gen_range(-30..=30) };
            let dy = if j == 0 || j == n { 0 } else { rng.gen_range(-30..=30) };
            corners[i][j] = Point::from_ints(i as i64 * cell + dx, j as i64 * cell + dy);
        }
    }
    let mut instance = SpatialInstance::new(Schema::from_names(classes));
    for i in 0..n {
        for j in 0..n {
            let class = rng.gen_range(0..classes.len());
            let ring =
                vec![corners[i][j], corners[i + 1][j], corners[i + 1][j + 1], corners[i][j + 1]];
            instance.region_mut(class).add_ring(ring);
        }
    }
    instance
}

/// A hydrography layer in the style of the second Sequoia 2000 data set:
/// disjoint lakes (polygons with a varying number of shoreline points), a few
/// lakes with islands, rivers as polylines, and estuaries as a separate
/// class. All boundaries are pairwise disjoint, so the invariant's skeleton
/// consists of closed curves and paths — the class supported by the
/// Theorem 2.2 inversion.
pub fn sequoia_hydro(scale: Scale, seed: u64) -> SpatialInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = scale.grid.max(2);
    let cell = 1_000i64;
    let mut lakes = Region::new();
    let mut islands = Region::new();
    let mut rivers = Region::new();
    let mut estuaries = Region::new();
    for i in 0..n {
        for j in 0..n {
            let x0 = i as i64 * cell;
            let y0 = j as i64 * cell;
            match rng.gen_range(0..5) {
                0 | 1 => {
                    // A lake: a convex-ish polygon inside the cell.
                    let shoreline_points = rng.gen_range(5..12);
                    let ring = blob(&mut rng, x0 + 100, y0 + 100, 700, shoreline_points);
                    lakes.add_ring(ring);
                    if rng.gen_bool(0.3) {
                        // An island inside the lake, belonging to a different
                        // thematic class. Kept well inside the lake's minimum
                        // shoreline radius so the two boundaries never touch.
                        let ring = rectangle_ring(x0 + 390, y0 + 390, 120, 110);
                        islands.add_ring(ring);
                    }
                }
                2 => {
                    // A river: a polyline wandering through the cell. The
                    // steps are bounded so the river never leaves its cell,
                    // keeping all hydrography features pairwise disjoint (the
                    // class of instances supported by the Theorem 2.2
                    // inversion).
                    let mut chain = Vec::new();
                    let mut x = x0 + 50;
                    let mut y = y0 + 50;
                    for _ in 0..rng.gen_range(4..7) {
                        chain.push(Point::from_ints(x, y));
                        x += rng.gen_range(60i64..130);
                        y += rng.gen_range(20i64..110);
                    }
                    rivers.add_polyline(chain);
                }
                3 => {
                    let ring = rectangle_ring(x0 + 200, y0 + 200, 500, 300);
                    estuaries.add_ring(ring);
                }
                _ => {}
            }
        }
    }
    SpatialInstance::from_regions([
        ("lakes", lakes),
        ("islands", islands),
        ("rivers", rivers),
        ("estuaries", estuaries),
    ])
}

/// A cadastral map in the style of the IGN "Orange" data set: a city boundary,
/// administrative districts subdividing it, a road network of polylines, and
/// point features (monuments).
pub fn ign_city(scale: Scale, seed: u64) -> SpatialInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = scale.grid.max(2);
    let cell = 200i64;
    let side = n as i64 * cell;
    let mut city = Region::new();
    city.add_ring(vec![
        Point::from_ints(0, 0),
        Point::from_ints(side, 0),
        Point::from_ints(side, side),
        Point::from_ints(0, side),
    ]);
    let mut districts = Region::new();
    for i in 0..n {
        for j in 0..n {
            if (i + j) % 2 == 0 {
                districts.add_ring(rectangle_ring(i as i64 * cell, j as i64 * cell, cell, cell));
            }
        }
    }
    let mut roads = Region::new();
    for k in 1..n {
        // Horizontal and vertical roads across the city, offset from district
        // boundaries so crossings have degree 4.
        let offset = k as i64 * cell - cell / 3;
        roads
            .add_polyline(vec![Point::from_ints(-50, offset), Point::from_ints(side + 50, offset)]);
        roads
            .add_polyline(vec![Point::from_ints(offset, -50), Point::from_ints(offset, side + 50)]);
    }
    let mut monuments = Region::new();
    for _ in 0..n {
        monuments.add_point(Point::from_ints(
            rng.gen_range(10..side - 10) | 1,
            rng.gen_range(10..side - 10) | 1,
        ));
    }
    SpatialInstance::from_regions([
        ("city", city),
        ("districts", districts),
        ("roads", roads),
        ("monuments", monuments),
    ])
}

/// Concentric nested rings of alternating regions: depth-`levels` nesting,
/// exercising the connected-component tree and the counting argument of
/// Theorem 3.4 (all rings of a level are isomorphic siblings).
pub fn nested_rings(levels: usize, siblings: usize) -> SpatialInstance {
    let mut a = Region::new();
    let mut b = Region::new();
    let span = 10_000i64;
    for s in 0..siblings.max(1) {
        let offset = s as i64 * span;
        for level in 0..levels.max(1) {
            let inset = level as i64 * 100;
            let ring = rectangle_ring(
                offset + inset,
                inset,
                span - 200 - 2 * inset,
                span - 200 - 2 * inset,
            );
            if level % 2 == 0 {
                a.add_ring(ring);
            } else {
                b.add_ring(ring);
            }
        }
    }
    SpatialInstance::from_regions([("even", a), ("odd", b)])
}

/// `count` disjoint square islands of a single region in the exterior face;
/// with the parity of `count` this is the running example for the
/// fixpoint-vs-counting separation (Theorem 3.4 / Remark after it).
pub fn scattered_islands(count: usize) -> SpatialInstance {
    let mut region = Region::new();
    for i in 0..count {
        region.add_ring(rectangle_ring(i as i64 * 300, 0, 200, 200));
    }
    SpatialInstance::from_regions([("islands", region)])
}

/// The running example of the paper's Figure 1: seven connected components
/// with two levels of nesting (two outer shapes, components embedded in their
/// faces, and further components embedded inside those).
pub fn figure1() -> SpatialInstance {
    // c1: a large region with a hole; c3, c7 inside its face; c4, c5, c6
    // nested one level deeper; c2: a separate component in the exterior face.
    let mut p = Region::new();
    // c1: annulus-like outer shape.
    p.add_ring(rectangle_ring(0, 0, 1000, 1000));
    // c2: separate island in the exterior.
    p.add_ring(rectangle_ring(1200, 0, 300, 300));
    let mut q = Region::new();
    // c3: a ring inside c1's face.
    q.add_ring(rectangle_ring(100, 100, 350, 350));
    // c7: a polyline inside c1's face.
    q.add_polyline(vec![
        Point::from_ints(600, 600),
        Point::from_ints(900, 600),
        Point::from_ints(900, 900),
    ]);
    let mut r = Region::new();
    // c4, c5: two rings inside c3's inner face.
    r.add_ring(rectangle_ring(150, 150, 100, 100));
    r.add_ring(rectangle_ring(300, 150, 100, 100));
    // c6: a point inside c3's inner face.
    r.add_point(Point::from_ints(200, 350));
    SpatialInstance::from_regions([("P", p), ("Q", q), ("R", r)])
}

fn rectangle_ring(x0: i64, y0: i64, width: i64, height: i64) -> Vec<Point> {
    vec![
        Point::from_ints(x0, y0),
        Point::from_ints(x0 + width, y0),
        Point::from_ints(x0 + width, y0 + height),
        Point::from_ints(x0, y0 + height),
    ]
}

/// A star-convex polygon ("blob") with `points` corners inside the square of
/// side `extent` anchored at `(x0, y0)`.
fn blob(rng: &mut SmallRng, x0: i64, y0: i64, extent: i64, points: usize) -> Vec<Point> {
    let cx = x0 + extent / 2;
    let cy = y0 + extent / 2;
    let mut ring = Vec::with_capacity(points);
    for k in 0..points {
        // Angles strictly increasing around the centre keep the ring simple.
        let angle = (k as f64 / points as f64) * std::f64::consts::TAU;
        let radius = rng.gen_range((extent / 4)..(extent / 2)) as f64;
        let x = cx + (radius * angle.cos()) as i64;
        let y = cy + (radius * angle.sin()) as i64;
        ring.push(Point::from_ints(x, y));
    }
    // Remove accidental consecutive duplicates caused by rounding.
    ring.dedup();
    if ring.len() >= 2 && ring[0] == *ring.last().unwrap() {
        ring.pop();
    }
    if ring.len() < 3 {
        return vec![
            Point::from_ints(cx - 50, cy - 50),
            Point::from_ints(cx + 50, cy - 50),
            Point::from_ints(cx, cy + 50),
        ];
    }
    ring
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = sequoia_landcover(Scale::tiny(), 42);
        let b = sequoia_landcover(Scale::tiny(), 42);
        assert_eq!(a.point_count(), b.point_count());
        let c = sequoia_landcover(Scale::tiny(), 43);
        // Different seeds perturb the lattice differently.
        assert_eq!(a.polygon_count(), c.polygon_count());
    }

    #[test]
    fn landcover_covers_grid() {
        let instance = sequoia_landcover(Scale::tiny(), 1);
        assert_eq!(instance.polygon_count(), 16);
        assert_eq!(instance.schema().len(), 9);
    }

    #[test]
    fn hydro_has_disjoint_features() {
        let instance = sequoia_hydro(Scale::tiny(), 7);
        assert!(instance.polygon_count() > 0);
        assert_eq!(instance.schema().len(), 4);
    }

    #[test]
    fn city_has_all_layers() {
        let instance = ign_city(Scale::tiny(), 3);
        assert_eq!(instance.schema().len(), 4);
        assert!(!instance.region_by_name("roads").unwrap().polylines.is_empty());
        assert!(!instance.region_by_name("monuments").unwrap().points.is_empty());
    }

    #[test]
    fn nested_rings_scale_with_levels() {
        let shallow = nested_rings(2, 1);
        let deep = nested_rings(5, 1);
        assert!(deep.point_count() > shallow.point_count());
        assert_eq!(scattered_islands(6).polygon_count(), 6);
    }

    #[test]
    fn figure1_builds() {
        let instance = figure1();
        assert_eq!(instance.schema().len(), 3);
        assert!(instance.point_count() > 20);
    }
}
