//! Instance removal and class garbage collection.
//!
//! Removal is a tombstone: the instance's slot becomes `None` and its id is
//! never reused, so a dangling id held by a client can only ever answer
//! `None`, never someone else's data. When the last member of a class
//! leaves, the class is collected — its representative `Arc` dropped (the
//! only deep state the store holds), its content address unregistered, its
//! id retired, and its memoised answers purged so no stale
//! `(class, query)` row survives the class it described.
//!
//! Lock discipline: the table mutation happens under the usual
//! `classes → instances` write locks (with the WAL removal record appended
//! inside the critical section, keeping WAL order = operation order); the
//! memo purge runs *after* both locks release, honouring the crate-wide
//! rule that memo shard locks never nest with the table locks. The window
//! in between is benign: a stale memo row keyed by a dead class id can no
//! longer be reached, because every lookup path re-resolves the class id
//! first and dead ids resolve to `None`.

use std::sync::atomic::Ordering;

use crate::{write_recover, ClassId, ClassTable, InstanceId, InstanceTable, InvariantStore};

/// Removes a dead instance from the tables: tombstones the slot, drops it
/// from the member list, and collects the class if it emptied. Returns the
/// class the instance belonged to and whether the class was collected, or
/// `None` if the id is unknown or already removed. Shared by the live
/// removal path and WAL replay so recovery reproduces removal semantics
/// exactly.
pub(crate) fn remove_from_tables(
    classes: &mut ClassTable,
    instances: &mut InstanceTable,
    id: InstanceId,
) -> Option<(ClassId, bool)> {
    let slot = instances.slots.get_mut(id)?;
    let class = slot.take()?;
    instances.live -= 1;
    let members = &mut classes.members[class];
    if let Some(pos) = members.iter().position(|&m| m == id) {
        members.remove(pos);
    }
    if !members.is_empty() {
        return Some((class, false));
    }
    // Last member gone: collect the class. The slot keeps its index (ids
    // are never reused); only the representative and the content address go.
    classes.reps[class] = None;
    let hash = classes.hashes[class];
    if let Some(candidates) = classes.by_hash.get_mut(&hash) {
        candidates.retain(|&c| c != class);
        if candidates.is_empty() {
            classes.by_hash.remove(&hash);
        }
    }
    classes.live -= 1;
    Some((class, true))
}

impl InvariantStore {
    /// Removes an ingested instance. Returns `true` if the id was live (and
    /// is now tombstoned), `false` for an unknown or already-removed id.
    ///
    /// If the instance was the last member of its class, the class is
    /// garbage-collected: [`class_representative`](Self::class_representative)
    /// / [`class_members`](Self::class_members) /
    /// [`query_class`](Self::query_class) answer `None` for it from now on,
    /// its memo entries are purged, its admission slot is freed, and its id
    /// is never reused. On a persistent store the removal is WAL-logged
    /// before the locks release.
    pub fn remove_instance(&self, id: InstanceId) -> bool {
        let collected = {
            let mut classes = write_recover(&self.classes, &self.counters);
            let mut instances = write_recover(&self.instances, &self.counters);
            let Some((class, collected)) = remove_from_tables(&mut classes, &mut instances, id)
            else {
                return false;
            };
            if self.persistence.is_some() {
                self.wal_remove(id);
            }
            self.counters.removals.fetch_add(1, Ordering::Relaxed);
            if collected {
                self.counters.gc_classes.fetch_add(1, Ordering::Relaxed);
            }
            collected.then_some(class)
        };
        if let Some(class) = collected {
            self.purge_class_memo(class);
        }
        true
    }

    /// Drops every memoised answer of a dead class, counting them into
    /// [`memo_invalidated`](crate::StoreStats::memo_invalidated). Runs
    /// outside the table locks; racing queries on the dying class either
    /// already resolved it (and at worst re-insert an entry that the next
    /// purge or eviction removes — harmless, since dead class ids are
    /// unreachable through every lookup path) or resolve it to `None`.
    pub(crate) fn purge_class_memo(&self, class: ClassId) {
        let mut purged = 0u64;
        for shard in &self.memo {
            let mut shard = write_recover(shard, &self.counters);
            let before = shard.map.len();
            shard.map.retain(|&(c, _), _| c != class);
            purged += (before - shard.map.len()) as u64;
        }
        self.counters.memo_invalidated.fetch_add(purged, Ordering::Relaxed);
    }
}
