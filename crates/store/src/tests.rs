use super::*;
use topo_spatial::Region;

fn disk(x: i64) -> SpatialInstance {
    SpatialInstance::from_regions([("a", Region::rectangle(x, 0, x + 10, 10))])
}

fn annulus() -> SpatialInstance {
    let mut region = Region::rectangle(0, 0, 100, 100);
    region.add_ring(vec![
        topo_geometry::Point::from_ints(30, 30),
        topo_geometry::Point::from_ints(70, 30),
        topo_geometry::Point::from_ints(70, 70),
        topo_geometry::Point::from_ints(30, 70),
    ]);
    SpatialInstance::from_regions([("a", region)])
}

#[test]
fn deduplicates_and_memoises() {
    let store = InvariantStore::default();
    let a = store.ingest(&disk(0));
    let b = store.ingest(&disk(500));
    let c = store.ingest(&annulus());
    assert_eq!(store.instance_count(), 3);
    assert_eq!(store.class_count(), 2);
    assert_eq!(store.class_of(a), store.class_of(b));
    assert_ne!(store.class_of(a), store.class_of(c));
    assert_eq!(store.classes(), vec![vec![a, b], vec![c]]);

    let q = TopologicalQuery::HasHole(0);
    assert_eq!(store.query(a, &q), Some(false));
    assert_eq!(store.query(b, &q), Some(false)); // same class: memo hit
    assert_eq!(store.query(c, &q), Some(true));
    assert_eq!(store.query(99, &q), None);
    let stats = store.stats();
    assert_eq!(stats.dedup_hits, 1);
    assert_eq!(stats.memo_misses, 2);
    assert_eq!(stats.memo_hits, 1);
    assert_eq!(stats.memo_entries, 2);
    assert_eq!(stats.hash_collisions, 0);
    assert_eq!(stats.hit_rate(), 1.0 / 3.0);
}

#[test]
fn ingest_invariant_shares_the_allocation() {
    let store = InvariantStore::default();
    let invariant = Arc::new(top(&disk(0)));
    let id = store.ingest_invariant(invariant.clone());
    let class = store.class_of(id).unwrap();
    let rep = store.class_representative(class).unwrap();
    assert!(Arc::ptr_eq(&rep, &invariant), "the store must not copy the invariant");
    // A duplicate keeps the first representative.
    let dup = Arc::new(top(&disk(700)));
    store.ingest_invariant(dup.clone());
    let rep = store.class_representative(class).unwrap();
    assert!(Arc::ptr_eq(&rep, &invariant));
}

#[test]
fn eviction_respects_capacity_and_preserves_answers() {
    let store = InvariantStore::new(StoreConfig {
        memo_capacity: 2,
        memo_shards: 1,
        ..StoreConfig::default()
    });
    let a = store.ingest(&disk(0));
    let queries = [
        TopologicalQuery::HasHole(0),
        TopologicalQuery::IsConnected(0),
        TopologicalQuery::ComponentCountEven(0),
        TopologicalQuery::Intersects(0, 0),
    ];
    let first: Vec<_> = queries.iter().map(|q| store.query(a, q).unwrap()).collect();
    let stats = store.stats();
    assert!(stats.memo_entries <= 2, "capacity bound violated: {stats:?}");
    assert!(stats.memo_evictions >= 2);
    // Under continued pressure, answers stay stable.
    let second: Vec<_> = queries.iter().map(|q| store.query(a, q).unwrap()).collect();
    assert_eq!(first, second);
    assert_eq!(first, vec![false, true, false, true]);
}

#[test]
fn memo_disabled_always_evaluates() {
    let store = InvariantStore::new(StoreConfig::without_memo());
    let a = store.ingest(&disk(0));
    let q = TopologicalQuery::IsConnected(0);
    assert_eq!(store.query(a, &q), Some(true));
    assert_eq!(store.query(a, &q), Some(true));
    let stats = store.stats();
    assert_eq!(stats.memo_hits, 0);
    assert_eq!(stats.memo_misses, 2);
    assert_eq!(stats.memo_entries, 0);
}

#[test]
fn clear_memo_keeps_answers_and_counts_invalidations() {
    let store = InvariantStore::default();
    let a = store.ingest(&annulus());
    let q = TopologicalQuery::HasHole(0);
    assert_eq!(store.query(a, &q), Some(true));
    store.clear_memo();
    let stats = store.stats();
    assert_eq!(stats.memo_entries, 0);
    assert_eq!(stats.memo_invalidated, 1);
    assert_eq!(stats.memo_evictions, 0, "clear_memo must not count as eviction");
    assert_eq!(store.query(a, &q), Some(true));
}

#[test]
fn query_all_matches_per_instance_queries() {
    let store = InvariantStore::default();
    let ids = [store.ingest(&disk(0)), store.ingest(&annulus()), store.ingest(&disk(300))];
    let q = TopologicalQuery::HasHole(0);
    let all = store.query_all(&q);
    for (&id, &answer) in ids.iter().zip(all.iter()) {
        assert_eq!(store.query(id, &q), Some(answer));
    }
    assert_eq!(all, vec![false, true, false]);
}

#[test]
fn degenerate_configs_normalise_or_error() {
    // memo_shards == 0 normalises to 1 instead of panicking in shard_of.
    let store = InvariantStore::new(StoreConfig { memo_shards: 0, ..StoreConfig::default() });
    assert_eq!(store.config().memo_shards, 1);
    let a = store.ingest(&disk(0));
    assert_eq!(store.query(a, &TopologicalQuery::IsConnected(0)), Some(true));

    // More shards than capacity clamps so the per-shard bound stays real.
    let store = InvariantStore::new(StoreConfig {
        memo_capacity: 3,
        memo_shards: 64,
        ..StoreConfig::default()
    });
    assert_eq!(store.config().memo_shards, 3);

    // Zero capacity with zero shards still works (one shard, memo disabled).
    let store = InvariantStore::new(StoreConfig {
        memo_capacity: 0,
        memo_shards: 0,
        ..StoreConfig::default()
    });
    assert_eq!(store.config().memo_shards, 1);

    // A store that can never admit anything is an error, not a trap.
    let Err(err) =
        InvariantStore::try_new(StoreConfig { max_classes: 0, ..StoreConfig::default() })
    else {
        panic!("max_classes == 0 must be rejected");
    };
    assert_eq!(err, StoreConfigError::ZeroClassCapacity);
    assert!(err.to_string().contains("max_classes"));
}

#[test]
#[should_panic(expected = "invalid StoreConfig")]
fn new_panics_on_unrecoverable_config() {
    let _ = InvariantStore::new(StoreConfig { max_classes: 0, ..StoreConfig::default() });
}

#[test]
fn admission_bound_rejects_new_classes_but_not_duplicates() {
    let store = InvariantStore::new(StoreConfig { max_classes: 1, ..StoreConfig::default() });
    let first = store.try_ingest(&disk(0));
    assert!(matches!(first, IngestOutcome::Admitted(0)));
    // A duplicate of the resident class is still welcome at capacity.
    let dup = store.try_ingest(&disk(500));
    assert!(matches!(dup, IngestOutcome::Deduplicated(1)));
    // A genuinely new class is rejected: nothing stored, no id consumed.
    let rejected = store.try_ingest(&annulus());
    assert!(rejected.is_rejected());
    assert_eq!(rejected.id(), None);
    assert_eq!(store.instance_count(), 2);
    assert_eq!(store.class_count(), 1);
    assert_eq!(store.stats().rejected, 1);
    // The next admitted instance still gets a dense id.
    assert_eq!(store.try_ingest(&disk(42)).id(), Some(2));
}

#[test]
#[should_panic(expected = "max_classes")]
fn plain_ingest_panics_on_rejection() {
    let store = InvariantStore::new(StoreConfig { max_classes: 1, ..StoreConfig::default() });
    store.ingest(&disk(0));
    store.ingest(&annulus());
}

#[test]
fn remove_and_gc_free_the_class_and_its_memo() {
    let store = InvariantStore::default();
    let a = store.ingest(&disk(0));
    let b = store.ingest(&disk(500));
    let c = store.ingest(&annulus());
    let disk_class = store.class_of(a).unwrap();
    let q = TopologicalQuery::HasHole(0);
    store.query(a, &q);
    store.query(c, &q);
    assert_eq!(store.stats().memo_entries, 2);

    // Removing one member keeps the class alive.
    assert!(store.remove_instance(a));
    assert!(!store.remove_instance(a), "double removal must be a no-op");
    assert_eq!(store.query(a, &q), None);
    assert_eq!(store.class_of(a), None);
    assert_eq!(store.query(b, &q), Some(false));
    assert_eq!(store.class_count(), 2);
    assert_eq!(store.class_members(disk_class), Some(vec![b]));

    // Removing the last member collects the class and purges its memo rows.
    assert!(store.remove_instance(b));
    let stats = store.stats();
    assert_eq!(stats.instances, 1);
    assert_eq!(stats.classes, 1);
    assert_eq!(stats.removals, 2);
    assert_eq!(stats.gc_classes, 1);
    assert_eq!(stats.memo_entries, 1, "the dead class's memo entry must be purged");
    assert!(store.class_representative(disk_class).is_none());
    assert_eq!(store.class_members(disk_class), None);
    assert_eq!(store.query_class(disk_class, &q), None);
    assert_eq!(store.classes(), vec![vec![c]]);
    assert_eq!(store.query_all(&q), vec![true]);

    // Re-ingesting the collected shape opens a fresh class id; the old id
    // stays dead forever.
    let d = store.ingest(&disk(0));
    assert_ne!(store.class_of(d), Some(disk_class));
    assert_eq!(store.query(d, &q), Some(false));
}

#[test]
fn gc_frees_admission_capacity() {
    let store = InvariantStore::new(StoreConfig { max_classes: 1, ..StoreConfig::default() });
    let a = store.ingest(&disk(0));
    assert!(store.try_ingest(&annulus()).is_rejected());
    store.remove_instance(a);
    assert!(matches!(store.try_ingest(&annulus()), IngestOutcome::Admitted(_)));
}

#[test]
fn lock_budget_falls_back_instead_of_blocking() {
    let store = InvariantStore::new(StoreConfig {
        memo_shards: 1,
        memo_lock_budget: Some(3),
        ..StoreConfig::default()
    });
    let a = store.ingest(&annulus());
    let q = TopologicalQuery::HasHole(0);
    // Freeze the single memo shard with a held write lock: queries must
    // still answer, via the un-memoised fallback.
    let shard = store.memo[0].write().unwrap();
    assert_eq!(store.query(a, &q), Some(true));
    let stats = store.stats();
    assert!(stats.fallback_evals >= 1, "expected fallback evals, got {stats:?}");
    assert_eq!(stats.memo_hits + stats.memo_misses, 1, "fallbacks still count as queries");
    drop(shard);
    // With the shard free again the memo works normally.
    assert_eq!(store.query(a, &q), Some(true));
    assert_eq!(store.query(a, &q), Some(true));
    assert!(store.stats().memo_hits >= 1);
}
