//! In-place instance updates: re-pointing a live instance at the class of a
//! repaired invariant.
//!
//! This is the store-side half of incremental maintenance (see
//! `topo_invariant::maintain`): an edited instance's invariant is repaired
//! locally by [`MaintainedInvariant`](topo_invariant::MaintainedInvariant) —
//! with its canonical code already primed — and the store moves the instance
//! to the new invariant's isomorphism class under **one** WAL record,
//! instead of a remove + re-ingest pair (two records, and an id change the
//! client would have to chase).
//!
//! Semantics mirror a removal immediately followed by an ingest that lands
//! on the same id: the old class is garbage-collected if the instance was
//! its last member, the new class is found by content address (or opened,
//! subject to the [`StoreConfig::max_classes`](crate::StoreConfig)
//! admission bound), the instance id is *stable*, and a rejected update
//! leaves the store exactly as it was.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use topo_invariant::TopologicalInvariant;

use crate::{gc, write_recover, ClassTable, IngestOutcome, InstanceId, InvariantStore};

/// Inserts `id` into a class member list keeping the list sorted by
/// instance id — the order ingests produce and snapshots preserve, so a
/// recovered store is bit-identical to the live one even after updates.
pub(crate) fn attach_member(classes: &mut ClassTable, class: usize, id: InstanceId) {
    let members = &mut classes.members[class];
    let pos = members.partition_point(|&m| m < id);
    members.insert(pos, id);
}

impl InvariantStore {
    /// Re-points a live instance at the class of `invariant`, deduplicating
    /// by content address exactly like
    /// [`try_ingest_invariant`](Self::try_ingest_invariant). The instance
    /// keeps its id.
    ///
    /// Returns `None` for an unknown or removed id. Otherwise:
    ///
    /// * [`IngestOutcome::Deduplicated`] — the new invariant landed in an
    ///   existing class (possibly the instance's old class, making the
    ///   update a no-op);
    /// * [`IngestOutcome::Admitted`] — it opened a new class;
    /// * [`IngestOutcome::Rejected`] — opening the class would exceed
    ///   [`StoreConfig::max_classes`](crate::StoreConfig::max_classes)
    ///   *after* accounting for the old class the update would free; the
    ///   store is left untouched.
    ///
    /// On a persistent store the whole transition is logged as **one** WAL
    /// record while the table locks are held, so recovery replays it
    /// atomically: a crash recovers the old state or the new state, never a
    /// torn one. If the update empties the old class it is garbage-collected
    /// (admission slot freed, memo purged) just like the last
    /// [`remove_instance`](Self::remove_instance) would.
    ///
    /// The invariant should arrive canonicalised (the maintenance layer
    /// primes the code cache); if not, the code is computed here, outside
    /// every lock.
    pub fn update_instance(
        &self,
        id: InstanceId,
        invariant: Arc<TopologicalInvariant>,
    ) -> Option<IngestOutcome> {
        // Canonicalise before taking any lock (cached — free when the
        // invariant came out of the maintenance layer).
        let hash = invariant.code_hash();
        invariant.canonical_code();
        let (outcome, purge) = {
            // Lock order everywhere both are held: `classes` before
            // `instances`.
            let mut classes = write_recover(&self.classes, &self.counters);
            let mut instances = write_recover(&self.instances, &self.counters);
            let old_class = (*instances.slots.get(id)?)?;

            let located = self.locate_class(&classes, hash, &invariant);
            if located == Some(old_class) {
                // No-op update: the repaired invariant is still isomorphic
                // to the old one. Log it anyway — replay needs the record to
                // reproduce the (idempotent) transition and the seq stream.
                self.counters.updates.fetch_add(1, Ordering::Relaxed);
                if self.persistence.is_some() {
                    self.wal_update(&classes, id, old_class, false);
                }
                return Some(IngestOutcome::Deduplicated(id));
            }
            if located.is_none() {
                // Admission check *before* touching anything, counting the
                // slot the update itself frees when the instance is its old
                // class's last member.
                let freed = (classes.members[old_class].len() == 1) as usize;
                if classes.live - freed >= self.config.max_classes {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return Some(IngestOutcome::Rejected);
                }
            }

            let (_, collected) = gc::remove_from_tables(&mut classes, &mut instances, id)
                .expect("slot checked live above");
            let (class, admitted) = match located {
                Some(class) => (class, false),
                None => {
                    let class = classes.reps.len();
                    classes.reps.push(Some(invariant));
                    classes.hashes.push(hash);
                    classes.members.push(Vec::new());
                    classes.by_hash.entry(hash).or_default().push(class);
                    classes.live += 1;
                    (class, true)
                }
            };
            instances.slots[id] = Some(class);
            instances.live += 1;
            attach_member(&mut classes, class, id);
            self.counters.updates.fetch_add(1, Ordering::Relaxed);
            if collected {
                self.counters.gc_classes.fetch_add(1, Ordering::Relaxed);
            }
            if self.persistence.is_some() {
                // One record for the whole transition, appended while both
                // locks are held so WAL order stays operation order.
                self.wal_update(&classes, id, class, admitted);
            }
            let outcome = if admitted {
                IngestOutcome::Admitted(id)
            } else {
                IngestOutcome::Deduplicated(id)
            };
            (outcome, collected.then_some(old_class))
        };
        // Memo purge outside the table locks, as everywhere (see `gc`).
        if let Some(class) = purge {
            self.purge_class_memo(class);
        }
        Some(outcome)
    }
}
