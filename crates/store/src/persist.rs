//! Durability: a versioned, checksummed snapshot + write-ahead-log format
//! over a pluggable [`StorageBackend`], and the recovery path that rebuilds
//! an [`InvariantStore`] from it.
//!
//! # Format
//!
//! Everything on disk is built from one framing primitive:
//!
//! ```text
//! record := [payload_len: u32 LE] [payload] [crc32(payload): u32 LE]
//! ```
//!
//! The **WAL** is a plain concatenation of records, one per mutating
//! operation, appended *inside* the store's write-lock critical section so
//! WAL order is exactly id-assignment order. Payloads are tagged:
//!
//! ```text
//! ingest := 0x01, seq: u64, id: u64, class: u64, code_hash: u64,
//!           new_class: u8, [invariant (only when new_class = 1)]
//! remove := 0x02, seq: u64, id: u64
//! ```
//!
//! The **snapshot** is a magic + version header (`"TSNP"`, version 1)
//! followed by a single framed record holding the full live state: the next
//! WAL sequence number, the slot counts (so dead ids stay dead after
//! recovery), every live class `(class, code_hash, invariant)` and every
//! live instance `(id, class)`. Invariants are serialised through
//! [`topo_invariant::InvariantParts`], and each class record carries its
//! already-computed [`CodeHash`] — **recovery never re-canonicalises**.
//!
//! # Recovery contract
//!
//! [`InvariantStore::open`] loads the snapshot (a corrupt snapshot is a hard
//! [`PersistError::Corrupt`] — it is the base state, there is nothing to
//! fall back to), then replays WAL records in order, skipping records whose
//! `seq` predates the snapshot (they are already folded in, which makes a
//! crash *between* snapshot write and WAL reset harmless). A WAL tail that
//! is torn (incomplete frame) or fails its checksum is **truncated, never
//! trusted**: replay stops there and the event is counted in
//! [`StoreStats::wal_truncations`](crate::StoreStats::wal_truncations).
//! Because every record was appended under the store's write locks, any
//! surviving prefix of the WAL is a prefix of real operation history — which
//! is exactly the property the fault-injection suite checks recovered
//! stores against.
//!
//! # Durability vs. availability
//!
//! A WAL append that fails at the backend does **not** fail the in-memory
//! operation: the store keeps serving and counts the miss in
//! [`StoreStats::wal_errors`](crate::StoreStats::wal_errors). Callers that
//! need hard durability watch that counter (or checkpoint and verify). This
//! is a deliberate availability-over-durability stance; the fault suite
//! pins down what is and is not guaranteed after such a failure.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use topo_invariant::{CodeHash, InvariantParts, TopologicalInvariant};
use topo_spatial::Schema;

use crate::{
    gc, read_recover, ClassId, ClassTable, InstanceId, InstanceTable, InvariantStore, StoreConfig,
};

/// Magic bytes opening a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TSNP";
/// Current snapshot/WAL format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_INGEST: u8 = 0x01;
const TAG_REMOVE: u8 = 0x02;
const TAG_UPDATE: u8 = 0x03;

// ---------------------------------------------------------------------------
// checksum

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven; the table is
/// built at compile time so the hot path is one lookup per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 checksum of a byte slice (IEEE polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// errors

/// Failure of a persistence operation.
#[derive(Debug)]
pub enum PersistError {
    /// The storage backend failed.
    Io(io::Error),
    /// Stored bytes exist but do not decode: bad magic, unsupported
    /// version, checksum mismatch on the snapshot, or an impossible record
    /// (e.g. a WAL record referencing a class that was never created).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "storage backend error: {e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt persistent state: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// storage backends

/// The five operations the persistence layer needs from storage. Small on
/// purpose: a backend stores two byte streams (one snapshot, one
/// append-only log) and promises nothing about partial-write atomicity —
/// the framing layer's checksums own torn-write detection.
pub trait StorageBackend: Send + Sync {
    /// The current snapshot, or `None` if none was ever written.
    fn read_snapshot(&self) -> io::Result<Option<Vec<u8>>>;
    /// Atomically replaces the snapshot (all-or-nothing per call).
    fn write_snapshot(&self, bytes: &[u8]) -> io::Result<()>;
    /// The entire WAL contents (empty if none).
    fn read_wal(&self) -> io::Result<Vec<u8>>;
    /// Appends bytes to the WAL.
    fn append_wal(&self, bytes: &[u8]) -> io::Result<()>;
    /// Empties the WAL (after its effects were folded into a snapshot).
    fn reset_wal(&self) -> io::Result<()>;
}

/// An in-memory [`StorageBackend`]: two mutex-guarded byte buffers. Shared
/// by `Arc` between a store and the test that later "recovers" from it —
/// the durable medium that survives a simulated crash.
#[derive(Default)]
pub struct MemoryBackend {
    snapshot: Mutex<Option<Vec<u8>>>,
    wal: Mutex<Vec<u8>>,
}

impl MemoryBackend {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Test hook: the raw WAL bytes as currently stored.
    pub fn wal_bytes(&self) -> Vec<u8> {
        self.wal.lock().expect("wal buffer lock").clone()
    }

    /// Test hook: overwrite the raw WAL bytes (to hand-craft corruption).
    pub fn set_wal_bytes(&self, bytes: Vec<u8>) {
        *self.wal.lock().expect("wal buffer lock") = bytes;
    }

    /// Test hook: the raw snapshot bytes, if any.
    pub fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        self.snapshot.lock().expect("snapshot buffer lock").clone()
    }

    /// Test hook: overwrite the raw snapshot bytes.
    pub fn set_snapshot_bytes(&self, bytes: Option<Vec<u8>>) {
        *self.snapshot.lock().expect("snapshot buffer lock") = bytes;
    }
}

impl StorageBackend for MemoryBackend {
    fn read_snapshot(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.snapshot.lock().expect("snapshot buffer lock").clone())
    }

    fn write_snapshot(&self, bytes: &[u8]) -> io::Result<()> {
        *self.snapshot.lock().expect("snapshot buffer lock") = Some(bytes.to_vec());
        Ok(())
    }

    fn read_wal(&self) -> io::Result<Vec<u8>> {
        Ok(self.wal.lock().expect("wal buffer lock").clone())
    }

    fn append_wal(&self, bytes: &[u8]) -> io::Result<()> {
        self.wal.lock().expect("wal buffer lock").extend_from_slice(bytes);
        Ok(())
    }

    fn reset_wal(&self) -> io::Result<()> {
        self.wal.lock().expect("wal buffer lock").clear();
        Ok(())
    }
}

/// A real-file [`StorageBackend`]: `snapshot.bin` and `wal.bin` inside one
/// directory. Snapshot replacement is write-to-temp + rename (atomic on
/// POSIX); WAL appends open the file in append mode per call, which keeps
/// the backend stateless and crash-simple at the cost of an open per
/// record — fine for this workload, and the bench stage measures it.
pub struct FileBackend {
    snapshot_path: PathBuf,
    snapshot_tmp: PathBuf,
    wal_path: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) a storage directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            snapshot_path: dir.join("snapshot.bin"),
            snapshot_tmp: dir.join("snapshot.tmp"),
            wal_path: dir.join("wal.bin"),
        })
    }
}

impl StorageBackend for FileBackend {
    fn read_snapshot(&self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(&self.snapshot_path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_snapshot(&self, bytes: &[u8]) -> io::Result<()> {
        {
            let mut tmp = fs::File::create(&self.snapshot_tmp)?;
            tmp.write_all(bytes)?;
            tmp.sync_all()?;
        }
        fs::rename(&self.snapshot_tmp, &self.snapshot_path)
    }

    fn read_wal(&self) -> io::Result<Vec<u8>> {
        match fs::read(&self.wal_path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn append_wal(&self, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&self.wal_path)?;
        file.write_all(bytes)
    }

    fn reset_wal(&self) -> io::Result<()> {
        fs::write(&self.wal_path, [])
    }
}

// ---------------------------------------------------------------------------
// encoding primitives

pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize32(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("cell/region index exceeds u32 range"));
    }

    fn bytes(&mut self, v: &[u8]) {
        self.usize32(v.len());
        self.buf.extend_from_slice(v);
    }
}

pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn corrupt(what: &str) -> PersistError {
        PersistError::Corrupt(format!("truncated or invalid field: {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or_else(|| Self::corrupt(what))?;
        if end > self.bytes.len() {
            return Err(Self::corrupt(what));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn usize32(&mut self, what: &str) -> Result<usize, PersistError> {
        Ok(self.u32(what)? as usize)
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], PersistError> {
        let len = self.usize32(what)?;
        self.take(len, what)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Frames a payload: `[len][payload][crc32]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Result of pulling one frame off a byte stream.
enum Frame<'a> {
    /// A complete, checksum-valid payload plus the remaining stream.
    Ok(&'a [u8], &'a [u8]),
    /// The stream is exhausted.
    End,
    /// The tail is torn or corrupt (incomplete frame or bad checksum).
    Torn,
}

fn next_frame(stream: &[u8]) -> Frame<'_> {
    if stream.is_empty() {
        return Frame::End;
    }
    if stream.len() < 4 {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(stream[..4].try_into().unwrap()) as usize;
    let Some(total) = len.checked_add(8) else { return Frame::Torn };
    if stream.len() < total {
        return Frame::Torn;
    }
    let payload = &stream[4..4 + len];
    let stored = u32::from_le_bytes(stream[4 + len..total].try_into().unwrap());
    if crc32(payload) != stored {
        return Frame::Torn;
    }
    Frame::Ok(payload, &stream[total..])
}

// ---------------------------------------------------------------------------
// invariant (de)serialisation

fn encode_region_set(enc: &mut Enc, set: &topo_invariant::RegionSet) {
    let members: Vec<usize> = set.iter().collect();
    enc.usize32(members.len());
    for m in members {
        enc.usize32(m);
    }
}

fn decode_region_set(
    dec: &mut Dec<'_>,
    region_count: usize,
) -> Result<topo_invariant::RegionSet, PersistError> {
    let mut set = topo_invariant::RegionSet::new(region_count);
    let n = dec.usize32("region set size")?;
    for _ in 0..n {
        let region = dec.usize32("region id")?;
        if region >= region_count {
            return Err(PersistError::Corrupt(format!(
                "region id {region} out of range (schema has {region_count})"
            )));
        }
        set.insert(region);
    }
    Ok(set)
}

fn encode_opt_usize(enc: &mut Enc, v: Option<usize>) {
    match v {
        None => enc.u8(0),
        Some(x) => {
            enc.u8(1);
            enc.usize32(x);
        }
    }
}

fn decode_opt_usize(dec: &mut Dec<'_>, what: &str) -> Result<Option<usize>, PersistError> {
    match dec.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(dec.usize32(what)?)),
        other => Err(PersistError::Corrupt(format!("bad option tag {other} in {what}"))),
    }
}

/// Serialises an invariant through its [`InvariantParts`] view.
pub(crate) fn encode_invariant(enc: &mut Enc, invariant: &TopologicalInvariant) {
    let parts = invariant.to_parts();
    enc.usize32(parts.schema.len());
    for (_, name) in parts.schema.iter() {
        enc.bytes(name.as_bytes());
    }
    enc.usize32(parts.vertex_slots.len());
    for v in 0..parts.vertex_slots.len() {
        enc.usize32(parts.vertex_slots[v].len());
        for &(edge, end) in &parts.vertex_slots[v] {
            enc.usize32(edge);
            enc.u8(end);
        }
        enc.usize32(parts.vertex_sectors[v].len());
        for &face in &parts.vertex_sectors[v] {
            enc.usize32(face);
        }
        encode_opt_usize(enc, parts.vertex_isolated_face[v]);
        encode_region_set(enc, &parts.vertex_regions[v]);
        encode_region_set(enc, &parts.vertex_boundary[v]);
    }
    enc.usize32(parts.edge_ends.len());
    for e in 0..parts.edge_ends.len() {
        match parts.edge_ends[e] {
            None => enc.u8(0),
            Some((a, b)) => {
                enc.u8(1);
                enc.usize32(a);
                enc.usize32(b);
            }
        }
        let (left, right) = parts.edge_sides[e];
        enc.usize32(left);
        enc.usize32(right);
        encode_region_set(enc, &parts.edge_regions[e]);
        encode_region_set(enc, &parts.edge_boundary[e]);
    }
    enc.usize32(parts.face_regions.len());
    for face in &parts.face_regions {
        encode_region_set(enc, face);
    }
    enc.usize32(parts.exterior_face);
}

/// Deserialises an invariant; structural validation happens in
/// [`TopologicalInvariant::from_parts`], so garbage that happens to pass
/// the checksum still cannot build an inconsistent invariant.
pub(crate) fn decode_invariant(dec: &mut Dec<'_>) -> Result<TopologicalInvariant, PersistError> {
    let region_count = dec.usize32("schema size")?;
    let mut names = Vec::with_capacity(region_count.min(1024));
    for _ in 0..region_count {
        let raw = dec.bytes("region name")?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| PersistError::Corrupt("region name is not UTF-8".into()))?;
        names.push(name.to_owned());
    }
    let schema = Schema::from_names(names);

    let nv = dec.usize32("vertex count")?;
    let mut vertex_slots = Vec::with_capacity(nv.min(65_536));
    let mut vertex_sectors = Vec::with_capacity(nv.min(65_536));
    let mut vertex_isolated_face = Vec::with_capacity(nv.min(65_536));
    let mut vertex_regions = Vec::with_capacity(nv.min(65_536));
    let mut vertex_boundary = Vec::with_capacity(nv.min(65_536));
    for _ in 0..nv {
        let slots = dec.usize32("vertex slot count")?;
        let mut vslots = Vec::with_capacity(slots.min(65_536));
        for _ in 0..slots {
            let edge = dec.usize32("slot edge")?;
            let end = dec.u8("slot end")?;
            vslots.push((edge, end));
        }
        vertex_slots.push(vslots);
        let sectors = dec.usize32("vertex sector count")?;
        let mut vsectors = Vec::with_capacity(sectors.min(65_536));
        for _ in 0..sectors {
            vsectors.push(dec.usize32("sector face")?);
        }
        vertex_sectors.push(vsectors);
        vertex_isolated_face.push(decode_opt_usize(dec, "isolated face")?);
        vertex_regions.push(decode_region_set(dec, region_count)?);
        vertex_boundary.push(decode_region_set(dec, region_count)?);
    }

    let ne = dec.usize32("edge count")?;
    let mut edge_ends = Vec::with_capacity(ne.min(65_536));
    let mut edge_sides = Vec::with_capacity(ne.min(65_536));
    let mut edge_regions = Vec::with_capacity(ne.min(65_536));
    let mut edge_boundary = Vec::with_capacity(ne.min(65_536));
    for _ in 0..ne {
        edge_ends.push(match dec.u8("edge ends tag")? {
            0 => None,
            1 => Some((dec.usize32("edge end a")?, dec.usize32("edge end b")?)),
            other => {
                return Err(PersistError::Corrupt(format!("bad edge-ends tag {other}")));
            }
        });
        edge_sides.push((dec.usize32("edge left face")?, dec.usize32("edge right face")?));
        edge_regions.push(decode_region_set(dec, region_count)?);
        edge_boundary.push(decode_region_set(dec, region_count)?);
    }

    let nf = dec.usize32("face count")?;
    let mut face_regions = Vec::with_capacity(nf.min(65_536));
    for _ in 0..nf {
        face_regions.push(decode_region_set(dec, region_count)?);
    }
    let exterior_face = dec.usize32("exterior face")?;

    TopologicalInvariant::from_parts(InvariantParts {
        schema,
        vertex_slots,
        vertex_sectors,
        vertex_isolated_face,
        vertex_regions,
        vertex_boundary,
        edge_ends,
        edge_sides,
        edge_regions,
        edge_boundary,
        face_regions,
        exterior_face,
    })
    .map_err(PersistError::Corrupt)
}

// ---------------------------------------------------------------------------
// persistence state + store integration

/// The store's handle on its durable medium: the backend, the WAL sequence
/// counter (next seq to assign), and the sticky broken flag.
pub(crate) struct Persistence {
    pub(crate) backend: Arc<dyn StorageBackend>,
    pub(crate) seq: AtomicU64,
    /// Set on the first failed WAL append and never cleared: once a record
    /// is lost the log stops growing entirely, so the durable WAL is always
    /// a *prefix* of operation history — a gap would make every later
    /// record unreplayable. Each skipped append still counts in
    /// [`StoreStats::wal_errors`](crate::StoreStats::wal_errors), and a
    /// successful [`InvariantStore::checkpoint`] re-arms the log (the
    /// snapshot captures everything the WAL missed).
    pub(crate) broken: std::sync::atomic::AtomicBool,
}

impl InvariantStore {
    /// Opens (or recovers) a persistent store over a backend: loads the
    /// snapshot if one exists, replays the surviving WAL prefix, and keeps
    /// logging subsequent mutations to the same backend.
    ///
    /// See the [module docs](crate::persist) for the exact recovery
    /// contract (seq skipping, torn-tail truncation, corrupt-snapshot
    /// failure).
    pub fn open(
        config: StoreConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, PersistError> {
        let mut store = Self::try_new(config)
            .map_err(|e| PersistError::Corrupt(format!("invalid StoreConfig: {e}")))?;

        let mut classes = ClassTable::default();
        let mut instances = InstanceTable::default();
        let mut next_seq = 0u64;

        if let Some(snapshot) = backend.read_snapshot()? {
            next_seq = decode_snapshot(&snapshot, &mut classes, &mut instances)?;
        }
        let snapshot_seq = next_seq;

        let wal = backend.read_wal()?;
        let mut stream: &[u8] = &wal;
        loop {
            match next_frame(stream) {
                Frame::End => break,
                Frame::Torn => {
                    store.counters.wal_truncations.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Frame::Ok(payload, rest) => {
                    stream = rest;
                    apply_wal_record(
                        payload,
                        snapshot_seq,
                        &mut next_seq,
                        &mut classes,
                        &mut instances,
                        &store.counters,
                    )?;
                }
            }
        }

        store.classes = std::sync::RwLock::new(classes);
        store.instances = std::sync::RwLock::new(instances);
        store.persistence = Some(Persistence {
            backend,
            seq: AtomicU64::new(next_seq),
            broken: std::sync::atomic::AtomicBool::new(false),
        });
        Ok(store)
    }

    /// Writes a snapshot of the current live state and resets the WAL. Safe
    /// against a crash at any point: the snapshot replaces its predecessor
    /// atomically, and WAL records older than the snapshot's seq are
    /// skipped on replay even if the reset never happened.
    ///
    /// No-op `Ok` on a store that was not opened over a backend.
    pub fn checkpoint(&self) -> Result<(), PersistError> {
        let Some(persistence) = &self.persistence else { return Ok(()) };
        // Read-locking both tables (in the classes → instances order) blocks
        // every mutator, so the state and `seq` are a consistent cut.
        let classes = read_recover(&self.classes, &self.counters);
        let instances = read_recover(&self.instances, &self.counters);
        let seq = persistence.seq.load(Ordering::SeqCst);
        let snapshot = encode_snapshot(seq, &classes, &instances);
        persistence.backend.write_snapshot(&snapshot)?;
        persistence.backend.reset_wal()?;
        // The snapshot captured everything — including operations a broken
        // WAL had missed — so logging can safely resume.
        persistence.broken.store(false, Ordering::SeqCst);
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// True iff the store logs to a storage backend.
    pub fn is_persistent(&self) -> bool {
        self.persistence.is_some()
    }

    /// Appends an ingest record; called with the class/instance write locks
    /// held so seq order equals id order. Backend failure is counted, not
    /// propagated — see the module docs.
    pub(crate) fn wal_ingest(
        &self,
        classes: &ClassTable,
        id: InstanceId,
        class: ClassId,
        new_class: bool,
    ) {
        let Some(persistence) = &self.persistence else { return };
        let seq = persistence.seq.fetch_add(1, Ordering::SeqCst);
        let mut enc = Enc::new();
        enc.u8(TAG_INGEST);
        enc.u64(seq);
        enc.u64(id as u64);
        enc.u64(class as u64);
        enc.u64(classes.hashes[class].as_u64());
        enc.u8(new_class as u8);
        if new_class {
            let rep = classes.reps[class].as_ref().expect("new class has a representative");
            encode_invariant(&mut enc, rep);
        }
        self.append_framed(persistence, &enc.buf);
    }

    /// Appends a batch of ingest records in **one** backend write; called
    /// with the class/instance write locks held so seq order equals id
    /// order. Each record is framed individually — recovery and torn-tail
    /// truncation see exactly the record stream per-record appends would
    /// have produced — but the frames are concatenated and handed to the
    /// backend as a single append, amortising its per-call cost across the
    /// batch. Backend failure is counted once per record, not propagated.
    pub(crate) fn wal_ingest_batch(
        &self,
        classes: &ClassTable,
        records: &[(InstanceId, ClassId, bool)],
    ) {
        let Some(persistence) = &self.persistence else { return };
        if records.is_empty() {
            return;
        }
        if persistence.broken.load(Ordering::SeqCst) {
            self.counters.wal_errors.fetch_add(records.len() as u64, Ordering::Relaxed);
            return;
        }
        let mut buf = Vec::new();
        for &(id, class, new_class) in records {
            let seq = persistence.seq.fetch_add(1, Ordering::SeqCst);
            let mut enc = Enc::new();
            enc.u8(TAG_INGEST);
            enc.u64(seq);
            enc.u64(id as u64);
            enc.u64(class as u64);
            enc.u64(classes.hashes[class].as_u64());
            enc.u8(new_class as u8);
            if new_class {
                let rep = classes.reps[class].as_ref().expect("new class has a representative");
                encode_invariant(&mut enc, rep);
            }
            buf.extend_from_slice(&frame(&enc.buf));
        }
        match persistence.backend.append_wal(&buf) {
            Ok(()) => {
                self.counters.wal_appends.fetch_add(records.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                persistence.broken.store(true, Ordering::SeqCst);
                self.counters.wal_errors.fetch_add(records.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Appends an update record — the single-record re-point of a live
    /// instance at a (possibly new) class; called with the write locks held
    /// *after* the tables reflect the update, so `classes` carries the new
    /// class's hash and representative.
    pub(crate) fn wal_update(
        &self,
        classes: &ClassTable,
        id: InstanceId,
        class: ClassId,
        new_class: bool,
    ) {
        let Some(persistence) = &self.persistence else { return };
        let seq = persistence.seq.fetch_add(1, Ordering::SeqCst);
        let mut enc = Enc::new();
        enc.u8(TAG_UPDATE);
        enc.u64(seq);
        enc.u64(id as u64);
        enc.u64(class as u64);
        enc.u64(classes.hashes[class].as_u64());
        enc.u8(new_class as u8);
        if new_class {
            let rep = classes.reps[class].as_ref().expect("new class has a representative");
            encode_invariant(&mut enc, rep);
        }
        self.append_framed(persistence, &enc.buf);
    }

    /// Appends a removal record; called with the write locks held.
    pub(crate) fn wal_remove(&self, id: InstanceId) {
        let Some(persistence) = &self.persistence else { return };
        let seq = persistence.seq.fetch_add(1, Ordering::SeqCst);
        let mut enc = Enc::new();
        enc.u8(TAG_REMOVE);
        enc.u64(seq);
        enc.u64(id as u64);
        self.append_framed(persistence, &enc.buf);
    }

    fn append_framed(&self, persistence: &Persistence, payload: &[u8]) {
        if persistence.broken.load(Ordering::SeqCst) {
            self.counters.wal_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match persistence.backend.append_wal(&frame(payload)) {
            Ok(()) => {
                self.counters.wal_appends.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                persistence.broken.store(true, Ordering::SeqCst);
                self.counters.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn encode_snapshot(seq: u64, classes: &ClassTable, instances: &InstanceTable) -> Vec<u8> {
    let mut body = Enc::new();
    body.u64(seq);
    body.u64(classes.reps.len() as u64);
    body.u64(instances.slots.len() as u64);
    body.u64(classes.live as u64);
    for (class, rep) in classes.reps.iter().enumerate() {
        let Some(rep) = rep else { continue };
        body.u64(class as u64);
        body.u64(classes.hashes[class].as_u64());
        encode_invariant(&mut body, rep);
    }
    body.u64(instances.live as u64);
    for (id, slot) in instances.slots.iter().enumerate() {
        let Some(class) = slot else { continue };
        body.u64(id as u64);
        body.u64(*class as u64);
    }

    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&frame(&body.buf));
    out
}

fn decode_snapshot(
    bytes: &[u8],
    classes: &mut ClassTable,
    instances: &mut InstanceTable,
) -> Result<u64, PersistError> {
    if bytes.len() < 8 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("snapshot magic mismatch".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "unsupported snapshot version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let Frame::Ok(body, rest) = next_frame(&bytes[8..]) else {
        return Err(PersistError::Corrupt("snapshot body torn or checksum mismatch".into()));
    };
    if !rest.is_empty() {
        return Err(PersistError::Corrupt("trailing bytes after snapshot body".into()));
    }

    let mut dec = Dec::new(body);
    let seq = dec.u64("snapshot seq")?;
    let class_slots = dec.u64("class slot count")? as usize;
    let instance_slots = dec.u64("instance slot count")? as usize;
    classes.reps = vec![None; class_slots];
    classes.hashes = vec![CodeHash::from_u64(0); class_slots];
    classes.members = vec![Vec::new(); class_slots];
    instances.slots = vec![None; instance_slots];

    let live_classes = dec.u64("live class count")? as usize;
    for _ in 0..live_classes {
        let class = dec.u64("class id")? as usize;
        if class >= class_slots {
            return Err(PersistError::Corrupt(format!("class id {class} out of range")));
        }
        let hash = CodeHash::from_u64(dec.u64("class code hash")?);
        let invariant = decode_invariant(&mut dec)?;
        classes.reps[class] = Some(Arc::new(invariant));
        classes.hashes[class] = hash;
        classes.by_hash.entry(hash).or_default().push(class);
        classes.live += 1;
    }

    let live_instances = dec.u64("live instance count")? as usize;
    for _ in 0..live_instances {
        let id = dec.u64("instance id")? as usize;
        let class = dec.u64("instance class")? as usize;
        if id >= instance_slots {
            return Err(PersistError::Corrupt(format!("instance id {id} out of range")));
        }
        if classes.reps.get(class).map(Option::is_some) != Some(true) {
            return Err(PersistError::Corrupt(format!(
                "instance {id} references dead or unknown class {class}"
            )));
        }
        instances.slots[id] = Some(class);
        classes.members[class].push(id);
        instances.live += 1;
    }
    // Snapshot wrote instances in id order, so member lists are sorted in
    // ingest order exactly as the live store kept them.
    if !dec.done() {
        return Err(PersistError::Corrupt("trailing bytes inside snapshot body".into()));
    }
    Ok(seq)
}

/// Applies one checksum-valid WAL payload to the recovering tables; records
/// predating the snapshot seq are skipped.
fn apply_wal_record(
    payload: &[u8],
    snapshot_seq: u64,
    next_seq: &mut u64,
    classes: &mut ClassTable,
    instances: &mut InstanceTable,
    counters: &crate::Counters,
) -> Result<(), PersistError> {
    let mut dec = Dec::new(payload);
    let tag = dec.u8("wal record tag")?;
    let seq = dec.u64("wal record seq")?;
    match tag {
        TAG_INGEST => {
            let id = dec.u64("wal ingest id")? as usize;
            let class = dec.u64("wal ingest class")? as usize;
            let hash = CodeHash::from_u64(dec.u64("wal ingest hash")?);
            let new_class = match dec.u8("wal new-class flag")? {
                0 => false,
                1 => true,
                other => {
                    return Err(PersistError::Corrupt(format!("bad new-class flag {other}")));
                }
            };
            let invariant = if new_class { Some(decode_invariant(&mut dec)?) } else { None };
            if seq < snapshot_seq {
                // Already folded into the snapshot (a crash landed between
                // snapshot write and WAL reset).
                return Ok(());
            }
            if new_class {
                if class > classes.reps.len() {
                    return Err(PersistError::Corrupt(format!(
                        "wal creates class {class} beyond table end {}",
                        classes.reps.len()
                    )));
                }
                if class == classes.reps.len() {
                    classes.reps.push(None);
                    classes.hashes.push(CodeHash::from_u64(0));
                    classes.members.push(Vec::new());
                }
                if classes.reps[class].is_some() {
                    return Err(PersistError::Corrupt(format!(
                        "wal re-creates live class {class}"
                    )));
                }
                classes.reps[class] =
                    Some(Arc::new(invariant.expect("decoded above when new_class")));
                classes.hashes[class] = hash;
                classes.by_hash.entry(hash).or_default().push(class);
                classes.live += 1;
            } else if classes.reps.get(class).map(Option::is_some) != Some(true) {
                return Err(PersistError::Corrupt(format!(
                    "wal ingest {id} references dead or unknown class {class}"
                )));
            }
            if id != instances.slots.len() {
                return Err(PersistError::Corrupt(format!(
                    "wal ingest id {id} is not dense (next slot is {})",
                    instances.slots.len()
                )));
            }
            instances.slots.push(Some(class));
            instances.live += 1;
            classes.members[class].push(id);
        }
        TAG_UPDATE => {
            let id = dec.u64("wal update id")? as usize;
            let class = dec.u64("wal update class")? as usize;
            let hash = CodeHash::from_u64(dec.u64("wal update hash")?);
            let new_class = match dec.u8("wal new-class flag")? {
                0 => false,
                1 => true,
                other => {
                    return Err(PersistError::Corrupt(format!("bad new-class flag {other}")));
                }
            };
            let invariant = if new_class { Some(decode_invariant(&mut dec)?) } else { None };
            if seq < snapshot_seq {
                return Ok(());
            }
            let current = instances.slots.get(id).copied().flatten();
            if current.is_none() {
                return Err(PersistError::Corrupt(format!(
                    "wal updates unknown or removed instance {id}"
                )));
            }
            if current != Some(class) {
                // Detach from the old class (collecting it if emptied), then
                // attach to the target — exactly the live transition.
                let (_, collected) = gc::remove_from_tables(classes, instances, id)
                    .expect("slot checked live above");
                if collected {
                    counters.gc_classes.fetch_add(1, Ordering::Relaxed);
                }
                if new_class {
                    if class > classes.reps.len() {
                        return Err(PersistError::Corrupt(format!(
                            "wal creates class {class} beyond table end {}",
                            classes.reps.len()
                        )));
                    }
                    if class == classes.reps.len() {
                        classes.reps.push(None);
                        classes.hashes.push(CodeHash::from_u64(0));
                        classes.members.push(Vec::new());
                    }
                    if classes.reps[class].is_some() {
                        return Err(PersistError::Corrupt(format!(
                            "wal re-creates live class {class}"
                        )));
                    }
                    classes.reps[class] =
                        Some(Arc::new(invariant.expect("decoded above when new_class")));
                    classes.hashes[class] = hash;
                    classes.by_hash.entry(hash).or_default().push(class);
                    classes.live += 1;
                } else if classes.reps.get(class).map(Option::is_some) != Some(true) {
                    return Err(PersistError::Corrupt(format!(
                        "wal update of {id} references dead or unknown class {class}"
                    )));
                }
                instances.slots[id] = Some(class);
                instances.live += 1;
                crate::update::attach_member(classes, class, id);
            }
            counters.updates.fetch_add(1, Ordering::Relaxed);
        }
        TAG_REMOVE => {
            let id = dec.u64("wal remove id")? as usize;
            if seq < snapshot_seq {
                return Ok(());
            }
            match gc::remove_from_tables(classes, instances, id) {
                None => {
                    return Err(PersistError::Corrupt(format!(
                        "wal removes unknown or already-removed instance {id}"
                    )));
                }
                Some((_, collected)) => {
                    counters.removals.fetch_add(1, Ordering::Relaxed);
                    if collected {
                        counters.gc_classes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        other => {
            return Err(PersistError::Corrupt(format!("unknown wal record tag {other:#x}")));
        }
    }
    counters.replayed_records.fetch_add(1, Ordering::Relaxed);
    *next_seq = (*next_seq).max(seq + 1);
    Ok(())
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_torn_detection() {
        let framed = frame(b"hello");
        match next_frame(&framed) {
            Frame::Ok(payload, rest) => {
                assert_eq!(payload, b"hello");
                assert!(rest.is_empty());
            }
            _ => panic!("expected a clean frame"),
        }
        // A torn tail (half a record) is detected, not decoded.
        assert!(matches!(next_frame(&framed[..framed.len() - 3]), Frame::Torn));
        // A flipped payload bit fails the checksum.
        let mut bad = framed.clone();
        bad[5] ^= 0x40;
        assert!(matches!(next_frame(&bad), Frame::Torn));
        assert!(matches!(next_frame(&[]), Frame::End));
    }
}
