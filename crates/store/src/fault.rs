//! Deterministic fault injection for the persistence layer.
//!
//! A [`FaultyBackend`] wraps any [`StorageBackend`] and executes a
//! [`FaultPlan`]: fail the Nth operation at a named [`FaultSite`], *crash*
//! there (the fault fires before the bytes reach the durable inner backend,
//! and every subsequent operation fails — the process is "dead"), or tear a
//! write (the first half of the bytes land, then the crash). Reads can be
//! shortened to simulate a truncated medium. Everything is counted per
//! site, so a test can assert exactly which operation tripped.
//!
//! The crash model is the standard one for WAL testing: after a crash the
//! *inner* backend holds whatever had been durably written — possibly half
//! a record — and recovery runs against that medium via
//! [`InvariantStore::open`](crate::InvariantStore::open) with a fresh,
//! fault-free view ([`FaultyBackend::durable`]). Because plans are plain
//! data, every schedule is reproducible.
//!
//! Lock-poisoning is the one fault that does not involve storage;
//! [`poison_classes_lock`](crate::InvariantStore::poison_classes_lock) and
//! [`poison_memo_locks`](crate::InvariantStore::poison_memo_locks) inject
//! it by panicking (caught) while holding the write lock, so the
//! degradation suite can prove that a dead writer cannot wedge readers.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::persist::StorageBackend;
use crate::InvariantStore;

/// A named operation on the storage backend where a fault can fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A WAL append (one per ingest/remove record).
    WalAppend,
    /// A snapshot write (one per checkpoint).
    SnapshotWrite,
    /// The WAL reset that follows a snapshot write — crashing here leaves
    /// the snapshot *and* the pre-checkpoint WAL on the medium, the
    /// double-apply hazard the seq-skipping replay must neutralise.
    WalReset,
    /// A snapshot read (recovery).
    SnapshotRead,
    /// A WAL read (recovery).
    WalRead,
}

/// What happens when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation returns an I/O error; the backend stays alive.
    Error,
    /// The process "crashes": nothing of this operation reaches the durable
    /// medium, and every later operation on this wrapper fails.
    Crash,
    /// A torn write: the first half of the bytes reach the durable medium,
    /// then the crash. Only meaningful at write sites.
    TornWrite,
}

/// One scheduled fault: fire `kind` on the `nth` operation (0-based) at
/// `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    pub site: FaultSite,
    pub nth: u64,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, plus optional read shortening.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
    /// If set, WAL reads return at most this many bytes (a short read —
    /// recovery sees a truncated log even though the medium has more).
    pub short_read_wal: Option<usize>,
}

impl FaultPlan {
    /// A plan with no faults (the wrapper becomes a transparent proxy).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Convenience: a single fault of `kind` on the `nth` operation at
    /// `site`.
    pub fn once(site: FaultSite, nth: u64, kind: FaultKind) -> Self {
        FaultPlan { faults: vec![Fault { site, nth, kind }], short_read_wal: None }
    }
}

/// Per-site operation counters (how many operations were *attempted*).
#[derive(Default)]
struct SiteCounters {
    wal_append: AtomicU64,
    snapshot_write: AtomicU64,
    wal_reset: AtomicU64,
    snapshot_read: AtomicU64,
    wal_read: AtomicU64,
}

impl SiteCounters {
    fn bump(&self, site: FaultSite) -> u64 {
        let counter = match site {
            FaultSite::WalAppend => &self.wal_append,
            FaultSite::SnapshotWrite => &self.snapshot_write,
            FaultSite::WalReset => &self.wal_reset,
            FaultSite::SnapshotRead => &self.snapshot_read,
            FaultSite::WalRead => &self.wal_read,
        };
        counter.fetch_add(1, Ordering::SeqCst)
    }
}

/// A [`StorageBackend`] wrapper that executes a [`FaultPlan`] against an
/// inner (durable) backend.
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    plan: FaultPlan,
    counters: SiteCounters,
    dead: AtomicBool,
}

impl FaultyBackend {
    pub fn new(inner: Arc<dyn StorageBackend>, plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultyBackend {
            inner,
            plan,
            counters: SiteCounters::default(),
            dead: AtomicBool::new(false),
        })
    }

    /// The durable medium underneath, untouched by the plan — what a
    /// post-crash recovery opens.
    pub fn durable(&self) -> Arc<dyn StorageBackend> {
        self.inner.clone()
    }

    /// True once a `Crash`/`TornWrite` fault fired (every operation fails
    /// from then on).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn dead_error() -> io::Error {
        io::Error::other("fault injection: backend crashed")
    }

    /// Runs the pre-operation fault check: counts the attempt, and if the
    /// plan schedules a fault for it, applies the kind. `Ok(true)` means a
    /// torn write should be performed by the caller.
    fn check(&self, site: FaultSite) -> io::Result<bool> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::dead_error());
        }
        let n = self.counters.bump(site);
        for fault in &self.plan.faults {
            if fault.site == site && fault.nth == n {
                match fault.kind {
                    FaultKind::Error => {
                        return Err(io::Error::other(format!(
                            "fault injection: {site:?} #{n} failed"
                        )));
                    }
                    FaultKind::Crash => {
                        self.dead.store(true, Ordering::SeqCst);
                        return Err(Self::dead_error());
                    }
                    FaultKind::TornWrite => {
                        self.dead.store(true, Ordering::SeqCst);
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }
}

impl StorageBackend for FaultyBackend {
    fn read_snapshot(&self) -> io::Result<Option<Vec<u8>>> {
        self.check(FaultSite::SnapshotRead)?;
        self.inner.read_snapshot()
    }

    fn write_snapshot(&self, bytes: &[u8]) -> io::Result<()> {
        if self.check(FaultSite::SnapshotWrite)? {
            // Torn snapshot write: half the bytes replace the snapshot.
            // (A real FileBackend's rename is atomic, but the trait does not
            // promise that; the format must survive either way.)
            self.inner.write_snapshot(&bytes[..bytes.len() / 2])?;
            return Err(Self::dead_error());
        }
        self.inner.write_snapshot(bytes)
    }

    fn read_wal(&self) -> io::Result<Vec<u8>> {
        self.check(FaultSite::WalRead)?;
        let mut bytes = self.inner.read_wal()?;
        if let Some(limit) = self.plan.short_read_wal {
            bytes.truncate(limit);
        }
        Ok(bytes)
    }

    fn append_wal(&self, bytes: &[u8]) -> io::Result<()> {
        if self.check(FaultSite::WalAppend)? {
            // Torn append: the first half of the record lands durably.
            self.inner.append_wal(&bytes[..bytes.len() / 2])?;
            return Err(Self::dead_error());
        }
        self.inner.append_wal(bytes)
    }

    fn reset_wal(&self) -> io::Result<()> {
        self.check(FaultSite::WalReset)?;
        self.inner.reset_wal()
    }
}

impl InvariantStore {
    /// Test hook: poisons the class/instance table locks by panicking while
    /// holding them (the panic is caught here). Subsequent accessors must
    /// recover — counted in
    /// [`lock_recoveries`](crate::StoreStats::lock_recoveries) — instead of
    /// propagating the poison.
    pub fn poison_classes_lock(&self) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _classes = self.classes.write();
            let _instances = self.instances.write();
            panic!("fault injection: poisoning table locks");
        }));
        assert!(result.is_err(), "the poisoning closure must panic");
    }

    /// Test hook: poisons every memo shard lock (see
    /// [`poison_classes_lock`](Self::poison_classes_lock)).
    pub fn poison_memo_locks(&self) {
        for shard in &self.memo {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _shard = shard.write();
                panic!("fault injection: poisoning memo shard lock");
            }));
            assert!(result.is_err(), "the poisoning closure must panic");
        }
    }

    /// Test hook: runs `f` while every memo shard is write-locked, so
    /// memoised queries cannot make progress — the scenario the
    /// [`memo_lock_budget`](crate::StoreConfig::memo_lock_budget) fallback
    /// exists for.
    pub fn with_memo_frozen<R>(&self, f: impl FnOnce() -> R) -> R {
        let guards: Vec<_> =
            self.memo.iter().map(|s| crate::write_recover(s, &self.counters)).collect();
        let result = f();
        drop(guards);
        result
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::persist::MemoryBackend;

    #[test]
    fn faulty_backend_fires_on_schedule_and_dies_on_crash() {
        let durable = MemoryBackend::new();
        let faulty = FaultyBackend::new(
            durable.clone(),
            FaultPlan::once(FaultSite::WalAppend, 1, FaultKind::Crash),
        );
        assert!(faulty.append_wal(b"one").is_ok());
        assert!(faulty.append_wal(b"two").is_err(), "the 2nd append must crash");
        assert!(faulty.is_dead());
        assert!(faulty.append_wal(b"three").is_err(), "a dead backend stays dead");
        assert!(faulty.read_wal().is_err());
        assert_eq!(durable.wal_bytes(), b"one", "nothing after the crash reached the medium");
    }

    #[test]
    fn torn_write_lands_half_the_bytes() {
        let durable = MemoryBackend::new();
        let faulty = FaultyBackend::new(
            durable.clone(),
            FaultPlan::once(FaultSite::WalAppend, 0, FaultKind::TornWrite),
        );
        assert!(faulty.append_wal(b"abcdef").is_err());
        assert_eq!(durable.wal_bytes(), b"abc");
        assert!(faulty.is_dead());
    }

    #[test]
    fn error_fault_does_not_kill_the_backend() {
        let durable = MemoryBackend::new();
        let faulty = FaultyBackend::new(
            durable.clone(),
            FaultPlan::once(FaultSite::WalAppend, 0, FaultKind::Error),
        );
        assert!(faulty.append_wal(b"x").is_err());
        assert!(!faulty.is_dead());
        assert!(faulty.append_wal(b"y").is_ok());
        assert_eq!(durable.wal_bytes(), b"y");
    }

    #[test]
    fn short_reads_truncate_the_wal_view() {
        let durable = MemoryBackend::new();
        durable.append_wal(b"0123456789").unwrap();
        let faulty =
            FaultyBackend::new(durable, FaultPlan { faults: Vec::new(), short_read_wal: Some(4) });
        assert_eq!(faulty.read_wal().unwrap(), b"0123");
    }
}
