//! # topo-store — a concurrent invariant store and query service
//!
//! The rest of the workspace answers one query on one instance: build
//! `top(I)`, evaluate. This crate turns that one-shot pipeline into a
//! long-lived, thread-safe service in the spirit of the paper's
//! practical-considerations section: many clients ingest many spatial
//! instances and ask many queries, and the store makes the whole mix cost
//! one canonicalisation per instance plus one evaluation per
//! *(isomorphism class, query)* pair.
//!
//! Three ideas carry the design:
//!
//! * **Content addressing by canonical code.** Every ingested instance is
//!   reduced to its topological invariant, and the invariant's cached
//!   [`CodeHash`] is used as a content address: equal hashes nominate a
//!   candidate class, and a full (cached, cheap) canonical-code comparison
//!   via [`TopologicalInvariant::is_isomorphic_to`] confirms or refutes it.
//!   By Theorem 2.1 members of one class answer every topological query
//!   identically, so the store keeps a single shared-immutable
//!   `Arc<TopologicalInvariant>` representative per class and never clones
//!   an invariant.
//! * **Per-(class, query) memoisation.** Query answers are memoised in a
//!   sharded `RwLock` map keyed by `(ClassId, TopologicalQuery)`. Reads are
//!   copy-free (a `bool` out of a read-locked shard); misses evaluate on the
//!   class representative *outside* any lock, so a slow evaluation never
//!   blocks readers of other keys — at worst two racing threads compute the
//!   same answer once each.
//! * **Bounded memory.** The memo is capacity-bounded with an LRU-ish
//!   policy: every hit stamps the entry with a global tick, and a full shard
//!   evicts its least-recently-used entry. Evicting is always safe — a
//!   re-miss just re-evaluates on the representative, so answers are stable
//!   across eviction pressure (the stress tests pin this down).
//!
//! The store's whole value claim is "same answers as running the pipeline
//! per instance, under concurrency"; `tests/store_equivalence.rs` and
//! `tests/store_stress.rs` at the workspace root prove every behaviour
//! against the `isomorphism_classes` / `evaluate_on_classes` and frozen
//! `naive-reference` oracles, including under multi-threaded load.
//!
//! ```
//! use topo_spatial::{Region, SpatialInstance};
//! use topo_store::InvariantStore;
//!
//! let store = InvariantStore::default();
//! let disk = SpatialInstance::from_regions([("a", Region::rectangle(0, 0, 10, 10))]);
//! let far = SpatialInstance::from_regions([("a", Region::rectangle(500, 0, 510, 10))]);
//! let a = store.ingest(&disk);
//! let b = store.ingest(&far); // topologically the same disk: deduplicated
//! assert_eq!(store.class_of(a), store.class_of(b));
//! let q = topo_queries::TopologicalQuery::IsConnected(0);
//! assert_eq!(store.query(a, &q), Some(true));
//! assert_eq!(store.query(b, &q), Some(true)); // memo hit: no re-evaluation
//! assert_eq!(store.stats().memo_hits, 1);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use topo_invariant::{top, CodeHash, TopologicalInvariant};
use topo_queries::{evaluate_on_invariant, TopologicalQuery};
use topo_spatial::SpatialInstance;

/// Identifier of an ingested instance, assigned densely in ingest order.
pub type InstanceId = usize;

/// Identifier of an isomorphism class, assigned densely in order of first
/// appearance.
pub type ClassId = usize;

/// Tuning knobs of an [`InvariantStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Total number of memoised `(class, query)` answers kept across all
    /// shards; `0` disables memoisation entirely (every query evaluates on
    /// the class representative — the baseline the benchmarks compare
    /// against).
    pub memo_capacity: usize,
    /// Number of independent `RwLock` shards the memo is split over; more
    /// shards mean less write contention under concurrent misses.
    pub memo_shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { memo_capacity: 4096, memo_shards: 16 }
    }
}

impl StoreConfig {
    /// A configuration with memoisation disabled: every query evaluates on
    /// its class representative. Class-level deduplication still applies.
    pub fn without_memo() -> Self {
        StoreConfig { memo_capacity: 0, ..StoreConfig::default() }
    }
}

/// A point-in-time snapshot of the store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Instances ingested so far.
    pub instances: usize,
    /// Distinct isomorphism classes so far.
    pub classes: usize,
    /// Memoised answers currently held (≤ the configured capacity).
    pub memo_entries: usize,
    /// Queries answered from the memo.
    pub memo_hits: u64,
    /// Queries that had to evaluate on a class representative.
    pub memo_misses: u64,
    /// Memo entries evicted by the capacity bound.
    pub memo_evictions: u64,
    /// Ingests that landed in an existing class (deduplicated instances).
    pub dedup_hits: u64,
    /// Candidate classes nominated by an equal [`CodeHash`] but refuted by
    /// the full canonical-code comparison (genuine 64-bit digest
    /// collisions; expected to stay 0 in practice).
    pub hash_collisions: u64,
}

impl StoreStats {
    /// Fraction of queries answered from the memo, in `[0, 1]` (`0` when no
    /// query has been asked yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// One memoised answer; `last_used` is an atomic so a read-locked hit can
/// still refresh the LRU stamp.
struct MemoEntry {
    answer: bool,
    last_used: AtomicU64,
}

#[derive(Default)]
struct MemoShard {
    map: HashMap<(ClassId, TopologicalQuery), MemoEntry>,
}

/// The class table: content address → candidate classes, plus the shared
/// representative and the member list of every class. Kept behind one
/// `RwLock` so a partition snapshot is always internally consistent.
#[derive(Default)]
struct ClassTable {
    by_hash: HashMap<CodeHash, Vec<ClassId>>,
    reps: Vec<Arc<TopologicalInvariant>>,
    members: Vec<Vec<InstanceId>>,
}

/// A concurrent, in-memory store of topological invariants, deduplicated
/// into isomorphism classes and memoising query answers per class.
///
/// All methods take `&self`; the store is `Sync` and is designed to be
/// shared across threads (e.g. by reference from `std::thread::scope`, or
/// behind an `Arc`). See the [crate docs](crate) for the locking story.
pub struct InvariantStore {
    config: StoreConfig,
    classes: RwLock<ClassTable>,
    /// `InstanceId → ClassId`, append-only.
    instances: RwLock<Vec<ClassId>>,
    memo: Vec<RwLock<MemoShard>>,
    clock: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_evictions: AtomicU64,
    dedup_hits: AtomicU64,
    hash_collisions: AtomicU64,
}

impl Default for InvariantStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl InvariantStore {
    /// Creates an empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        let shards = config.memo_shards.max(1);
        InvariantStore {
            config,
            classes: RwLock::new(ClassTable::default()),
            instances: RwLock::new(Vec::new()),
            memo: (0..shards).map(|_| RwLock::new(MemoShard::default())).collect(),
            clock: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            memo_evictions: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            hash_collisions: AtomicU64::new(0),
        }
    }

    /// The configuration the store was created with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    // ----- ingest ------------------------------------------------------------

    /// Ingests a spatial instance: builds its invariant (the expensive part,
    /// outside every lock) and content-addresses it into an isomorphism
    /// class. Returns the dense id assigned to the instance.
    pub fn ingest(&self, instance: &SpatialInstance) -> InstanceId {
        self.ingest_invariant(Arc::new(top(instance)))
    }

    /// Ingests an already-built invariant without copying it: the `Arc` is
    /// stored as the class representative if it opens a new class, and
    /// dropped (the class keeps its first representative) if it joins an
    /// existing one.
    pub fn ingest_invariant(&self, invariant: Arc<TopologicalInvariant>) -> InstanceId {
        // Canonicalise before taking any lock: the first code computation is
        // the expensive step, and it is cached on the invariant itself, so
        // the locked section below only compares cached codes.
        let hash = invariant.code_hash();
        invariant.canonical_code();
        // Lock order everywhere both are held: `classes` before `instances`.
        let mut classes = self.classes.write().expect("class table lock");
        let class = match self.locate_class(&classes, hash, &invariant) {
            Some(class) => {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                class
            }
            None => {
                let class = classes.reps.len();
                classes.reps.push(invariant);
                classes.members.push(Vec::new());
                classes.by_hash.entry(hash).or_default().push(class);
                class
            }
        };
        let mut instances = self.instances.write().expect("instance table lock");
        let id = instances.len();
        instances.push(class);
        classes.members[class].push(id);
        id
    }

    /// Finds the class an invariant belongs to, if any: hash nomination plus
    /// cached-code confirmation. Counts refuted nominations as collisions.
    fn locate_class(
        &self,
        classes: &ClassTable,
        hash: CodeHash,
        invariant: &TopologicalInvariant,
    ) -> Option<ClassId> {
        let candidates = classes.by_hash.get(&hash)?;
        for &candidate in candidates {
            if classes.reps[candidate].is_isomorphic_to(invariant) {
                return Some(candidate);
            }
            self.hash_collisions.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    // ----- query -------------------------------------------------------------

    /// Answers a query for an ingested instance, or `None` for an unknown
    /// id. Members of one class share one memoised answer.
    pub fn query(&self, instance: InstanceId, query: &TopologicalQuery) -> Option<bool> {
        let class = *self.instances.read().expect("instance table lock").get(instance)?;
        Some(self.query_class_inner(class, query))
    }

    /// Answers a query for a whole class, or `None` for an unknown class id.
    pub fn query_class(&self, class: ClassId, query: &TopologicalQuery) -> Option<bool> {
        let known = class < self.classes.read().expect("class table lock").reps.len();
        known.then(|| self.query_class_inner(class, query))
    }

    /// Answers a query for every ingested instance, in instance order — the
    /// service-side analogue of `topo_queries::evaluate_on_classes` (each
    /// class evaluates at most once, then every member shares the answer).
    pub fn query_all(&self, query: &TopologicalQuery) -> Vec<bool> {
        let assignment: Vec<ClassId> = self.instances.read().expect("instance table lock").clone();
        let mut per_class: HashMap<ClassId, bool> = HashMap::new();
        assignment
            .into_iter()
            .map(|class| {
                *per_class.entry(class).or_insert_with(|| self.query_class_inner(class, query))
            })
            .collect()
    }

    fn query_class_inner(&self, class: ClassId, query: &TopologicalQuery) -> bool {
        if self.config.memo_capacity == 0 {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            return evaluate_on_invariant(query, &self.representative(class));
        }
        let shard = &self.memo[self.shard_of(class, query)];
        if let Some(entry) = shard.read().expect("memo shard lock").map.get(&(class, *query)) {
            entry.last_used.store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return entry.answer;
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        // Evaluate on the shared-immutable representative outside any lock:
        // racing threads at worst duplicate this evaluation, and both write
        // the same answer below.
        let answer = evaluate_on_invariant(query, &self.representative(class));
        let mut shard = shard.write().expect("memo shard lock");
        let capacity = self.shard_capacity();
        if shard.map.len() >= capacity && !shard.map.contains_key(&(class, *query)) {
            // LRU-ish eviction: drop the shard's least-recently-stamped
            // entry. Shards are small (capacity / shards), so the scan is
            // cheap relative to the evaluation that preceded it.
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
                self.memo_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            (class, *query),
            MemoEntry {
                answer,
                last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            },
        );
        answer
    }

    fn representative(&self, class: ClassId) -> Arc<TopologicalInvariant> {
        self.classes.read().expect("class table lock").reps[class].clone()
    }

    fn shard_of(&self, class: ClassId, query: &TopologicalQuery) -> usize {
        let mut hasher = DefaultHasher::new();
        class.hash(&mut hasher);
        query.hash(&mut hasher);
        (hasher.finish() as usize) % self.memo.len()
    }

    fn shard_capacity(&self) -> usize {
        (self.config.memo_capacity / self.memo.len()).max(1)
    }

    // ----- inspection --------------------------------------------------------

    /// Number of instances ingested so far.
    pub fn instance_count(&self) -> usize {
        self.instances.read().expect("instance table lock").len()
    }

    /// Number of distinct isomorphism classes so far.
    pub fn class_count(&self) -> usize {
        self.classes.read().expect("class table lock").reps.len()
    }

    /// The class an instance was deduplicated into, or `None` for an unknown
    /// id.
    pub fn class_of(&self, instance: InstanceId) -> Option<ClassId> {
        self.instances.read().expect("instance table lock").get(instance).copied()
    }

    /// The shared representative invariant of a class. The `Arc` is the very
    /// allocation ingested first into the class — the store never deep-copies
    /// an invariant.
    pub fn class_representative(&self, class: ClassId) -> Option<Arc<TopologicalInvariant>> {
        self.classes.read().expect("class table lock").reps.get(class).cloned()
    }

    /// The members of a class in ingest order, or `None` for an unknown id.
    pub fn class_members(&self, class: ClassId) -> Option<Vec<InstanceId>> {
        self.classes.read().expect("class table lock").members.get(class).cloned()
    }

    /// A consistent snapshot of the partition of all ingested instances into
    /// isomorphism classes, in order of first appearance — the same shape
    /// (and, for single-threaded ingest, the same value) as
    /// `topo_queries::isomorphism_classes` on the ingested invariants.
    pub fn classes(&self) -> Vec<Vec<InstanceId>> {
        self.classes.read().expect("class table lock").members.clone()
    }

    /// Drops every memoised answer (counters are kept). Queries re-evaluate
    /// and re-fill the memo afterwards; answers are unaffected.
    pub fn clear_memo(&self) {
        for shard in &self.memo {
            shard.write().expect("memo shard lock").map.clear();
        }
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        let memo_entries =
            self.memo.iter().map(|s| s.read().expect("memo shard lock").map.len()).sum();
        StoreStats {
            instances: self.instance_count(),
            classes: self.class_count(),
            memo_entries,
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            memo_evictions: self.memo_evictions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            hash_collisions: self.hash_collisions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_spatial::Region;

    fn disk(x: i64) -> SpatialInstance {
        SpatialInstance::from_regions([("a", Region::rectangle(x, 0, x + 10, 10))])
    }

    fn annulus() -> SpatialInstance {
        let mut region = Region::rectangle(0, 0, 100, 100);
        region.add_ring(vec![
            topo_geometry::Point::from_ints(30, 30),
            topo_geometry::Point::from_ints(70, 30),
            topo_geometry::Point::from_ints(70, 70),
            topo_geometry::Point::from_ints(30, 70),
        ]);
        SpatialInstance::from_regions([("a", region)])
    }

    #[test]
    fn deduplicates_and_memoises() {
        let store = InvariantStore::default();
        let a = store.ingest(&disk(0));
        let b = store.ingest(&disk(500));
        let c = store.ingest(&annulus());
        assert_eq!(store.instance_count(), 3);
        assert_eq!(store.class_count(), 2);
        assert_eq!(store.class_of(a), store.class_of(b));
        assert_ne!(store.class_of(a), store.class_of(c));
        assert_eq!(store.classes(), vec![vec![a, b], vec![c]]);

        let q = TopologicalQuery::HasHole(0);
        assert_eq!(store.query(a, &q), Some(false));
        assert_eq!(store.query(b, &q), Some(false)); // same class: memo hit
        assert_eq!(store.query(c, &q), Some(true));
        assert_eq!(store.query(99, &q), None);
        let stats = store.stats();
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.memo_misses, 2);
        assert_eq!(stats.memo_hits, 1);
        assert_eq!(stats.memo_entries, 2);
        assert_eq!(stats.hash_collisions, 0);
        assert_eq!(stats.hit_rate(), 1.0 / 3.0);
    }

    #[test]
    fn ingest_invariant_shares_the_allocation() {
        let store = InvariantStore::default();
        let invariant = Arc::new(top(&disk(0)));
        let id = store.ingest_invariant(invariant.clone());
        let class = store.class_of(id).unwrap();
        let rep = store.class_representative(class).unwrap();
        assert!(Arc::ptr_eq(&rep, &invariant), "the store must not copy the invariant");
        // A duplicate keeps the first representative.
        let dup = Arc::new(top(&disk(700)));
        store.ingest_invariant(dup.clone());
        let rep = store.class_representative(class).unwrap();
        assert!(Arc::ptr_eq(&rep, &invariant));
    }

    #[test]
    fn eviction_respects_capacity_and_preserves_answers() {
        let store = InvariantStore::new(StoreConfig { memo_capacity: 2, memo_shards: 1 });
        let a = store.ingest(&disk(0));
        let queries = [
            TopologicalQuery::HasHole(0),
            TopologicalQuery::IsConnected(0),
            TopologicalQuery::ComponentCountEven(0),
            TopologicalQuery::Intersects(0, 0),
        ];
        let first: Vec<_> = queries.iter().map(|q| store.query(a, q).unwrap()).collect();
        let stats = store.stats();
        assert!(stats.memo_entries <= 2, "capacity bound violated: {stats:?}");
        assert!(stats.memo_evictions >= 2);
        // Under continued pressure, answers stay stable.
        let second: Vec<_> = queries.iter().map(|q| store.query(a, q).unwrap()).collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![false, true, false, true]);
    }

    #[test]
    fn memo_disabled_always_evaluates() {
        let store = InvariantStore::new(StoreConfig::without_memo());
        let a = store.ingest(&disk(0));
        let q = TopologicalQuery::IsConnected(0);
        assert_eq!(store.query(a, &q), Some(true));
        assert_eq!(store.query(a, &q), Some(true));
        let stats = store.stats();
        assert_eq!(stats.memo_hits, 0);
        assert_eq!(stats.memo_misses, 2);
        assert_eq!(stats.memo_entries, 0);
    }

    #[test]
    fn clear_memo_keeps_answers() {
        let store = InvariantStore::default();
        let a = store.ingest(&annulus());
        let q = TopologicalQuery::HasHole(0);
        assert_eq!(store.query(a, &q), Some(true));
        store.clear_memo();
        assert_eq!(store.stats().memo_entries, 0);
        assert_eq!(store.query(a, &q), Some(true));
    }

    #[test]
    fn query_all_matches_per_instance_queries() {
        let store = InvariantStore::default();
        let ids = [store.ingest(&disk(0)), store.ingest(&annulus()), store.ingest(&disk(300))];
        let q = TopologicalQuery::HasHole(0);
        let all = store.query_all(&q);
        for (&id, &answer) in ids.iter().zip(all.iter()) {
            assert_eq!(store.query(id, &q), Some(answer));
        }
        assert_eq!(all, vec![false, true, false]);
    }
}
