//! # topo-store — a concurrent, durable invariant store and query service
//!
//! The rest of the workspace answers one query on one instance: build
//! `top(I)`, evaluate. This crate turns that one-shot pipeline into a
//! long-lived, thread-safe service in the spirit of the paper's
//! practical-considerations section: many clients ingest many spatial
//! instances and ask many queries, and the store makes the whole mix cost
//! one canonicalisation per instance plus one evaluation per
//! *(isomorphism class, query)* pair.
//!
//! Three ideas carry the in-memory design:
//!
//! * **Content addressing by canonical code.** Every ingested instance is
//!   reduced to its topological invariant, and the invariant's cached
//!   [`CodeHash`] is used as a content address: equal hashes nominate a
//!   candidate class, and a full (cached, cheap) canonical-code comparison
//!   via [`TopologicalInvariant::is_isomorphic_to`] confirms or refutes it.
//!   By Theorem 2.1 members of one class answer every topological query
//!   identically, so the store keeps a single shared-immutable
//!   `Arc<TopologicalInvariant>` representative per class and never clones
//!   an invariant.
//! * **Per-(class, query) memoisation.** Query answers are memoised in a
//!   sharded `RwLock` map keyed by `(ClassId, TopologicalQuery)`. Reads are
//!   copy-free (a `bool` out of a read-locked shard); misses evaluate on the
//!   class representative *outside* any lock, so a slow evaluation never
//!   blocks readers of other keys — at worst two racing threads compute the
//!   same answer once each.
//! * **Bounded memory.** Both caches are capacity-bounded. The memo has an
//!   LRU-ish policy: every hit stamps the entry with a global tick, and a
//!   full shard evicts its least-recently-used entry; evicting is always
//!   safe — a re-miss just re-evaluates on the representative. The class
//!   table itself can be bounded too ([`StoreConfig::max_classes`]), with an
//!   explicit admission policy: an ingest that would open a class beyond the
//!   bound is [`IngestOutcome::Rejected`] instead of growing the table, so
//!   overload degrades predictably.
//!
//! On top of that sit the durability and failure layers this crate grew for
//! the "survive contact with production" story:
//!
//! * **Persistence and crash recovery** ([`persist`]): a versioned,
//!   checksummed binary snapshot + write-ahead-log format over a pluggable
//!   [`StorageBackend`]. [`InvariantStore::open`] recovers a store by
//!   loading the snapshot and replaying the WAL, truncating (never
//!   trusting) torn or corrupt tail records; [`InvariantStore::checkpoint`]
//!   folds the WAL into a fresh snapshot.
//! * **Removal and garbage collection** ([`gc`], re-exported as
//!   [`InvariantStore::remove_instance`]): instances can leave, a class
//!   whose last member left is collected — its representative dropped, its
//!   content address unregistered, its memo entries purged — and ids are
//!   never reused, so no stale answer can resurface.
//! * **Graceful degradation and lock hygiene**: every lock accessor recovers
//!   from poisoning (one panicking writer cannot wedge future readers), and
//!   an optional per-query lock budget ([`StoreConfig::memo_lock_budget`])
//!   makes queries fall back to an un-memoised evaluation on the class
//!   representative instead of blocking on a contended or frozen memo.
//! * **Deterministic fault injection** ([`fault`]): a [`FaultPlan`] fails
//!   the Nth backend write, crashes at a named site (mid-append, mid
//!   snapshot, between snapshot and WAL reset), tears writes and shortens
//!   reads — driving the recovery-equivalence suites that prove a recovered
//!   store answers exactly like a never-crashed one.
//!
//! The store's whole value claim is "same answers as running the pipeline
//! per instance, under concurrency and across failures";
//! `tests/store_equivalence.rs`, `tests/store_stress.rs` and
//! `tests/store_recovery.rs` at the workspace root prove every behaviour
//! against the `isomorphism_classes` / `evaluate_on_classes` and frozen
//! `naive-reference` oracles, including under multi-threaded load and
//! injected faults.
//!
//! ```
//! use topo_spatial::{Region, SpatialInstance};
//! use topo_store::InvariantStore;
//!
//! let store = InvariantStore::default();
//! let disk = SpatialInstance::from_regions([("a", Region::rectangle(0, 0, 10, 10))]);
//! let far = SpatialInstance::from_regions([("a", Region::rectangle(500, 0, 510, 10))]);
//! let a = store.ingest(&disk);
//! let b = store.ingest(&far); // topologically the same disk: deduplicated
//! assert_eq!(store.class_of(a), store.class_of(b));
//! let q = topo_queries::TopologicalQuery::IsConnected(0);
//! assert_eq!(store.query(a, &q), Some(true));
//! assert_eq!(store.query(b, &q), Some(true)); // memo hit: no re-evaluation
//! assert_eq!(store.stats().memo_hits, 1);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use topo_invariant::{top, CodeHash, TopologicalInvariant};
use topo_queries::{evaluate_goal_directed, evaluate_on_invariant, TopologicalQuery};
use topo_spatial::SpatialInstance;

pub mod fault;
pub mod gc;
pub mod persist;
pub mod update;

pub use fault::{Fault, FaultKind, FaultPlan, FaultSite, FaultyBackend};
pub use persist::{FileBackend, MemoryBackend, PersistError, StorageBackend};

/// Identifier of an ingested instance, assigned densely in ingest order and
/// never reused — a removed instance's id stays dead forever.
pub type InstanceId = usize;

/// Identifier of an isomorphism class, assigned densely in order of first
/// appearance and never reused — a garbage-collected class's id stays dead
/// forever (so no stale memo entry can ever be read through a recycled id).
pub type ClassId = usize;

/// Tuning knobs of an [`InvariantStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Total number of memoised `(class, query)` answers kept across all
    /// shards; `0` disables memoisation entirely (every query evaluates on
    /// the class representative — the baseline the benchmarks compare
    /// against).
    pub memo_capacity: usize,
    /// Number of independent `RwLock` shards the memo is split over; more
    /// shards mean less write contention under concurrent misses.
    /// Normalised at construction: `0` becomes `1`, and more shards than
    /// `memo_capacity` are clamped down so the per-shard capacity stays a
    /// genuine bound.
    pub memo_shards: usize,
    /// Capacity bound on the class table itself: an ingest that would open a
    /// class beyond this many *live* classes is [`IngestOutcome::Rejected`].
    /// `usize::MAX` (the default) means unbounded. Garbage-collecting a
    /// class frees its slot for admission.
    pub max_classes: usize,
    /// Query-side lock budget: `None` (the default) blocks on the memo
    /// shard locks as usual; `Some(n)` makes a query attempt each memo lock
    /// at most `n + 1` times without blocking and then *fall back* to an
    /// un-memoised evaluation on the class representative (counted in
    /// [`StoreStats::fallback_evals`]) — bounded degradation instead of
    /// unbounded waiting.
    pub memo_lock_budget: Option<u32>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memo_capacity: 4096,
            memo_shards: 16,
            max_classes: usize::MAX,
            memo_lock_budget: None,
        }
    }
}

/// A degenerate [`StoreConfig`] that construction refuses with a clear
/// message instead of letting it surface as arithmetic panics (or silent
/// unbounded rejection) deep in the ingest and query paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreConfigError {
    /// `max_classes == 0`: the store could never admit anything.
    ZeroClassCapacity,
}

impl fmt::Display for StoreConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreConfigError::ZeroClassCapacity => write!(
                f,
                "StoreConfig::max_classes must be at least 1 (use usize::MAX for unbounded)"
            ),
        }
    }
}

impl std::error::Error for StoreConfigError {}

impl StoreConfig {
    /// A configuration with memoisation disabled: every query evaluates on
    /// its class representative. Class-level deduplication still applies.
    pub fn without_memo() -> Self {
        StoreConfig { memo_capacity: 0, ..StoreConfig::default() }
    }

    /// Validates and normalises the configuration: recoverable degeneracies
    /// are fixed up (`memo_shards == 0` becomes `1`; more shards than
    /// `memo_capacity` are clamped so the total capacity bound holds),
    /// unrecoverable ones are a clear [`StoreConfigError`]. Construction
    /// applies this, so [`InvariantStore::config`] always reports the
    /// normalised knobs actually in effect.
    pub fn validated(mut self) -> Result<Self, StoreConfigError> {
        if self.max_classes == 0 {
            return Err(StoreConfigError::ZeroClassCapacity);
        }
        self.memo_shards = self.memo_shards.clamp(1, self.memo_capacity.max(1));
        Ok(self)
    }
}

/// The outcome of an admission-checked ingest
/// ([`InvariantStore::try_ingest`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The instance opened a new isomorphism class.
    Admitted(InstanceId),
    /// The instance joined an existing class (a dedup hit).
    Deduplicated(InstanceId),
    /// The instance would have opened a new class but the class table is at
    /// [`StoreConfig::max_classes`]: nothing was stored, no id was consumed,
    /// and [`StoreStats::rejected`] was incremented. Duplicates of resident
    /// classes are still admitted while the table is full.
    Rejected,
}

impl IngestOutcome {
    /// The id assigned to the instance, unless it was rejected.
    pub fn id(&self) -> Option<InstanceId> {
        match *self {
            IngestOutcome::Admitted(id) | IngestOutcome::Deduplicated(id) => Some(id),
            IngestOutcome::Rejected => None,
        }
    }

    /// True iff the ingest was rejected by the admission policy.
    pub fn is_rejected(&self) -> bool {
        matches!(self, IngestOutcome::Rejected)
    }
}

/// A point-in-time snapshot of the store's counters.
///
/// Two kinds of counter live here, and they age differently:
///
/// * **Current** counters describe the state right now and can go *down*:
///   [`instances`](Self::instances) and [`classes`](Self::classes) are live
///   counts (removal and GC decrease them), and
///   [`memo_entries`](Self::memo_entries) is the resident memo size
///   (eviction, [`clear_memo`](InvariantStore::clear_memo) and GC purges
///   decrease it).
/// * **Monotone** counters only ever grow over the lifetime of one store
///   value: every other field. They are process-local — a store recovered
///   with [`InvariantStore::open`] starts its monotone counters from the
///   recovery replay, not from the pre-crash process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live instances currently in the store (current, not monotone).
    pub instances: usize,
    /// Live isomorphism classes currently in the store (current).
    pub classes: usize,
    /// Memoised answers currently held, ≤ the configured capacity (current).
    /// Under a configured [`StoreConfig::memo_lock_budget`] this gauge skips
    /// shards frozen past the budget (counting them as 0) rather than block.
    pub memo_entries: usize,
    /// Queries answered from the memo (monotone).
    pub memo_hits: u64,
    /// Queries that had to evaluate on a class representative, including
    /// lock-budget fallbacks (monotone).
    pub memo_misses: u64,
    /// Memo entries evicted by the capacity bound (monotone). Entries
    /// dropped by `clear_memo` or a class GC count in
    /// [`memo_invalidated`](Self::memo_invalidated) instead.
    pub memo_evictions: u64,
    /// Memo entries dropped by [`InvariantStore::clear_memo`] or purged by a
    /// class garbage collection (monotone).
    pub memo_invalidated: u64,
    /// Ingests that landed in an existing class (monotone).
    pub dedup_hits: u64,
    /// Candidate classes nominated by an equal [`CodeHash`] but refuted by
    /// the full canonical-code comparison (genuine 64-bit digest
    /// collisions; expected to stay 0 in practice) (monotone).
    pub hash_collisions: u64,
    /// Instances removed via [`InvariantStore::remove_instance`], including
    /// removals replayed from the WAL during recovery (monotone).
    pub removals: u64,
    /// Instances re-pointed at a new class via
    /// [`InvariantStore::update_instance`] (including no-op updates and
    /// updates replayed from the WAL during recovery; rejected updates are
    /// counted in [`rejected`](Self::rejected) instead) (monotone).
    pub updates: u64,
    /// Classes garbage-collected after their last member left (monotone).
    pub gc_classes: u64,
    /// Ingests rejected by the [`StoreConfig::max_classes`] admission bound
    /// (monotone).
    pub rejected: u64,
    /// Queries answered by the un-memoised fallback because the
    /// [`StoreConfig::memo_lock_budget`] ran out (monotone; a subset of
    /// [`memo_misses`](Self::memo_misses)).
    pub fallback_evals: u64,
    /// Poisoned locks recovered by an accessor instead of propagating the
    /// panic (monotone).
    pub lock_recoveries: u64,
    /// WAL records durably appended (monotone; persistent stores only).
    pub wal_appends: u64,
    /// WAL appends that failed at the backend; the in-memory state kept
    /// serving (monotone).
    pub wal_errors: u64,
    /// Snapshots written by [`InvariantStore::checkpoint`] (monotone).
    pub snapshots: u64,
    /// WAL records applied during [`InvariantStore::open`] (monotone).
    pub replayed_records: u64,
    /// Torn or corrupt WAL tails detected and truncated during recovery
    /// (monotone; one per truncation event).
    pub wal_truncations: u64,
}

impl StoreStats {
    /// Fraction of queries answered from the memo, in `[0, 1]` (`0` when no
    /// query has been asked yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// One memoised answer; `last_used` is an atomic so a read-locked hit can
/// still refresh the LRU stamp.
struct MemoEntry {
    answer: bool,
    last_used: AtomicU64,
}

#[derive(Default)]
pub(crate) struct MemoShard {
    pub(crate) map: HashMap<(ClassId, TopologicalQuery), MemoEntry>,
}

/// The class table: content address → candidate classes, plus the shared
/// representative, content hash and member list of every class slot. Kept
/// behind one `RwLock` so a partition snapshot is always internally
/// consistent. Garbage-collected slots keep their index (`reps[c] == None`)
/// so class ids are never reused.
#[derive(Default)]
pub(crate) struct ClassTable {
    pub(crate) by_hash: HashMap<CodeHash, Vec<ClassId>>,
    pub(crate) reps: Vec<Option<Arc<TopologicalInvariant>>>,
    pub(crate) hashes: Vec<CodeHash>,
    pub(crate) members: Vec<Vec<InstanceId>>,
    /// Number of live (non-collected) classes; the admission bound compares
    /// against this, so GC frees admission capacity.
    pub(crate) live: usize,
}

/// The instance table: `InstanceId → ClassId`, with tombstones for removed
/// instances (ids are never reused).
#[derive(Default)]
pub(crate) struct InstanceTable {
    pub(crate) slots: Vec<Option<ClassId>>,
    pub(crate) live: usize,
}

/// The store's monotone counters, grouped so lock helpers can reach them.
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) memo_hits: AtomicU64,
    pub(crate) memo_misses: AtomicU64,
    pub(crate) memo_evictions: AtomicU64,
    pub(crate) memo_invalidated: AtomicU64,
    pub(crate) dedup_hits: AtomicU64,
    pub(crate) hash_collisions: AtomicU64,
    pub(crate) removals: AtomicU64,
    pub(crate) updates: AtomicU64,
    pub(crate) gc_classes: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) fallback_evals: AtomicU64,
    pub(crate) lock_recoveries: AtomicU64,
    pub(crate) wal_appends: AtomicU64,
    pub(crate) wal_errors: AtomicU64,
    pub(crate) snapshots: AtomicU64,
    pub(crate) replayed_records: AtomicU64,
    pub(crate) wal_truncations: AtomicU64,
}

/// Acquires a read lock, recovering from poisoning: the data under these
/// locks is kept consistent by construction (every writer restores the
/// structural invariants before any point that can panic), so a poisoned
/// lock means a *different* writer died, not that this data is torn.
pub(crate) fn read_recover<'a, T>(
    lock: &'a RwLock<T>,
    counters: &Counters,
) -> RwLockReadGuard<'a, T> {
    match lock.read() {
        Ok(guard) => guard,
        Err(poisoned) => {
            counters.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// Acquires a write lock, recovering from poisoning (see [`read_recover`]).
pub(crate) fn write_recover<'a, T>(
    lock: &'a RwLock<T>,
    counters: &Counters,
) -> RwLockWriteGuard<'a, T> {
    match lock.write() {
        Ok(guard) => guard,
        Err(poisoned) => {
            counters.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// A concurrent store of topological invariants, deduplicated into
/// isomorphism classes, memoising query answers per class, and optionally
/// durable through a snapshot + write-ahead-log [`persist`] layer.
///
/// All methods take `&self`; the store is `Sync` and is designed to be
/// shared across threads (e.g. by reference from `std::thread::scope`, or
/// behind an `Arc`). See the [crate docs](crate) for the locking story.
pub struct InvariantStore {
    config: StoreConfig,
    pub(crate) classes: RwLock<ClassTable>,
    pub(crate) instances: RwLock<InstanceTable>,
    pub(crate) memo: Vec<RwLock<MemoShard>>,
    clock: AtomicU64,
    pub(crate) counters: Counters,
    pub(crate) persistence: Option<persist::Persistence>,
}

impl Default for InvariantStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl InvariantStore {
    /// Creates an empty in-memory store with the given configuration
    /// (normalised via [`StoreConfig::validated`]).
    ///
    /// # Panics
    /// Panics with the [`StoreConfigError`] message on an unrecoverably
    /// degenerate configuration; use [`try_new`](Self::try_new) to handle it
    /// as a value.
    pub fn new(config: StoreConfig) -> Self {
        match Self::try_new(config) {
            Ok(store) => store,
            Err(error) => panic!("invalid StoreConfig: {error}"),
        }
    }

    /// Creates an empty in-memory store, returning the configuration error
    /// instead of panicking.
    pub fn try_new(config: StoreConfig) -> Result<Self, StoreConfigError> {
        let config = config.validated()?;
        Ok(InvariantStore {
            config,
            classes: RwLock::new(ClassTable::default()),
            instances: RwLock::new(InstanceTable::default()),
            memo: (0..config.memo_shards).map(|_| RwLock::new(MemoShard::default())).collect(),
            clock: AtomicU64::new(0),
            counters: Counters::default(),
            persistence: None,
        })
    }

    /// The configuration the store runs with, after normalisation.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    // ----- ingest ------------------------------------------------------------

    /// Ingests a spatial instance: builds its invariant (the expensive part,
    /// outside every lock) and content-addresses it into an isomorphism
    /// class. Returns the dense id assigned to the instance.
    ///
    /// # Panics
    /// Panics if the admission policy rejects the instance (only possible
    /// with a bounded [`StoreConfig::max_classes`]); bounded stores should
    /// use [`try_ingest`](Self::try_ingest).
    pub fn ingest(&self, instance: &SpatialInstance) -> InstanceId {
        self.ingest_invariant(Arc::new(top(instance)))
    }

    /// Ingests an already-built invariant without copying it: the `Arc` is
    /// stored as the class representative if it opens a new class, and
    /// dropped (the class keeps its first representative) if it joins an
    /// existing one.
    ///
    /// # Panics
    /// Panics if the admission policy rejects the invariant (only possible
    /// with a bounded [`StoreConfig::max_classes`]); bounded stores should
    /// use [`try_ingest_invariant`](Self::try_ingest_invariant).
    pub fn ingest_invariant(&self, invariant: Arc<TopologicalInvariant>) -> InstanceId {
        match self.try_ingest_invariant(invariant) {
            IngestOutcome::Admitted(id) | IngestOutcome::Deduplicated(id) => id,
            IngestOutcome::Rejected => panic!(
                "InvariantStore::ingest_invariant rejected: class table at max_classes ({}); \
                 use try_ingest_invariant to handle admission",
                self.config.max_classes
            ),
        }
    }

    /// Admission-checked ingest of a spatial instance; see
    /// [`try_ingest_invariant`](Self::try_ingest_invariant).
    pub fn try_ingest(&self, instance: &SpatialInstance) -> IngestOutcome {
        self.try_ingest_invariant(Arc::new(top(instance)))
    }

    /// Admission-checked ingest: deduplicates into an existing class
    /// ([`IngestOutcome::Deduplicated`]), opens a new class if the table has
    /// room ([`IngestOutcome::Admitted`]), or — when the invariant would
    /// open a class beyond [`StoreConfig::max_classes`] — stores nothing and
    /// returns [`IngestOutcome::Rejected`] so overload degrades into an
    /// explicit signal instead of unbounded growth.
    ///
    /// On a persistent store the admitted/deduplicated outcome is appended
    /// to the WAL before the locks release; a backend failure is counted in
    /// [`StoreStats::wal_errors`] and the in-memory ingest still completes
    /// (availability over durability — the caller can watch the counter).
    pub fn try_ingest_invariant(&self, invariant: Arc<TopologicalInvariant>) -> IngestOutcome {
        // Canonicalise before taking any lock: the first code computation is
        // the expensive step, and it is cached on the invariant itself, so
        // the locked section below only compares cached codes.
        let hash = invariant.code_hash();
        invariant.canonical_code();
        // Lock order everywhere both are held: `classes` before `instances`.
        let mut classes = write_recover(&self.classes, &self.counters);
        let (class, admitted) = match self.locate_class(&classes, hash, &invariant) {
            Some(class) => {
                self.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
                (class, false)
            }
            None => {
                if classes.live >= self.config.max_classes {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return IngestOutcome::Rejected;
                }
                let class = classes.reps.len();
                classes.reps.push(Some(invariant));
                classes.hashes.push(hash);
                classes.members.push(Vec::new());
                classes.by_hash.entry(hash).or_default().push(class);
                classes.live += 1;
                (class, true)
            }
        };
        let mut instances = write_recover(&self.instances, &self.counters);
        let id = instances.slots.len();
        instances.slots.push(Some(class));
        instances.live += 1;
        classes.members[class].push(id);
        if self.persistence.is_some() {
            // Appended while both locks are held, so the WAL order is exactly
            // the id-assignment order: recovery always sees a prefix.
            self.wal_ingest(&classes, id, class, admitted);
        }
        if admitted {
            IngestOutcome::Admitted(id)
        } else {
            IngestOutcome::Deduplicated(id)
        }
    }

    /// Batched [`ingest`](Self::ingest): builds and canonicalises every
    /// invariant across the global thread pool (outside any lock), then
    /// admits the whole batch in order under one critical section with a
    /// single amortised WAL append. Ids are assigned in batch order, so the
    /// result is exactly what a sequential `ingest` loop over the same
    /// slice would return.
    ///
    /// # Panics
    /// Panics if the admission policy rejects any instance (only possible
    /// with a bounded [`StoreConfig::max_classes`]); bounded stores should
    /// use [`try_ingest_batch`](Self::try_ingest_batch).
    pub fn ingest_batch(&self, instances: &[SpatialInstance]) -> Vec<InstanceId> {
        self.try_ingest_batch(instances)
            .into_iter()
            .map(|outcome| match outcome {
                IngestOutcome::Admitted(id) | IngestOutcome::Deduplicated(id) => id,
                IngestOutcome::Rejected => panic!(
                    "InvariantStore::ingest_batch rejected: class table at max_classes ({}); \
                     use try_ingest_batch to handle admission",
                    self.config.max_classes
                ),
            })
            .collect()
    }

    /// Admission-checked batched ingest; see
    /// [`ingest_batch`](Self::ingest_batch). Outcomes are reported per
    /// instance, in batch order, with the same admission semantics as a
    /// sequential
    /// [`try_ingest`](Self::try_ingest) loop: a rejected instance stores
    /// nothing and consumes no id, and later instances still proceed.
    pub fn try_ingest_batch(&self, instances: &[SpatialInstance]) -> Vec<IngestOutcome> {
        let pool = topo_parallel::Pool::global();
        // The expensive half — building and canonicalising the invariants —
        // runs across the pool with no store lock held.
        let invariants: Vec<Arc<TopologicalInvariant>> = pool.par_map_collect(instances, |inst| {
            let invariant = Arc::new(top(inst));
            invariant.code_hash();
            invariant.canonical_code();
            invariant
        });
        self.try_ingest_invariant_batch(&invariants)
    }

    /// Batched analogue of
    /// [`try_ingest_invariant`](Self::try_ingest_invariant): canonicalises
    /// every invariant across the thread pool first (cached on the
    /// invariants, so this is free for invariants that already carry their
    /// codes), then admits them in batch order under one critical section,
    /// appending all WAL records in a single backend write. Observationally
    /// equivalent to the sequential loop.
    pub fn try_ingest_invariant_batch(
        &self,
        invariants: &[Arc<TopologicalInvariant>],
    ) -> Vec<IngestOutcome> {
        let pool = topo_parallel::Pool::global();
        let hashes: Vec<CodeHash> = pool.par_map_collect(invariants, |invariant| {
            let hash = invariant.code_hash();
            invariant.canonical_code();
            hash
        });
        let mut records: Vec<(InstanceId, ClassId, bool)> = Vec::with_capacity(invariants.len());
        let mut outcomes = Vec::with_capacity(invariants.len());
        // Lock order everywhere both are held: `classes` before `instances`.
        let mut classes = write_recover(&self.classes, &self.counters);
        let mut instances = write_recover(&self.instances, &self.counters);
        for (invariant, &hash) in invariants.iter().zip(&hashes) {
            let (class, admitted) = match self.locate_class(&classes, hash, invariant) {
                Some(class) => {
                    self.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    (class, false)
                }
                None => {
                    if classes.live >= self.config.max_classes {
                        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        outcomes.push(IngestOutcome::Rejected);
                        continue;
                    }
                    let class = classes.reps.len();
                    classes.reps.push(Some(invariant.clone()));
                    classes.hashes.push(hash);
                    classes.members.push(Vec::new());
                    classes.by_hash.entry(hash).or_default().push(class);
                    classes.live += 1;
                    (class, true)
                }
            };
            let id = instances.slots.len();
            instances.slots.push(Some(class));
            instances.live += 1;
            classes.members[class].push(id);
            records.push((id, class, admitted));
            outcomes.push(if admitted {
                IngestOutcome::Admitted(id)
            } else {
                IngestOutcome::Deduplicated(id)
            });
        }
        if self.persistence.is_some() {
            // One group append while both locks are held, so the WAL order is
            // still exactly the id-assignment order: recovery always sees a
            // prefix of the operation history.
            self.wal_ingest_batch(&classes, &records);
        }
        outcomes
    }

    /// Finds the class an invariant belongs to, if any: hash nomination plus
    /// cached-code confirmation. Counts refuted nominations as collisions.
    fn locate_class(
        &self,
        classes: &ClassTable,
        hash: CodeHash,
        invariant: &TopologicalInvariant,
    ) -> Option<ClassId> {
        let candidates = classes.by_hash.get(&hash)?;
        for &candidate in candidates {
            let Some(rep) = classes.reps[candidate].as_ref() else { continue };
            if rep.is_isomorphic_to(invariant) {
                return Some(candidate);
            }
            self.counters.hash_collisions.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    // ----- query -------------------------------------------------------------

    /// Answers a query for an ingested instance, or `None` for an unknown or
    /// removed id. Members of one class share one memoised answer.
    pub fn query(&self, instance: InstanceId, query: &TopologicalQuery) -> Option<bool> {
        let class = (*read_recover(&self.instances, &self.counters).slots.get(instance)?)?;
        self.query_class_inner(class, query)
    }

    /// Answers a query for a whole class, or `None` for an unknown or
    /// garbage-collected class id.
    pub fn query_class(&self, class: ClassId, query: &TopologicalQuery) -> Option<bool> {
        self.query_class_inner(class, query)
    }

    /// Answers a query for every live instance, in instance-id order — the
    /// service-side analogue of `topo_queries::evaluate_on_classes` (each
    /// class evaluates at most once, then every member shares the answer).
    /// Removed instances are skipped, so on a store that never removed
    /// anything this is one answer per ingest in ingest order.
    pub fn query_all(&self, query: &TopologicalQuery) -> Vec<bool> {
        let assignment: Vec<ClassId> = read_recover(&self.instances, &self.counters)
            .slots
            .iter()
            .filter_map(|slot| *slot)
            .collect();
        let mut per_class: HashMap<ClassId, Option<bool>> = HashMap::new();
        assignment
            .into_iter()
            .filter_map(|class| {
                *per_class.entry(class).or_insert_with(|| self.query_class_inner(class, query))
            })
            .collect()
    }

    /// Attempts a memo-shard lock within the configured budget: blocking
    /// (with poison recovery) when no budget is set, else bounded tries.
    fn budget_read<'a>(
        &self,
        shard: &'a RwLock<MemoShard>,
    ) -> Option<RwLockReadGuard<'a, MemoShard>> {
        match self.config.memo_lock_budget {
            None => Some(read_recover(shard, &self.counters)),
            Some(budget) => {
                for _ in 0..=budget {
                    match shard.try_read() {
                        Ok(guard) => return Some(guard),
                        Err(TryLockError::Poisoned(poisoned)) => {
                            self.counters.lock_recoveries.fetch_add(1, Ordering::Relaxed);
                            return Some(poisoned.into_inner());
                        }
                        Err(TryLockError::WouldBlock) => std::hint::spin_loop(),
                    }
                }
                None
            }
        }
    }

    /// Write-lock analogue of [`budget_read`](Self::budget_read).
    fn budget_write<'a>(
        &self,
        shard: &'a RwLock<MemoShard>,
    ) -> Option<RwLockWriteGuard<'a, MemoShard>> {
        match self.config.memo_lock_budget {
            None => Some(write_recover(shard, &self.counters)),
            Some(budget) => {
                for _ in 0..=budget {
                    match shard.try_write() {
                        Ok(guard) => return Some(guard),
                        Err(TryLockError::Poisoned(poisoned)) => {
                            self.counters.lock_recoveries.fetch_add(1, Ordering::Relaxed);
                            return Some(poisoned.into_inner());
                        }
                        Err(TryLockError::WouldBlock) => std::hint::spin_loop(),
                    }
                }
                None
            }
        }
    }

    /// Evaluates a query directly on a class representative (the un-memoised
    /// path); `None` if the class died in the meantime. This is the cheap
    /// degradation route (memo disabled, lock budget exhausted): the direct
    /// combinatorial algorithms, no program machinery.
    fn eval_on_representative(&self, class: ClassId, query: &TopologicalQuery) -> Option<bool> {
        let rep = self.class_representative(class)?;
        Some(evaluate_on_invariant(query, &rep))
    }

    /// Evaluates a query on a class representative through the goal-directed
    /// Datalog path — the route memo *fills* take, so each per-(class, query)
    /// answer is computed once by the demand-driven evaluator and then served
    /// from the memo. Observationally identical to
    /// [`eval_on_representative`](Self::eval_on_representative) (the
    /// equivalence suites pin both paths against the one-shot oracle); memo
    /// keys and answers are unchanged.
    fn eval_goal_directed_on_representative(
        &self,
        class: ClassId,
        query: &TopologicalQuery,
    ) -> Option<bool> {
        let rep = self.class_representative(class)?;
        Some(evaluate_goal_directed(query, &rep))
    }

    fn query_class_inner(&self, class: ClassId, query: &TopologicalQuery) -> Option<bool> {
        if self.config.memo_capacity == 0 {
            self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);
            return self.eval_on_representative(class, query);
        }
        let shard = &self.memo[self.shard_of(class, query)];
        match self.budget_read(shard) {
            Some(guard) => {
                if let Some(entry) = guard.map.get(&(class, *query)) {
                    entry
                        .last_used
                        .store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                    self.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.answer);
                }
            }
            None => {
                // Lock budget exhausted: degrade to a direct evaluation on
                // the representative rather than blocking the caller.
                self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);
                self.counters.fallback_evals.fetch_add(1, Ordering::Relaxed);
                return self.eval_on_representative(class, query);
            }
        }
        self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);
        // Evaluate on the shared-immutable representative outside any lock:
        // racing threads at worst duplicate this evaluation, and both write
        // the same answer below.
        let answer = self.eval_goal_directed_on_representative(class, query)?;
        let Some(mut shard) = self.budget_write(shard) else {
            // Could not record the answer within the budget; the answer
            // itself is already computed, so serve it un-memoised.
            self.counters.fallback_evals.fetch_add(1, Ordering::Relaxed);
            return Some(answer);
        };
        let capacity = self.shard_capacity();
        if shard.map.len() >= capacity && !shard.map.contains_key(&(class, *query)) {
            // LRU-ish eviction: drop the shard's least-recently-stamped
            // entry. Shards are small (capacity / shards), so the scan is
            // cheap relative to the evaluation that preceded it.
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
                self.counters.memo_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            (class, *query),
            MemoEntry {
                answer,
                last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            },
        );
        Some(answer)
    }

    pub(crate) fn shard_of(&self, class: ClassId, query: &TopologicalQuery) -> usize {
        let mut hasher = DefaultHasher::new();
        class.hash(&mut hasher);
        query.hash(&mut hasher);
        (hasher.finish() as usize) % self.memo.len()
    }

    fn shard_capacity(&self) -> usize {
        (self.config.memo_capacity / self.memo.len()).max(1)
    }

    // ----- inspection --------------------------------------------------------

    /// Number of live instances (removed instances no longer count).
    pub fn instance_count(&self) -> usize {
        read_recover(&self.instances, &self.counters).live
    }

    /// Number of live isomorphism classes (GC'd classes no longer count).
    pub fn class_count(&self) -> usize {
        read_recover(&self.classes, &self.counters).live
    }

    /// The class an instance was deduplicated into, or `None` for an unknown
    /// or removed id.
    pub fn class_of(&self, instance: InstanceId) -> Option<ClassId> {
        *read_recover(&self.instances, &self.counters).slots.get(instance)?
    }

    /// The shared representative invariant of a class, or `None` for an
    /// unknown or garbage-collected class id. The `Arc` is the very
    /// allocation ingested first into the class — the store never deep-copies
    /// an invariant.
    pub fn class_representative(&self, class: ClassId) -> Option<Arc<TopologicalInvariant>> {
        read_recover(&self.classes, &self.counters).reps.get(class)?.clone()
    }

    /// The live members of a class in ingest order, or `None` for an unknown
    /// or garbage-collected class id.
    pub fn class_members(&self, class: ClassId) -> Option<Vec<InstanceId>> {
        let classes = read_recover(&self.classes, &self.counters);
        classes.reps.get(class)?.as_ref()?;
        classes.members.get(class).cloned()
    }

    /// A consistent snapshot of the partition of all live instances into
    /// isomorphism classes, in order of first appearance — the same shape
    /// (and, for single-threaded ingest without removals, the same value) as
    /// `topo_queries::isomorphism_classes` on the ingested invariants.
    /// Garbage-collected classes are skipped.
    pub fn classes(&self) -> Vec<Vec<InstanceId>> {
        let classes = read_recover(&self.classes, &self.counters);
        classes
            .members
            .iter()
            .zip(classes.reps.iter())
            .filter(|(_, rep)| rep.is_some())
            .map(|(members, _)| members.clone())
            .collect()
    }

    /// Drops every memoised answer, counting them into
    /// [`StoreStats::memo_invalidated`] (hit/miss/eviction counters are
    /// kept). Queries re-evaluate and re-fill the memo afterwards; answers
    /// are unaffected.
    pub fn clear_memo(&self) {
        let mut cleared = 0u64;
        for shard in &self.memo {
            let mut shard = write_recover(shard, &self.counters);
            cleared += shard.map.len() as u64;
            shard.map.clear();
        }
        self.counters.memo_invalidated.fetch_add(cleared, Ordering::Relaxed);
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        // Respects the lock budget like every memo access: a shard frozen
        // past the budget contributes 0 to the gauge instead of blocking
        // the stats call behind it.
        let memo_entries =
            self.memo.iter().map(|s| self.budget_read(s).map_or(0, |g| g.map.len())).sum();
        let c = &self.counters;
        StoreStats {
            instances: self.instance_count(),
            classes: self.class_count(),
            memo_entries,
            memo_hits: c.memo_hits.load(Ordering::Relaxed),
            memo_misses: c.memo_misses.load(Ordering::Relaxed),
            memo_evictions: c.memo_evictions.load(Ordering::Relaxed),
            memo_invalidated: c.memo_invalidated.load(Ordering::Relaxed),
            dedup_hits: c.dedup_hits.load(Ordering::Relaxed),
            hash_collisions: c.hash_collisions.load(Ordering::Relaxed),
            removals: c.removals.load(Ordering::Relaxed),
            updates: c.updates.load(Ordering::Relaxed),
            gc_classes: c.gc_classes.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            fallback_evals: c.fallback_evals.load(Ordering::Relaxed),
            lock_recoveries: c.lock_recoveries.load(Ordering::Relaxed),
            wal_appends: c.wal_appends.load(Ordering::Relaxed),
            wal_errors: c.wal_errors.load(Ordering::Relaxed),
            snapshots: c.snapshots.load(Ordering::Relaxed),
            replayed_records: c.replayed_records.load(Ordering::Relaxed),
            wal_truncations: c.wal_truncations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests;
