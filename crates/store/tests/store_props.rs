//! Property tests: the store's observable state — the pair (class partition,
//! query answers) — is a pure function of the ingested multiset of
//! topologies. Neither the ingestion order, nor the query order, nor the memo
//! configuration (including an eviction-heavy tiny capacity and the disabled
//! baseline) may change it, and it must always match the
//! `isomorphism_classes` / `evaluate_on_classes` oracles.
//!
//! With the `naive-reference` feature the partition is additionally checked
//! against the frozen pre-optimisation reference codes
//! (`canonical_code_naive`); CI runs the suite both ways.

use proptest::prelude::*;
use std::sync::Arc;
use topo_geometry::Point;
use topo_invariant::{top, TopologicalInvariant};
use topo_queries::{
    evaluate_on_classes, evaluate_on_invariant, isomorphism_classes, TopologicalQuery,
};
use topo_spatial::{Region, SpatialInstance};
use topo_store::{InvariantStore, StoreConfig};

/// The query mix every property runs: all library shapes over the two
/// regions of the random instances.
fn query_mix() -> Vec<TopologicalQuery> {
    use TopologicalQuery as Q;
    vec![
        Q::Intersects(0, 1),
        Q::Disjoint(0, 1),
        Q::Contains(0, 1),
        Q::Equal(0, 1),
        Q::BoundaryOnlyIntersection(0, 1),
        Q::InteriorsOverlap(0, 1),
        Q::IsConnected(0),
        Q::IsConnected(1),
        Q::ComponentCountEven(0),
        Q::HasHole(0),
        Q::HasHole(1),
    ]
}

/// A small random instance of rectangles and isolated points over two
/// regions (the same shape as the canonicalisation property tests).
fn small_instance() -> impl Strategy<Value = SpatialInstance> {
    let rect = (0i64..6, 0i64..6, 1i64..4, 1i64..4)
        .prop_map(|(x, y, w, h)| (x * 100, y * 100, x * 100 + w * 60, y * 100 + h * 60));
    let rects = proptest::collection::vec(rect, 1..4);
    let points = proptest::collection::vec((0i64..40, 0i64..40), 0..3);
    (rects, points).prop_map(|(rects, points)| {
        let mut a = Region::new();
        let mut b = Region::new();
        for (i, (x0, y0, x1, y1)) in rects.into_iter().enumerate() {
            let ring = vec![
                Point::from_ints(x0, y0),
                Point::from_ints(x1, y0),
                Point::from_ints(x1, y1),
                Point::from_ints(x0, y1),
            ];
            if i % 2 == 0 {
                a.add_ring(ring);
            } else {
                b.add_ring(ring);
            }
        }
        for (x, y) in points {
            b.add_point(Point::from_ints(x, y));
        }
        SpatialInstance::from_regions([("A", a), ("B", b)])
    })
}

/// A random batch with deliberate hash-equal duplicates: three base
/// instances plus a translated copy of each (topologically identical, so
/// each must land in its base's class).
fn batch() -> impl Strategy<Value = Vec<SpatialInstance>> {
    let bases = (small_instance(), small_instance(), small_instance());
    (bases, -500i64..500, -500i64..500).prop_map(|((a, b, c), dx, dy)| {
        let map = topo_spatial::transform::AffineMap::translation(dx, dy);
        let moved = [map.apply_instance(&a), map.apply_instance(&b), map.apply_instance(&c)];
        let mut out = vec![a, b, c];
        out.extend(moved);
        out
    })
}

/// A deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Normalises a partition (classes of original indices) for comparison:
/// members sorted within classes, classes sorted by first member.
fn normalised(mut classes: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for class in &mut classes {
        class.sort_unstable();
    }
    classes.sort();
    classes
}

/// The store's partition with members mapped back to original indices via
/// the ingest order (`order[position] = original index`).
fn store_partition(store: &InvariantStore, order: &[usize]) -> Vec<Vec<usize>> {
    normalised(
        store
            .classes()
            .into_iter()
            .map(|class| class.into_iter().map(|position| order[position]).collect())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ingestion order never changes the observable (class set, answers)
    /// state, and both match the slice-level oracles.
    #[test]
    fn ingest_order_is_unobservable(
        instances in batch(),
        seed in 0u64..1_000_000,
    ) {
        let invariants: Vec<Arc<TopologicalInvariant>> =
            instances.iter().map(|i| Arc::new(top(i))).collect();
        let identity: Vec<usize> = (0..invariants.len()).collect();
        let order = permutation(invariants.len(), seed);

        let straight = InvariantStore::default();
        for invariant in &invariants {
            straight.ingest_invariant(invariant.clone());
        }
        let shuffled = InvariantStore::default();
        for &i in &order {
            shuffled.ingest_invariant(invariants[i].clone());
        }

        // Same class set either way, equal to the oracle partition.
        let oracle = normalised(isomorphism_classes(&invariants));
        prop_assert_eq!(&store_partition(&straight, &identity), &oracle);
        prop_assert_eq!(&store_partition(&shuffled, &order), &oracle);

        // Same answers either way, equal to both oracles. The translated
        // copies share their base's class, so the answers agree pairwise by
        // construction of the batch.
        let mut position_of = vec![0usize; invariants.len()];
        for (position, &original) in order.iter().enumerate() {
            position_of[original] = position;
        }
        for query in query_mix() {
            let by_class = evaluate_on_classes(&query, &invariants);
            for (i, invariant) in invariants.iter().enumerate() {
                let expected = evaluate_on_invariant(&query, invariant);
                prop_assert_eq!(by_class[i], expected);
                prop_assert_eq!(straight.query(i, &query), Some(expected));
                prop_assert_eq!(shuffled.query(position_of[i], &query), Some(expected));
            }
        }
    }

    /// Neither the query order nor the memo configuration (ample capacity,
    /// eviction-heavy tiny capacity, disabled) changes any answer.
    #[test]
    fn query_order_and_memo_config_are_unobservable(
        instances in batch(),
        seed in 0u64..1_000_000,
    ) {
        let invariants: Vec<Arc<TopologicalInvariant>> =
            instances.iter().map(|i| Arc::new(top(i))).collect();
        let configs = [
            StoreConfig::default(),
            StoreConfig { memo_capacity: 2, memo_shards: 1, ..StoreConfig::default() },
            StoreConfig::without_memo(),
            // Degenerate and degradation knobs: zero shards (normalised to
            // 1), more shards than capacity (clamped), and a lock budget
            // (falls back instead of blocking) — none may change an answer.
            StoreConfig { memo_capacity: 3, memo_shards: 0, ..StoreConfig::default() },
            StoreConfig { memo_capacity: 2, memo_shards: 64, ..StoreConfig::default() },
            StoreConfig { memo_lock_budget: Some(2), ..StoreConfig::default() },
        ];
        let queries = query_mix();
        let pairs: Vec<(usize, usize)> = (0..invariants.len())
            .flat_map(|i| (0..queries.len()).map(move |q| (i, q)))
            .collect();
        let shuffle = permutation(pairs.len(), seed);
        let mut baseline: Option<Vec<bool>> = None;
        for config in configs {
            let store = InvariantStore::new(config);
            for invariant in &invariants {
                store.ingest_invariant(invariant.clone());
            }
            // First pass in permuted order, second pass straight: repeated
            // queries (memo hits, re-evaluations after eviction, or the
            // disabled path) must reproduce the first-pass answers.
            let mut answers = vec![false; pairs.len()];
            for &p in &shuffle {
                let (i, q) = pairs[p];
                answers[p] = store.query(i, &queries[q]).expect("known instance");
            }
            for (p, &(i, q)) in pairs.iter().enumerate() {
                prop_assert_eq!(store.query(i, &queries[q]), Some(answers[p]));
            }
            match &baseline {
                None => baseline = Some(answers),
                Some(expected) => prop_assert_eq!(&answers, expected),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `ingest → remove → re-ingest` is unobservable: a store that removed
    /// some instances and ingested the same topologies again answers exactly
    /// like a store that never removed anything, and the dead ids answer
    /// `None` forever.
    #[test]
    fn remove_and_reingest_is_unobservable(
        instances in batch(),
        seed in 0u64..1_000_000,
    ) {
        let invariants: Vec<Arc<TopologicalInvariant>> =
            instances.iter().map(|i| Arc::new(top(i))).collect();
        let n = invariants.len();
        let removed: Vec<usize> = permutation(n, seed).into_iter().take(n / 2).collect();

        let store = InvariantStore::default();
        for invariant in &invariants {
            store.ingest_invariant(invariant.clone());
        }
        for &i in &removed {
            prop_assert!(store.remove_instance(i));
        }
        // Re-ingest the removed topologies: they get fresh ids.
        let mut id_to_original: Vec<usize> = (0..n).collect();
        for &i in &removed {
            let id = store.ingest_invariant(invariants[i].clone());
            prop_assert_eq!(id, id_to_original.len(), "ids stay dense and are never reused");
            id_to_original.push(i);
        }

        let stats = store.stats();
        prop_assert_eq!(stats.instances, n);
        prop_assert_eq!(stats.removals as usize, removed.len());

        // The live partition over original indices equals the never-removed
        // oracle partition.
        let oracle = normalised(isomorphism_classes(&invariants));
        prop_assert_eq!(&store_partition(&store, &id_to_original), &oracle);
        prop_assert_eq!(stats.classes, oracle.len());

        // Every live id answers like its topology's oracle; dead ids answer
        // `None`.
        for query in query_mix() {
            for &dead in &removed {
                prop_assert_eq!(store.query(dead, &query), None);
            }
            for (id, &original) in id_to_original.iter().enumerate().skip(n) {
                let expected = evaluate_on_invariant(&query, &invariants[original]);
                prop_assert_eq!(store.query(id, &query), Some(expected));
            }
            for (id, invariant) in invariants.iter().enumerate().take(n) {
                if !removed.contains(&id) {
                    let expected = evaluate_on_invariant(&query, invariant);
                    prop_assert_eq!(store.query(id, &query), Some(expected));
                }
            }
        }
    }

    /// Garbage-collected classes free their memo entries: removing every
    /// instance empties classes and memo alike, and a subsequent re-ingest
    /// re-derives every answer from scratch, identically.
    #[test]
    fn gc_frees_memo_entries(instances in batch()) {
        let invariants: Vec<Arc<TopologicalInvariant>> =
            instances.iter().map(|i| Arc::new(top(i))).collect();
        let store = InvariantStore::default();
        for invariant in &invariants {
            store.ingest_invariant(invariant.clone());
        }
        for query in query_mix() {
            for id in 0..invariants.len() {
                store.query(id, &query).expect("live instance");
            }
        }
        let warm = store.stats();
        prop_assert!(warm.memo_entries > 0);
        let class_count = warm.classes;

        for id in 0..invariants.len() {
            prop_assert!(store.remove_instance(id));
        }
        let empty = store.stats();
        prop_assert_eq!(empty.instances, 0);
        prop_assert_eq!(empty.classes, 0);
        prop_assert_eq!(empty.gc_classes as usize, class_count);
        prop_assert_eq!(
            empty.memo_entries, 0,
            "every collected class must purge its memoised answers"
        );
        prop_assert!(empty.memo_invalidated as usize >= warm.memo_entries);

        // No stale answer survives into the next generation of classes.
        for invariant in &invariants {
            store.ingest_invariant(invariant.clone());
        }
        for query in query_mix() {
            for (i, invariant) in invariants.iter().enumerate() {
                let id = invariants.len() + i;
                let expected = evaluate_on_invariant(&query, invariant);
                prop_assert_eq!(store.query(id, &query), Some(expected));
            }
        }
    }
}

#[cfg(feature = "naive-reference")]
mod naive_oracle {
    use super::*;
    use topo_invariant::canonical_code_naive;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The store's class partition coincides with the partition induced
        /// by the frozen pre-optimisation reference codes.
        #[test]
        fn partition_matches_the_frozen_reference_codes(instances in batch()) {
            let invariants: Vec<Arc<TopologicalInvariant>> =
                instances.iter().map(|i| Arc::new(top(i))).collect();
            let store = InvariantStore::default();
            for invariant in &invariants {
                store.ingest_invariant(invariant.clone());
            }
            let reference: Vec<String> =
                invariants.iter().map(|i| canonical_code_naive(i)).collect();
            let classes = store.classes();
            for i in 0..invariants.len() {
                for j in 0..invariants.len() {
                    let same_class =
                        classes.iter().any(|c| c.contains(&i) && c.contains(&j));
                    prop_assert_eq!(
                        same_class,
                        reference[i] == reference[j],
                        "store partition diverged from the reference codes at {} / {}", i, j
                    );
                }
            }
        }
    }
}
