//! Flat CSR uniform lattice over `f64` bounding boxes.
//!
//! The shared pruning substrate behind [`crate::SegmentGrid`] and the
//! arrangement's cycle-nesting index: boxes are registered in every cell of a
//! uniform lattice they overlap, stored in CSR (compressed-sparse-row) form —
//! one offsets array plus one entries array — so construction performs a
//! fixed number of vector allocations and queries touch contiguous slices.
//! The lattice is conservative by construction (a box is found from any cell
//! it overlaps) and purely approximate: callers always re-check candidates
//! with exact predicates.

/// An axis-aligned box in `f64`, as `(min_x, min_y, max_x, max_y)`.
pub type F64Box = (f64, f64, f64, f64);

/// A uniform cell lattice over a fixed set of boxes, in CSR form.
pub struct BoxLattice {
    cell_size: f64,
    min_x: f64,
    min_y: f64,
    nx: i64,
    ny: i64,
    /// CSR offsets: boxes of cell `c` are
    /// `entries[cell_start[c] .. cell_start[c + 1]]`.
    cell_start: Vec<u32>,
    entries: Vec<u32>,
    /// Ids of non-empty cells, so iteration skips the empty bulk of sparse
    /// lattices.
    occupied: Vec<u32>,
}

impl BoxLattice {
    /// Builds a lattice over `boxes`, sizing cells near the average box
    /// extent, clamped to at most `max_side` cells per side *and* to a total
    /// cell count of `max(4096, 4 × boxes.len())` — so pathological inputs
    /// (a handful of tiny boxes spread very far apart) cannot force a huge
    /// allocation or scan.
    pub fn build(boxes: &[F64Box], max_side: i64) -> Self {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut total_extent = 0.0f64;
        for &(x0, y0, x1, y1) in boxes {
            min_x = min_x.min(x0);
            min_y = min_y.min(y0);
            max_x = max_x.max(x1);
            max_y = max_y.max(y1);
            total_extent += (x1 - x0).max(y1 - y0);
        }
        if boxes.is_empty() {
            return BoxLattice {
                cell_size: 1.0,
                min_x: 0.0,
                min_y: 0.0,
                nx: 1,
                ny: 1,
                cell_start: vec![0, 0],
                entries: Vec::new(),
                occupied: Vec::new(),
            };
        }
        let avg_extent = (total_extent / boxes.len() as f64).max(1e-9);
        let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
        // Cells roughly the size of an average box, clamped per side...
        let mut cell_size = avg_extent.max(span / max_side as f64);
        // ...and re-clamped so the *total* cell count stays linear in the
        // number of boxes.
        let max_cells = (4 * boxes.len()).max(4096) as f64;
        let sides = |cell: f64| {
            let nx = ((max_x - min_x) / cell).floor() as i64 + 1;
            let ny = ((max_y - min_y) / cell).floor() as i64 + 1;
            (nx.max(1), ny.max(1))
        };
        let (mut nx, mut ny) = sides(cell_size);
        if (nx * ny) as f64 > max_cells {
            cell_size *= ((nx * ny) as f64 / max_cells).sqrt();
            (nx, ny) = sides(cell_size);
        }
        let mut lattice = BoxLattice {
            cell_size,
            min_x,
            min_y,
            nx,
            ny,
            cell_start: vec![0u32; (nx * ny) as usize + 1],
            entries: Vec::new(),
            occupied: Vec::new(),
        };
        // Two-pass CSR fill: count each box's cell span, prefix-sum the
        // counts into offsets, then place the entries. No per-cell vectors.
        for b in boxes {
            let (cx0, cy0, cx1, cy1) = lattice.cell_range(*b);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let c = (cy * nx + cx) as usize;
                    if lattice.cell_start[c + 1] == 0 {
                        lattice.occupied.push(c as u32);
                    }
                    lattice.cell_start[c + 1] += 1;
                }
            }
        }
        for i in 1..lattice.cell_start.len() {
            lattice.cell_start[i] += lattice.cell_start[i - 1];
        }
        lattice.entries = vec![0u32; *lattice.cell_start.last().unwrap() as usize];
        // `cursor[c]` walks from the start of cell `c`'s slice to its end.
        let mut cursor: Vec<u32> = lattice.cell_start[..lattice.cell_start.len() - 1].to_vec();
        for (i, b) in boxes.iter().enumerate() {
            let (cx0, cy0, cx1, cy1) = lattice.cell_range(*b);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let c = (cy * nx + cx) as usize;
                    lattice.entries[cursor[c] as usize] = i as u32;
                    cursor[c] += 1;
                }
            }
        }
        lattice.occupied.sort_unstable();
        lattice
    }

    /// True iff no box was registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cell-index range covered by a box, clamped to the lattice bounds so
    /// queries far outside the data never walk an unbounded range.
    fn cell_range(&self, (x0, y0, x1, y1): F64Box) -> (i64, i64, i64, i64) {
        let cx =
            |v: f64| (((v - self.min_x) / self.cell_size).floor() as i64).clamp(0, self.nx - 1);
        let cy =
            |v: f64| (((v - self.min_y) / self.cell_size).floor() as i64).clamp(0, self.ny - 1);
        (cx(x0), cy(y0), cx(x1), cy(y1))
    }

    fn bucket(&self, cell: usize) -> &[u32] {
        &self.entries[self.cell_start[cell] as usize..self.cell_start[cell + 1] as usize]
    }

    /// The non-empty cell buckets, each a slice of registered box indices.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.occupied.iter().map(|&c| self.bucket(c as usize))
    }

    /// Calls `f` for every box index registered in a cell overlapping
    /// `query` (indices may repeat across cells).
    pub fn for_each_in_range(&self, query: F64Box, mut f: impl FnMut(u32)) {
        if self.is_empty() {
            return;
        }
        let (cx0, cy0, cx1, cy1) = self.cell_range(query);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in self.bucket((cy * self.nx + cx) as usize) {
                    f(i);
                }
            }
        }
    }

    /// The bucket of the cell containing `(x, y)` (clamped to the lattice,
    /// so out-of-range points land on the nearest border cell — conservative
    /// for boxes registered up to the border).
    pub fn point_bucket(&self, x: f64, y: f64) -> &[u32] {
        if self.is_empty() {
            return &[];
        }
        let (cx, cy, _, _) = self.cell_range((x, y, x, y));
        self.bucket((cy * self.nx + cx) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box(x: f64, y: f64) -> F64Box {
        (x, y, x + 1.0, y + 1.0)
    }

    #[test]
    fn empty_lattice() {
        let lattice = BoxLattice::build(&[], 64);
        assert!(lattice.is_empty());
        assert_eq!(lattice.occupied_buckets().count(), 0);
        assert!(lattice.point_bucket(3.0, 4.0).is_empty());
    }

    #[test]
    fn range_queries_find_all_overlapping_boxes() {
        let boxes: Vec<F64Box> = (0..10)
            .flat_map(|i| (0..10).map(move |j| unit_box(i as f64 * 5.0, j as f64 * 5.0)))
            .collect();
        let lattice = BoxLattice::build(&boxes, 64);
        let query = (4.5, 4.5, 10.5, 10.5);
        let mut found = Vec::new();
        lattice.for_each_in_range(query, |i| found.push(i as usize));
        found.sort_unstable();
        found.dedup();
        for (i, b) in boxes.iter().enumerate() {
            let overlaps = b.0 <= query.2 && query.0 <= b.2 && b.1 <= query.3 && query.1 <= b.3;
            if overlaps {
                assert!(found.contains(&i), "missed box {i}");
            }
        }
    }

    #[test]
    fn sparse_far_apart_boxes_stay_small() {
        // Two tiny boxes a billion units apart: the total-cell clamp must
        // keep the lattice allocation linear, and occupied iteration must
        // only visit two buckets.
        let boxes = vec![unit_box(0.0, 0.0), unit_box(1e9, 1e9)];
        let lattice = BoxLattice::build(&boxes, 2048);
        assert!(
            lattice.cell_start.len() <= 4097,
            "lattice not clamped: {}",
            lattice.cell_start.len()
        );
        assert_eq!(lattice.occupied_buckets().count(), 2);
        assert_eq!(lattice.point_bucket(0.5, 0.5), &[0]);
        assert_eq!(lattice.point_bucket(1e9 + 0.5, 1e9 + 0.5), &[1]);
    }

    #[test]
    fn point_bucket_clamps_out_of_range_probes() {
        let boxes = vec![unit_box(0.0, 0.0)];
        let lattice = BoxLattice::build(&boxes, 64);
        // Far outside: clamped to the border cell, which holds the box.
        assert_eq!(lattice.point_bucket(1e12, -1e12), &[0]);
    }
}
