//! Points of the rational plane.

use crate::rational::Rational;
use std::fmt;

/// A point of the rational plane `Q²`.
///
/// Points compare lexicographically (`x` first, then `y`), which is the order
/// used to sort subdivision points along segments and to pick canonical
/// starting vertices in the arrangement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// The x coordinate.
    pub x: Rational,
    /// The y coordinate.
    pub y: Rational,
}

impl Point {
    /// Builds a point from two rationals.
    pub fn new(x: Rational, y: Rational) -> Self {
        Point { x, y }
    }

    /// Builds a point with integer coordinates.
    pub fn from_ints(x: i64, y: i64) -> Self {
        Point { x: Rational::from_int(x), y: Rational::from_int(y) }
    }

    /// The origin `(0, 0)`.
    pub fn origin() -> Self {
        Point { x: Rational::ZERO, y: Rational::ZERO }
    }

    /// Component-wise difference, viewed as a direction vector `self - other`.
    pub fn sub(&self, other: &Point) -> (Rational, Rational) {
        (self.x - other.x, self.y - other.y)
    }

    /// The midpoint of `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point { x: self.x.midpoint(&other.x), y: self.y.midpoint(&other.y) }
    }

    /// Squared Euclidean distance to `other`, as an exact rational.
    pub fn distance_sq(&self, other: &Point) -> Rational {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Approximate coordinates for reporting and pruning only.
    pub fn to_f64(&self) -> (f64, f64) {
        (self.x.to_f64(), self.y.to_f64())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let a = Point::from_ints(0, 5);
        let b = Point::from_ints(1, 0);
        let c = Point::from_ints(0, 7);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn midpoint_and_distance() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(2, 4);
        assert_eq!(a.midpoint(&b), Point::from_ints(1, 2));
        assert_eq!(a.distance_sq(&b), Rational::from_int(20));
    }

    #[test]
    fn sub_gives_direction() {
        let a = Point::from_ints(3, 4);
        let b = Point::from_ints(1, 1);
        assert_eq!(a.sub(&b), (Rational::from_int(2), Rational::from_int(3)));
    }
}
