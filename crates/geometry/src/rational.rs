//! Exact rational numbers over `i128`.
//!
//! A [`Rational`] is always kept in canonical form: the denominator is
//! strictly positive and `gcd(|num|, den) == 1`. Canonical form makes
//! equality and hashing structural, which the arrangement code relies on to
//! deduplicate vertices.
//!
//! Arithmetic uses `i128` with a pre-reduction step (the classical
//! `a/b * c/d = (a/gcd(a,d)) * (c/gcd(c,b)) / ...` trick) so intermediate
//! products stay as small as possible; overflow panics rather than silently
//! wrapping. Integer operands (`den == 1`, the overwhelmingly common case for
//! cartographic input data) take gcd-free fast paths whose results are
//! canonical by construction, and the fast paths extend to `den > 1`
//! operands — the fractional intersection points of shoreline-style inputs —
//! wherever canonicality still comes cheap: integer ± fraction and
//! integer × fraction results are canonical with at most one gcd, and
//! equal-denominator sums renormalise with a single gcd. Comparison is always
//! exact: a sign test and a checked `i128` cross product (which covers
//! `den > 1` operands too) are tried first, falling back to a 256-bit
//! widening multiply only for rationals near the `i128` limits.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Benchmark-only escape hatch forcing every operation down the
/// always-canonicalising slow path, so the perf harness can measure the
/// pre-optimisation arithmetic against the fast paths *in the same binary*.
///
/// The toggle is process-global: while any [`slow_mode::SlowGuard`] is alive,
/// all `Rational` arithmetic on all threads takes the slow path. Both paths
/// produce identical canonical values, so concurrent use can only affect
/// timing, never results. Compiled only with the `naive-reference` feature;
/// without it the fast-path checks are compile-time constants.
#[cfg(feature = "naive-reference")]
pub mod slow_mode {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DEPTH: AtomicUsize = AtomicUsize::new(0);

    /// RAII guard: slow mode is active while at least one guard is alive.
    #[derive(Debug)]
    pub struct SlowGuard(());

    impl SlowGuard {
        /// Enters slow mode (re-entrant).
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            DEPTH.fetch_add(1, Ordering::Relaxed);
            SlowGuard(())
        }
    }

    impl Drop for SlowGuard {
        fn drop(&mut self) {
            DEPTH.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// True iff slow mode is currently active.
    pub fn active() -> bool {
        DEPTH.load(Ordering::Relaxed) > 0
    }
}

/// True when the small-value fast paths may be taken. Constant `true` in
/// normal builds; consults [`slow_mode`] under the `naive-reference` feature.
/// `pub(crate)` so the geometric predicates can gate their floating-point
/// filters on the same switch.
#[inline(always)]
pub(crate) fn fast_paths() -> bool {
    #[cfg(feature = "naive-reference")]
    {
        !slow_mode::active()
    }
    #[cfg(not(feature = "naive-reference"))]
    {
        true
    }
}

/// An exact rational number `num / den` with `den > 0` and the fraction fully
/// reduced.
#[derive(Clone, Copy)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
fn gcd_u(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor, as a positive `i128` (returns 1 for `gcd(0,0)` so
/// division is always safe).
fn gcd(a: i128, b: i128) -> i128 {
    let g = gcd_u(a.unsigned_abs(), b.unsigned_abs());
    if g == 0 {
        1
    } else {
        g as i128
    }
}

/// Sign and magnitude of a signed 256-bit product of two `i128`s.
fn wide_mul(a: i128, b: i128) -> (i8, u128, u128) {
    let sign = match (a.signum() * b.signum()).cmp(&0) {
        Ordering::Less => -1,
        Ordering::Equal => 0,
        Ordering::Greater => 1,
    };
    let ua = a.unsigned_abs();
    let ub = b.unsigned_abs();
    // Split into 64-bit limbs and do the schoolbook product.
    let (a_hi, a_lo) = (ua >> 64, ua & u64::MAX as u128);
    let (b_hi, b_lo) = (ub >> 64, ub & u64::MAX as u128);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = lh.wrapping_add(hl);
    let mid_carry = if mid < lh { 1u128 << 64 } else { 0 };
    let lo = ll.wrapping_add(mid << 64);
    let lo_carry = if lo < ll { 1u128 } else { 0 };
    let hi = hh + (mid >> 64) + mid_carry + lo_carry;
    (sign, hi, lo)
}

/// Floating-point interval filter for the comparison `a/b vs c/d`: computes
/// the cross products `a·d` and `c·b` in `f64` and returns the ordering when
/// their difference exceeds a conservative bound on the accumulated rounding
/// error, `None` when the result is too close to call exactly.
///
/// Error budget (ε = 2⁻⁵³ per rounding): each `i128 → f64` conversion and the
/// product contribute ≤ 3ε relative error per cross product, and the final
/// subtraction ≤ ε more, for under 9ε·max(|l|, |r|) absolute error in total;
/// the bound below allows 16ε, so a difference exceeding it has a certain
/// sign. `i128` cross products stay far below `f64::MAX`, so no overflow to
/// infinity is possible.
fn cmp_interval(a: &Rational, b: &Rational) -> Option<Ordering> {
    let l = a.num as f64 * b.den as f64;
    let r = b.num as f64 * a.den as f64;
    let bound = 16.0 * (f64::EPSILON / 2.0) * l.abs().max(r.abs());
    if l - r > bound {
        Some(Ordering::Greater)
    } else if r - l > bound {
        Some(Ordering::Less)
    } else {
        None
    }
}

/// Compare two signed 256-bit values given as (sign, hi, lo).
fn cmp_wide(x: (i8, u128, u128), y: (i8, u128, u128)) -> Ordering {
    if x.0 != y.0 {
        return x.0.cmp(&y.0);
    }
    let mag = (x.1, x.2).cmp(&(y.1, y.2));
    match x.0 {
        1 => mag,
        -1 => mag.reverse(),
        _ => Ordering::Equal,
    }
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num, den);
        num /= g;
        den /= g;
        Rational { num, den }
    }

    /// Builds a rational from an integer.
    pub fn from_int(n: i64) -> Self {
        Rational { num: n as i128, den: 1 }
    }

    /// The reduced numerator (the sign of the rational lives here).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// The reduced, strictly positive denominator.
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The value as an `i128` when it is an integer, `None` otherwise.
    pub fn as_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Approximate `f64` value (only used for pruning structures and reports,
    /// never for topological decisions).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The arithmetic mean of `self` and `other`.
    pub fn midpoint(&self, other: &Rational) -> Rational {
        if !fast_paths() {
            return (*self + *other) / Rational::from_int(2);
        }
        // Halve the (canonical) sum directly instead of routing through
        // `Div`'s two cross-reduction gcds: with s = n/d reduced, either n is
        // even and (n/2)/d is already reduced (any common divisor of n/2 and
        // d divides gcd(n, d) = 1), or n is odd and n/(2d) is reduced
        // (gcd(n, 2) = 1 and gcd(n, d) = 1).
        let sum = *self + *other;
        if sum.num % 2 == 0 {
            Rational { num: sum.num / 2, den: sum.den }
        } else {
            Rational { num: sum.num, den: Rational::checked_mul_i128(sum.den, 2) }
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    fn checked_mul_i128(a: i128, b: i128) -> i128 {
        a.checked_mul(b).expect("rational arithmetic overflow (i128)")
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        // Canonical form makes structural equality exact equality.
        self.num == other.num && self.den == other.den
    }
}

impl Eq for Rational {}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⇔  a*d vs c*b.
        if fast_paths() {
            // Different signs decide without any multiplication (dens > 0),
            // so mixed-sign `den > 1` operands — e.g. hydro's fractional
            // shoreline intersections straddling an axis — never reach the
            // cross products at all.
            let (sa, sb) = (self.num.signum(), other.num.signum());
            if sa != sb {
                return sa.cmp(&sb);
            }
            // Equal denominators (in particular den == 1, the overwhelmingly
            // common case for integer input data) compare by numerator alone.
            if self.den == other.den {
                return self.num.cmp(&other.num);
            }
            // Checked i128 cross products cover every remaining operand pair
            // (den > 1 included) except values near the i128 limits.
            if let (Some(l), Some(r)) =
                (self.num.checked_mul(other.den), other.num.checked_mul(self.den))
            {
                return l.cmp(&r);
            }
            // The full cross product overflowed. Fixed-ratio denominators —
            // one a multiple of the other, as when intersection points share
            // a refinement of the same grid — need only the quotient as a
            // scale factor, which fits where the full product did not.
            if other.den % self.den == 0 {
                if let Some(l) = self.num.checked_mul(other.den / self.den) {
                    return l.cmp(&other.num);
                }
            } else if self.den % other.den == 0 {
                if let Some(r) = other.num.checked_mul(self.den / other.den) {
                    return self.num.cmp(&r);
                }
            }
            // Interval filter: conservative floating-point cross products
            // decide the order whenever their separation exceeds the maximum
            // rounding error, leaving only near-ties to the 256-bit fallback.
            if let Some(ord) = cmp_interval(self, other) {
                return ord;
            }
        }
        // Exact fallback: 256-bit widening cross products.
        cmp_wide(wide_mul(self.num, other.den), wide_mul(other.num, self.den))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        if fast_paths() {
            // Integers need no gcd and no renormalisation: the sum is
            // canonical.
            if self.den == 1 && rhs.den == 1 {
                let num = self.num.checked_add(rhs.num).expect("rational addition overflow");
                return Rational { num, den: 1 };
            }
            // Integer + fraction (either side): a + c/d = (a·d + c)/d is
            // canonical by construction — gcd(a·d + c, d) = gcd(c, d) = 1 —
            // so `den > 1` operands paired with integers skip every gcd.
            if self.den == 1 {
                let num = Rational::checked_mul_i128(self.num, rhs.den)
                    .checked_add(rhs.num)
                    .expect("rational addition overflow");
                return Rational { num, den: rhs.den };
            }
            if rhs.den == 1 {
                let num = Rational::checked_mul_i128(rhs.num, self.den)
                    .checked_add(self.num)
                    .expect("rational addition overflow");
                return Rational { num, den: self.den };
            }
            // Equal denominators: a/d + c/d = (a + c)/d needs one gcd for
            // renormalisation instead of the general path's two.
            if self.den == rhs.den {
                let num = self.num.checked_add(rhs.num).expect("rational addition overflow");
                let g = gcd(num, self.den);
                return Rational { num: num / g, den: self.den / g };
            }
        }
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b/g * d), g = gcd(b, d)
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = Rational::checked_mul_i128(self.num, lhs_scale)
            .checked_add(Rational::checked_mul_i128(rhs.num, rhs_scale))
            .expect("rational addition overflow");
        let den = Rational::checked_mul_i128(self.den, lhs_scale);
        Rational::new(num, den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        if fast_paths() && self.den == 1 && rhs.den == 1 {
            let num = self.num.checked_sub(rhs.num).expect("rational subtraction overflow");
            return Rational { num, den: 1 };
        }
        self + (-rhs)
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        if fast_paths() {
            // Integer products are canonical as-is: skip both
            // cross-reductions.
            if self.den == 1 && rhs.den == 1 {
                return Rational { num: Rational::checked_mul_i128(self.num, rhs.num), den: 1 };
            }
            // Integer × fraction: a · c/d = ((a/g)·c) / (d/g) with
            // g = gcd(a, d) is canonical by construction (gcd(c, d) = 1
            // implies gcd(a·c, d) = gcd(a, d)), so one gcd replaces the
            // general path's two cross-reductions plus renormalisation.
            if self.den == 1 {
                let g = gcd(self.num, rhs.den);
                return Rational {
                    num: Rational::checked_mul_i128(self.num / g, rhs.num),
                    den: rhs.den / g,
                };
            }
            if rhs.den == 1 {
                let g = gcd(rhs.num, self.den);
                return Rational {
                    num: Rational::checked_mul_i128(rhs.num / g, self.num),
                    den: self.den / g,
                };
            }
        }
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = Rational::checked_mul_i128(self.num / g1, rhs.num / g2);
        let den = Rational::checked_mul_i128(self.den / g2, rhs.den / g1);
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "division of rational by zero");
        self * Rational { num: rhs.den * rhs.num.signum(), den: rhs.num.abs() }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_form() {
        let r = Rational::new(2, 4);
        assert_eq!(r.numerator(), 1);
        assert_eq!(r.denominator(), 2);
        let r = Rational::new(3, -6);
        assert_eq!(r.numerator(), -1);
        assert_eq!(r.denominator(), 2);
        let r = Rational::new(0, -5);
        assert_eq!(r, Rational::ZERO);
    }

    #[test]
    fn basic_arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering_is_exact_for_large_values() {
        // Denominators near 2^63: naive i128 cross multiplication would overflow.
        let big = (1i128 << 100) + 1;
        let a = Rational::new(big, big - 1);
        let b = Rational::new(big + 1, big);
        // a = 1 + 1/(big-1), b = 1 + 1/big, so a > b.
        assert!(a > b);
        assert!(b < a);
        assert_ne!(a, b);
    }

    #[test]
    fn midpoint_and_minmax() {
        let a = Rational::from_int(1);
        let b = Rational::from_int(2);
        assert_eq!(a.midpoint(&b), Rational::new(3, 2));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = Rational::ONE / Rational::ZERO;
    }

    #[test]
    fn den_gt_one_fast_paths_stay_canonical() {
        // Integer + fraction, both sides.
        assert_eq!(Rational::from_int(2) + Rational::new(3, 4), Rational::new(11, 4));
        assert_eq!(Rational::new(3, 4) + Rational::from_int(-1), Rational::new(-1, 4));
        // Equal denominators, including a sum needing renormalisation.
        assert_eq!(Rational::new(1, 4) + Rational::new(1, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(1, 6) + Rational::new(-1, 6), Rational::ZERO);
        assert_eq!(Rational::new(5, 6) + Rational::new(7, 6), Rational::from_int(2));
        // Integer × fraction, with and without a shared factor.
        assert_eq!(Rational::from_int(6) * Rational::new(5, 4), Rational::new(15, 2));
        assert_eq!(Rational::new(5, 4) * Rational::from_int(-2), Rational::new(-5, 2));
        assert_eq!(Rational::from_int(3) * Rational::new(1, 7), Rational::new(3, 7));
        // Subtraction routes through the same paths.
        assert_eq!(Rational::from_int(1) - Rational::new(1, 3), Rational::new(2, 3));
        assert_eq!(Rational::new(7, 10) - Rational::new(2, 10), Rational::new(1, 2));
        // Mixed-sign comparison decides by sign alone, den > 1 included.
        assert!(Rational::new(-1, 3) < Rational::new(1, 7));
        assert!(Rational::new(1, 3) > Rational::new(-5, 7));
    }

    #[test]
    fn signum_and_abs() {
        assert_eq!(Rational::new(-3, 4).signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
        assert_eq!(Rational::new(3, 4).signum(), 1);
        assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    }

    fn small_rational() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_mul_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_distributive(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_inverse(a in small_rational(), b in small_rational()) {
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn prop_ordering_total(a in small_rational(), b in small_rational()) {
            let by_cmp = a.cmp(&b);
            let by_float = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
            // f64 has enough precision for these small rationals, so the exact
            // comparison must agree with it.
            prop_assert_eq!(by_cmp, by_float);
        }

        #[test]
        fn prop_midpoint_between(a in small_rational(), b in small_rational()) {
            let m = a.midpoint(&b);
            prop_assert!(m >= a.min(b) && m <= a.max(b));
        }
    }

    /// The fast paths must agree bit-for-bit with the always-canonicalising
    /// slow paths, and both must keep results in canonical form.
    #[cfg(feature = "naive-reference")]
    mod fast_slow_agreement {
        use super::*;

        /// `slow_mode` is process-global, so these tests serialise on one
        /// lock: otherwise a concurrently running test's `SlowGuard` would
        /// silently push the "fast" half of a comparison down the slow path
        /// and make the agreement assertion vacuous.
        static SLOW_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

        fn is_canonical(r: &Rational) -> bool {
            r.denominator() > 0 && gcd(r.numerator(), r.denominator()) == 1
        }

        /// Mix of integers (fast-path operands) and fractions: arithmetic on
        /// these never overflows `i128`, so every operator can be exercised.
        /// A third kind draws denominators from a small fixed set so pairs
        /// with *equal* `den > 1` denominators (the single-gcd addition fast
        /// path) occur routinely rather than almost never.
        fn mixed_rational() -> impl Strategy<Value = Rational> {
            (0u8..3, -10_000i128..10_000, 1i128..10_000).prop_map(|(kind, n, d)| match kind {
                0 => Rational::new(n, 1),
                1 => Rational::new(n, d),
                _ => Rational::new(n, [2, 3, 4, 6][(d % 4) as usize]),
            })
        }

        /// Like [`mixed_rational`] but also producing values near the `i128`
        /// limits, where the checked cross product overflows and comparison
        /// must take the 256-bit fallback. Only safe for comparisons.
        fn huge_rational() -> impl Strategy<Value = Rational> {
            (0u8..3, -10_000i128..10_000, 1i128..10_000).prop_map(|(kind, n, d)| match kind {
                0 => Rational::new(n, 1),
                1 => Rational::new(n, d),
                _ => Rational::new(n.saturating_mul(1 << 90) | 1, (d << 80) | 1),
            })
        }

        proptest! {
            #[test]
            fn prop_ops_agree_with_slow_path(a in mixed_rational(), b in mixed_rational()) {
                let _lock = SLOW_MODE_LOCK.lock().unwrap();
                assert!(!slow_mode::active(), "another guard leaked into the fast phase");
                let fast = (a + b, a - b, a * b, a.midpoint(&b), a.cmp(&b));
                let slow = {
                    let _guard = slow_mode::SlowGuard::new();
                    (a + b, a - b, a * b, a.midpoint(&b), a.cmp(&b))
                };
                prop_assert_eq!(fast.0, slow.0);
                prop_assert_eq!(fast.1, slow.1);
                prop_assert_eq!(fast.2, slow.2);
                prop_assert_eq!(fast.3, slow.3);
                prop_assert_eq!(fast.4, slow.4);
                for r in [fast.0, fast.1, fast.2, fast.3] {
                    prop_assert!(is_canonical(&r));
                }
            }

            #[test]
            fn prop_division_agrees_with_slow_path(a in mixed_rational(), b in mixed_rational()) {
                let _lock = SLOW_MODE_LOCK.lock().unwrap();
                assert!(!slow_mode::active(), "another guard leaked into the fast phase");
                prop_assume!(!b.is_zero());
                let fast = a / b;
                let slow = {
                    let _guard = slow_mode::SlowGuard::new();
                    a / b
                };
                prop_assert_eq!(fast, slow);
                prop_assert!(is_canonical(&fast));
            }

            #[test]
            fn prop_cmp_agrees_with_slow_path(a in huge_rational(), b in huge_rational()) {
                let _lock = SLOW_MODE_LOCK.lock().unwrap();
                assert!(!slow_mode::active(), "another guard leaked into the fast phase");
                let fast = a.cmp(&b);
                let slow = {
                    let _guard = slow_mode::SlowGuard::new();
                    a.cmp(&b)
                };
                prop_assert_eq!(fast, slow);
            }

            /// Denominators that are powers of two with one dividing the
            /// other, and numerators big enough that the full cross product
            /// overflows `i128`: exactly the fixed-ratio comparison layer.
            #[test]
            fn prop_fixed_ratio_cmp_agrees_with_slow_path(
                n1 in -10_000i128..10_000, n2 in -10_000i128..10_000, k in 0u32..8,
            ) {
                let _lock = SLOW_MODE_LOCK.lock().unwrap();
                assert!(!slow_mode::active(), "another guard leaked into the fast phase");
                let a = Rational::new((n1 << 90) | 1, 1i128 << 70);
                let b = Rational::new((n2 << 90) | 1, 1i128 << (70 + k));
                let fast = a.cmp(&b);
                let slow = {
                    let _guard = slow_mode::SlowGuard::new();
                    a.cmp(&b)
                };
                prop_assert_eq!(fast, slow);
            }
        }
    }
}
