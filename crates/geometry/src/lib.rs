//! Exact rational 2-D geometry kernel.
//!
//! This crate is the numeric substrate of the topological-invariant pipeline.
//! Everything that decides *topology* — orientation of three points, whether
//! two segments cross, the angular order of edges around a vertex — is
//! computed exactly over rational numbers ([`Rational`]), so the maximal
//! topological cell decomposition built on top of it (crate
//! `topo-arrangement`) is combinatorially exact — the precondition for the
//! polynomial-time computability of the invariant `top(I)` claimed by
//! Theorem 2.1 of Segoufin–Vianu to mean anything in practice.
//!
//! The kernel deliberately stays small:
//!
//! * [`Rational`] — reduced `i128` fractions with exact comparison (products
//!   are compared through a 256-bit widening multiply so comparisons never
//!   overflow).
//! * [`Point`] — a point of the rational plane.
//! * [`Segment`] — a closed straight-line segment with exact intersection.
//! * [`predicates`] — orientation / collinearity / on-segment tests.
//! * [`angle`] — exact angular (rotational) comparison of direction vectors,
//!   used to build rotation systems around arrangement vertices.
//! * [`BBox`] and [`SegmentGrid`] — conservative bounding boxes and a uniform
//!   grid used only to *prune* candidate pairs; every reported intersection is
//!   re-checked exactly.

pub mod angle;
pub mod bbox;
pub mod grid;
pub mod lattice;
pub mod point;
pub mod predicates;
pub mod rational;
pub mod segment;

pub use angle::{pseudo_angle_cmp, DirectionVector};
pub use bbox::BBox;
pub use grid::SegmentGrid;
pub use lattice::BoxLattice;
pub use point::Point;
pub use predicates::{orientation, point_on_segment, Orientation};
#[cfg(feature = "naive-reference")]
pub use rational::slow_mode;
pub use rational::Rational;
pub use segment::{Segment, SegmentIntersection};
