//! Closed straight-line segments with exact intersection.

use crate::bbox::BBox;
use crate::point::Point;
use crate::predicates::{cross, orientation, point_on_segment, Orientation};
use crate::rational::Rational;

/// A closed segment of the rational plane with distinct endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

/// Result of intersecting two segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentIntersection {
    /// The segments do not meet.
    None,
    /// The segments meet in a single point.
    Point(Point),
    /// The segments overlap along a (degenerate or not) sub-segment, given by
    /// its two endpoints (which may coincide).
    Overlap(Point, Point),
}

impl Segment {
    /// Builds a segment.
    ///
    /// # Panics
    /// Panics if the endpoints coincide — degenerate segments are represented
    /// as isolated points upstream, never as segments.
    pub fn new(a: Point, b: Point) -> Self {
        assert!(a != b, "degenerate segment");
        Segment { a, b }
    }

    /// The segment with endpoints swapped.
    pub fn reversed(&self) -> Segment {
        Segment { a: self.b, b: self.a }
    }

    /// The segment with endpoints in lexicographic order (used as a
    /// deduplication key).
    pub fn canonical(&self) -> Segment {
        if self.a <= self.b {
            *self
        } else {
            self.reversed()
        }
    }

    /// The midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// The bounding box of the segment.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(&[self.a, self.b])
    }

    /// True iff `p` lies on the closed segment.
    pub fn contains_point(&self, p: &Point) -> bool {
        point_on_segment(p, &self.a, &self.b)
    }

    /// Exact intersection of two closed segments.
    pub fn intersect(&self, other: &Segment) -> SegmentIntersection {
        let (p1, p2) = (&self.a, &self.b);
        let (p3, p4) = (&other.a, &other.b);

        let d1 = orientation(p3, p4, p1);
        let d2 = orientation(p3, p4, p2);
        let d3 = orientation(p1, p2, p3);
        let d4 = orientation(p1, p2, p4);

        let collinear_all = d1 == Orientation::Collinear
            && d2 == Orientation::Collinear
            && d3 == Orientation::Collinear
            && d4 == Orientation::Collinear;

        if collinear_all {
            return self.collinear_overlap(other);
        }

        let proper = d1 != d2
            && d3 != d4
            && d1 != Orientation::Collinear
            && d2 != Orientation::Collinear
            && d3 != Orientation::Collinear
            && d4 != Orientation::Collinear;
        if proper {
            return SegmentIntersection::Point(self.line_intersection_point(other));
        }

        // Endpoint-touching cases: one endpoint lies on the other segment.
        for p in [p1, p2] {
            if other.contains_point(p) {
                return SegmentIntersection::Point(*p);
            }
        }
        for p in [p3, p4] {
            if self.contains_point(p) {
                return SegmentIntersection::Point(*p);
            }
        }
        SegmentIntersection::None
    }

    /// Intersection point of the two supporting lines, assuming they properly
    /// cross (caller guarantees non-parallel).
    fn line_intersection_point(&self, other: &Segment) -> Point {
        // Solve  a + t (b - a) = c + s (d - c)  for t using cross products.
        let (rx, ry) = self.b.sub(&self.a);
        let denom = {
            let (sx, sy) = other.b.sub(&other.a);
            rx * sy - ry * sx
        };
        debug_assert!(!denom.is_zero());
        let t = cross(&self.a, &other.a, &other.b) / denom;
        Point::new(self.a.x + rx * t, self.a.y + ry * t)
    }

    /// Overlap of two collinear segments.
    fn collinear_overlap(&self, other: &Segment) -> SegmentIntersection {
        // Order the endpoints along the common line by lexicographic order of
        // points, which is consistent with the order along the line.
        let (a1, a2) = minmax(self.a, self.b);
        let (b1, b2) = minmax(other.a, other.b);
        let lo = if a1 >= b1 { a1 } else { b1 };
        let hi = if a2 <= b2 { a2 } else { b2 };
        if lo > hi {
            SegmentIntersection::None
        } else if lo == hi {
            SegmentIntersection::Point(lo)
        } else {
            SegmentIntersection::Overlap(lo, hi)
        }
    }

    /// The point at parameter `t` along the segment (`t = 0` gives `a`,
    /// `t = 1` gives `b`).
    pub fn point_at(&self, t: Rational) -> Point {
        let (dx, dy) = self.b.sub(&self.a);
        Point::new(self.a.x + dx * t, self.a.y + dy * t)
    }
}

fn minmax(a: Point, b: Point) -> (Point, Point) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::from_ints(ax, ay), Point::from_ints(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let s1 = seg(0, 0, 4, 4);
        let s2 = seg(0, 4, 4, 0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::Point(Point::from_ints(2, 2)));
    }

    #[test]
    fn non_integer_crossing() {
        let s1 = seg(0, 0, 1, 1);
        let s2 = seg(0, 1, 1, 0);
        let expected = Point::new(Rational::new(1, 2), Rational::new(1, 2));
        assert_eq!(s1.intersect(&s2), SegmentIntersection::Point(expected));
    }

    #[test]
    fn endpoint_touch() {
        let s1 = seg(0, 0, 2, 2);
        let s2 = seg(2, 2, 4, 0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::Point(Point::from_ints(2, 2)));
        let s3 = seg(1, 1, 3, -1);
        assert_eq!(s1.intersect(&s3), SegmentIntersection::Point(Point::from_ints(1, 1)));
    }

    #[test]
    fn disjoint() {
        let s1 = seg(0, 0, 1, 0);
        let s2 = seg(0, 1, 1, 1);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::None);
        let s3 = seg(3, 0, 4, 0);
        assert_eq!(s1.intersect(&s3), SegmentIntersection::None);
    }

    #[test]
    fn collinear_overlap() {
        let s1 = seg(0, 0, 4, 0);
        let s2 = seg(2, 0, 6, 0);
        assert_eq!(
            s1.intersect(&s2),
            SegmentIntersection::Overlap(Point::from_ints(2, 0), Point::from_ints(4, 0))
        );
        let s3 = seg(4, 0, 8, 0);
        assert_eq!(s1.intersect(&s3), SegmentIntersection::Point(Point::from_ints(4, 0)));
        let s4 = seg(5, 0, 8, 0);
        assert_eq!(s1.intersect(&s4), SegmentIntersection::None);
    }

    #[test]
    fn t_shaped_touch() {
        let s1 = seg(0, 0, 4, 0);
        let s2 = seg(2, -1, 2, 0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::Point(Point::from_ints(2, 0)));
    }

    #[test]
    fn point_at_parameters() {
        let s = seg(0, 0, 4, 2);
        assert_eq!(s.point_at(Rational::ZERO), s.a);
        assert_eq!(s.point_at(Rational::ONE), s.b);
        assert_eq!(s.point_at(Rational::new(1, 2)), Point::from_ints(2, 1));
    }

    #[test]
    #[should_panic]
    fn degenerate_segment_panics() {
        let _ = Segment::new(Point::from_ints(1, 1), Point::from_ints(1, 1));
    }

    proptest! {
        #[test]
        fn prop_intersection_symmetric(
            ax in -20i64..20, ay in -20i64..20, bx in -20i64..20, by in -20i64..20,
            cx in -20i64..20, cy in -20i64..20, dx in -20i64..20, dy in -20i64..20,
        ) {
            prop_assume!((ax, ay) != (bx, by) && (cx, cy) != (dx, dy));
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            let i12 = s1.intersect(&s2);
            let i21 = s2.intersect(&s1);
            // The intersection set is symmetric (representation may differ only
            // for overlaps where endpoints are already normalised).
            prop_assert_eq!(i12, i21);
        }

        #[test]
        fn prop_intersection_point_on_both(
            ax in -20i64..20, ay in -20i64..20, bx in -20i64..20, by in -20i64..20,
            cx in -20i64..20, cy in -20i64..20, dx in -20i64..20, dy in -20i64..20,
        ) {
            prop_assume!((ax, ay) != (bx, by) && (cx, cy) != (dx, dy));
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            if let SegmentIntersection::Point(p) = s1.intersect(&s2) {
                prop_assert!(s1.contains_point(&p));
                prop_assert!(s2.contains_point(&p));
            }
        }
    }
}
