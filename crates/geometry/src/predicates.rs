//! Exact geometric predicates.

use crate::point::Point;
use crate::rational::Rational;

/// Orientation of an ordered triple of points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// The triple makes a left turn (counterclockwise).
    CounterClockwise,
    /// The triple makes a right turn (clockwise).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Exact orientation test for the triple `(a, b, c)`.
///
/// Returns the sign of the cross product `(b - a) × (c - a)`, layered from
/// cheapest to most general: integer coordinates (the overwhelmingly common
/// case in cartographic data) are decided exactly in checked `i128` — turns
/// *and* collinearity, with no conversions; fractional coordinates go through
/// a Shewchuk-style floating-point filter that certifies clear turns without
/// rational arithmetic; near-degenerate fractional triples and any `i128`
/// overflow fall through to the exact rational cross product, so the result
/// is exact in every case.
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    if crate::rational::fast_paths() {
        if let Some(o) = orientation_int(a, b, c) {
            return o;
        }
        if let Some(o) = orientation_filter(a, b, c) {
            return o;
        }
    }
    match cross(a, b, c).signum() {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

/// Exact integer orientation: when all six coordinates have denominator 1,
/// the determinant is a plain `i128` expression. Checked arithmetic keeps it
/// exact — any overflow (coordinates beyond ~2⁶²) declines and lets the
/// filter/rational layers take over. Unlike the float filter this path
/// *decides* collinear triples, which dominate street-network workloads.
fn orientation_int(a: &Point, b: &Point, c: &Point) -> Option<Orientation> {
    let ax = a.x.as_integer()?;
    let ay = a.y.as_integer()?;
    let bx = b.x.as_integer()?;
    let by = b.y.as_integer()?;
    let cx = c.x.as_integer()?;
    let cy = c.y.as_integer()?;
    let l = bx.checked_sub(ax)?.checked_mul(cy.checked_sub(ay)?)?;
    let r = by.checked_sub(ay)?.checked_mul(cx.checked_sub(ax)?)?;
    Some(match l.checked_sub(r)?.signum() {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    })
}

/// Floating-point orientation filter: evaluates the cross product on `f64`
/// approximations of the coordinates and certifies the sign when its
/// magnitude exceeds a conservative bound on the accumulated rounding error.
///
/// Error budget with ε = 2⁻⁵³ per rounding and m = the largest coordinate
/// magnitude: each `Rational::to_f64` costs ≤ 3ε relative error, each
/// difference then carries ≤ 9εm absolute error, each product ≤ 42εm², and
/// the final subtraction stays under 100εm² in total. The bound allows
/// 256εm², so a determinant beyond it has a certain sign; anything closer —
/// including every exactly collinear triple — returns `None` for the exact
/// path to settle.
fn orientation_filter(a: &Point, b: &Point, c: &Point) -> Option<Orientation> {
    let (ax, ay) = (a.x.to_f64(), a.y.to_f64());
    let (bx, by) = (b.x.to_f64(), b.y.to_f64());
    let (cx, cy) = (c.x.to_f64(), c.y.to_f64());
    let det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
    let m = ax.abs().max(ay.abs()).max(bx.abs()).max(by.abs()).max(cx.abs()).max(cy.abs());
    let bound = 256.0 * (f64::EPSILON / 2.0) * m * m;
    if !det.is_finite() || !bound.is_finite() {
        return None;
    }
    if det > bound {
        Some(Orientation::CounterClockwise)
    } else if det < -bound {
        Some(Orientation::Clockwise)
    } else {
        None
    }
}

/// The signed cross product `(b - a) × (c - a)` as an exact rational.
pub fn cross(a: &Point, b: &Point, c: &Point) -> Rational {
    let (abx, aby) = b.sub(a);
    let (acx, acy) = c.sub(a);
    abx * acy - aby * acx
}

/// True iff `p` lies on the closed segment `[a, b]`.
pub fn point_on_segment(p: &Point, a: &Point, b: &Point) -> bool {
    if orientation(a, b, p) != Orientation::Collinear {
        return false;
    }
    within(&p.x, &a.x, &b.x) && within(&p.y, &a.y, &b.y)
}

/// True iff `p` lies strictly inside the open segment `(a, b)`.
pub fn point_strictly_inside_segment(p: &Point, a: &Point, b: &Point) -> bool {
    point_on_segment(p, a, b) && p != a && p != b
}

fn within(v: &Rational, lo: &Rational, hi: &Rational) -> bool {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    lo <= v && v <= hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(1, 0);
        let c = Point::from_ints(1, 1);
        assert_eq!(orientation(&a, &b, &c), Orientation::CounterClockwise);
        assert_eq!(orientation(&a, &c, &b), Orientation::Clockwise);
        let d = Point::from_ints(2, 0);
        assert_eq!(orientation(&a, &b, &d), Orientation::Collinear);
    }

    #[test]
    fn on_segment() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(4, 4);
        assert!(point_on_segment(&Point::from_ints(2, 2), &a, &b));
        assert!(point_on_segment(&a, &a, &b));
        assert!(!point_on_segment(&Point::from_ints(5, 5), &a, &b));
        assert!(!point_on_segment(&Point::from_ints(2, 3), &a, &b));
        assert!(point_strictly_inside_segment(&Point::from_ints(2, 2), &a, &b));
        assert!(!point_strictly_inside_segment(&a, &a, &b));
    }

    #[test]
    fn cross_sign_matches_orientation() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(3, 1);
        let c = Point::from_ints(1, 2);
        assert!(cross(&a, &b, &c).signum() > 0);
        assert_eq!(orientation(&a, &b, &c), Orientation::CounterClockwise);
    }

    /// Coordinates near 2⁷⁰ overflow the checked-`i128` integer path (the
    /// determinant products reach 2¹⁴⁰), so these clear turns must be settled
    /// by the float filter — the exact rational fallback would abort on the
    /// same overflow, so reaching it here would panic, not just slow down.
    #[test]
    fn orientation_filter_settles_turns_beyond_the_integer_window() {
        let big = Rational::new(1i128 << 70, 1);
        let zero = Rational::from_int(0);
        let a = Point::new(zero, zero);
        let b = Point::new(big, big);
        let turn = Point::new(big, zero);
        assert_eq!(orientation(&a, &b, &turn), Orientation::Clockwise);
        assert_eq!(orientation(&a, &turn, &b), Orientation::CounterClockwise);
    }

    mod filter_agreement {
        use super::*;
        use proptest::prelude::*;

        /// The sign of the exact rational cross product is the oracle the
        /// filtered orientation must match.
        fn exact_orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
            match cross(a, b, c).signum() {
                1 => Orientation::CounterClockwise,
                -1 => Orientation::Clockwise,
                _ => Orientation::Collinear,
            }
        }

        /// Moderate mixed coordinates: integers and `den > 1` fractions sized
        /// so the exact rational cross product never overflows `i128`.
        fn coord() -> impl Strategy<Value = Rational> {
            (0u8..2, -1_000_000i64..1_000_000, 1i64..1000).prop_map(|(kind, n, d)| match kind {
                0 => Rational::from_int(n),
                _ => Rational::new(n as i128, d as i128),
            })
        }

        proptest! {
            #[test]
            fn prop_filtered_orientation_matches_exact_cross(
                ax in coord(), ay in coord(), bx in coord(),
                by in coord(), cx in coord(), cy in coord(),
            ) {
                let a = Point::new(ax, ay);
                let b = Point::new(bx, by);
                let c = Point::new(cx, cy);
                prop_assert_eq!(orientation(&a, &b, &c), exact_orientation(&a, &b, &c));
            }

            #[test]
            fn prop_filter_certain_at_large_integer_scale(
                ax in -1_000_000i64..1_000_000, ay in -1_000_000i64..1_000_000,
                bx in -1_000_000i64..1_000_000, by in -1_000_000i64..1_000_000,
                cx in -1_000_000i64..1_000_000, cy in -1_000_000i64..1_000_000,
            ) {
                // Scale integer coordinates up to ~2^60, where the f64 filter
                // carries real rounding error but its bound must still only
                // certify correct signs.
                let scale = |n: i64| Rational::new((n as i128) << 40, 1);
                let a = Point::new(scale(ax), scale(ay));
                let b = Point::new(scale(bx), scale(by));
                let c = Point::new(scale(cx), scale(cy));
                prop_assert_eq!(orientation(&a, &b, &c), exact_orientation(&a, &b, &c));
            }

            #[test]
            fn prop_exactly_collinear_triples_survive_the_filter(
                ax in coord(), ay in coord(), dx in coord(), dy in coord(),
                t in -50i64..50, u in 1i64..7,
            ) {
                // c = a + (t/u)·(b − a) is exactly collinear with a and b, so
                // the filter must decline and the exact path must say so.
                let a = Point::new(ax, ay);
                let b = Point::new(ax + dx, ay + dy);
                let s = Rational::new(t as i128, u as i128);
                let c = Point::new(ax + s * dx, ay + s * dy);
                prop_assert_eq!(orientation(&a, &b, &c), Orientation::Collinear);
            }
        }
    }
}
