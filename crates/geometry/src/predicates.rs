//! Exact geometric predicates.

use crate::point::Point;
use crate::rational::Rational;

/// Orientation of an ordered triple of points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// The triple makes a left turn (counterclockwise).
    CounterClockwise,
    /// The triple makes a right turn (clockwise).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Exact orientation test for the triple `(a, b, c)`.
///
/// Returns the sign of the cross product `(b - a) × (c - a)`.
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    let (abx, aby) = b.sub(a);
    let (acx, acy) = c.sub(a);
    let cross = abx * acy - aby * acx;
    match cross.signum() {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

/// The signed cross product `(b - a) × (c - a)` as an exact rational.
pub fn cross(a: &Point, b: &Point, c: &Point) -> Rational {
    let (abx, aby) = b.sub(a);
    let (acx, acy) = c.sub(a);
    abx * acy - aby * acx
}

/// True iff `p` lies on the closed segment `[a, b]`.
pub fn point_on_segment(p: &Point, a: &Point, b: &Point) -> bool {
    if orientation(a, b, p) != Orientation::Collinear {
        return false;
    }
    within(&p.x, &a.x, &b.x) && within(&p.y, &a.y, &b.y)
}

/// True iff `p` lies strictly inside the open segment `(a, b)`.
pub fn point_strictly_inside_segment(p: &Point, a: &Point, b: &Point) -> bool {
    point_on_segment(p, a, b) && p != a && p != b
}

fn within(v: &Rational, lo: &Rational, hi: &Rational) -> bool {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    lo <= v && v <= hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(1, 0);
        let c = Point::from_ints(1, 1);
        assert_eq!(orientation(&a, &b, &c), Orientation::CounterClockwise);
        assert_eq!(orientation(&a, &c, &b), Orientation::Clockwise);
        let d = Point::from_ints(2, 0);
        assert_eq!(orientation(&a, &b, &d), Orientation::Collinear);
    }

    #[test]
    fn on_segment() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(4, 4);
        assert!(point_on_segment(&Point::from_ints(2, 2), &a, &b));
        assert!(point_on_segment(&a, &a, &b));
        assert!(!point_on_segment(&Point::from_ints(5, 5), &a, &b));
        assert!(!point_on_segment(&Point::from_ints(2, 3), &a, &b));
        assert!(point_strictly_inside_segment(&Point::from_ints(2, 2), &a, &b));
        assert!(!point_strictly_inside_segment(&a, &a, &b));
    }

    #[test]
    fn cross_sign_matches_orientation() {
        let a = Point::from_ints(0, 0);
        let b = Point::from_ints(3, 1);
        let c = Point::from_ints(1, 2);
        assert!(cross(&a, &b, &c).signum() > 0);
        assert_eq!(orientation(&a, &b, &c), Orientation::CounterClockwise);
    }
}
