//! Exact angular comparison of direction vectors.
//!
//! Rotation systems (the cyclic order of edges around each arrangement
//! vertex) are the backbone of the topological invariant's `Orientation`
//! relation, so the angular order must be exact. Vectors are compared by
//! counterclockwise angle from the positive x axis, using only sign tests and
//! cross products — no square roots, no trigonometry.

use crate::point::Point;
use crate::rational::Rational;
use std::cmp::Ordering;

/// A non-zero direction vector with exact rational components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectionVector {
    /// x component.
    pub dx: Rational,
    /// y component.
    pub dy: Rational,
}

impl DirectionVector {
    /// Builds a direction vector.
    ///
    /// # Panics
    /// Panics if both components are zero.
    pub fn new(dx: Rational, dy: Rational) -> Self {
        assert!(!(dx.is_zero() && dy.is_zero()), "zero direction vector");
        DirectionVector { dx, dy }
    }

    /// The direction of the vector `to - from`.
    ///
    /// # Panics
    /// Panics if the points coincide.
    pub fn between(from: &Point, to: &Point) -> Self {
        let (dx, dy) = to.sub(from);
        DirectionVector::new(dx, dy)
    }

    /// Half-plane index used for angular sorting: 0 for angles in `[0, π)`
    /// (positive y, or zero y with positive x), 1 for angles in `[π, 2π)`.
    fn half(&self) -> u8 {
        if self.dy.signum() > 0 || (self.dy.is_zero() && self.dx.signum() > 0) {
            0
        } else {
            1
        }
    }

    /// Cross product with another direction.
    pub fn cross(&self, other: &DirectionVector) -> Rational {
        self.dx * other.dy - self.dy * other.dx
    }
}

/// Compares two directions by counterclockwise angle from the positive x axis
/// in `[0, 2π)`.
///
/// Vectors that are positive multiples of each other compare equal; opposite
/// vectors do not.
pub fn pseudo_angle_cmp(a: &DirectionVector, b: &DirectionVector) -> Ordering {
    let (ha, hb) = (a.half(), b.half());
    if ha != hb {
        return ha.cmp(&hb);
    }
    // Same half-plane: the cross product decides. Positive cross means `a`
    // is reached first when sweeping counterclockwise.
    match a.cross(b).signum() {
        1 => Ordering::Less,
        -1 => Ordering::Greater,
        _ => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(dx: i64, dy: i64) -> DirectionVector {
        DirectionVector::new(Rational::from_int(dx), Rational::from_int(dy))
    }

    #[test]
    fn full_turn_order() {
        // Directions listed in counterclockwise order starting from +x.
        let dirs = [
            dir(1, 0),
            dir(2, 1),
            dir(0, 1),
            dir(-1, 1),
            dir(-1, 0),
            dir(-1, -1),
            dir(0, -1),
            dir(1, -1),
        ];
        for i in 0..dirs.len() {
            for j in 0..dirs.len() {
                let expected = i.cmp(&j);
                assert_eq!(pseudo_angle_cmp(&dirs[i], &dirs[j]), expected, "dirs {i} vs {j}");
            }
        }
    }

    #[test]
    fn positive_multiples_equal() {
        assert_eq!(pseudo_angle_cmp(&dir(1, 2), &dir(2, 4)), Ordering::Equal);
        assert_ne!(pseudo_angle_cmp(&dir(1, 2), &dir(-1, -2)), Ordering::Equal);
    }

    #[test]
    fn between_points() {
        let a = Point::from_ints(1, 1);
        let b = Point::from_ints(3, 2);
        let d = DirectionVector::between(&a, &b);
        assert_eq!(d, dir(2, 1));
    }

    #[test]
    #[should_panic]
    fn zero_vector_panics() {
        let _ = dir(0, 0);
    }
}
