//! Uniform grid over segment bounding boxes.
//!
//! The arrangement builder needs all pairs of input segments that might
//! intersect. An all-pairs scan is quadratic and far too slow for the
//! cartography-scale workloads of the benchmark harness, so candidate pairs
//! are generated from a uniform grid keyed on `f64` approximations of the
//! segment bounding boxes. The grid is purely a *pruning* structure: every
//! candidate pair is verified with the exact predicates afterwards, and the
//! conservative box test guarantees no intersecting pair is missed.

use crate::bbox::BBox;
use crate::segment::Segment;
use std::collections::HashMap;

/// A uniform spatial hash over segments.
pub struct SegmentGrid {
    cell_size: f64,
    min_x: f64,
    min_y: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    boxes: Vec<BBox>,
}

impl SegmentGrid {
    /// Builds a grid over the given segments.
    ///
    /// The cell size is chosen so the expected number of segments per cell is
    /// a small constant for uniformly spread data.
    pub fn build(segments: &[Segment]) -> Self {
        let boxes: Vec<BBox> = segments.iter().map(|s| s.bbox()).collect();
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut total_extent = 0.0f64;
        for b in &boxes {
            let (x0, y0, x1, y1) = b.to_f64();
            min_x = min_x.min(x0);
            min_y = min_y.min(y0);
            max_x = max_x.max(x1);
            max_y = max_y.max(y1);
            total_extent += (x1 - x0).max(y1 - y0);
        }
        if boxes.is_empty() {
            return SegmentGrid {
                cell_size: 1.0,
                min_x: 0.0,
                min_y: 0.0,
                cells: HashMap::new(),
                boxes,
            };
        }
        let avg_extent = (total_extent / boxes.len() as f64).max(1e-9);
        let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
        // Cells roughly the size of an average segment, clamped so the grid
        // never exceeds ~2048 cells per side.
        let cell_size = avg_extent.max(span / 2048.0);
        let mut grid = SegmentGrid { cell_size, min_x, min_y, cells: HashMap::new(), boxes };
        for i in 0..segments.len() {
            let (cx0, cy0, cx1, cy1) = grid.cell_range(&grid.boxes[i]);
            for cx in cx0..=cx1 {
                for cy in cy0..=cy1 {
                    grid.cells.entry((cx, cy)).or_default().push(i);
                }
            }
        }
        grid
    }

    fn cell_range(&self, b: &BBox) -> (i64, i64, i64, i64) {
        let (x0, y0, x1, y1) = b.to_f64();
        (
            ((x0 - self.min_x) / self.cell_size).floor() as i64,
            ((y0 - self.min_y) / self.cell_size).floor() as i64,
            ((x1 - self.min_x) / self.cell_size).floor() as i64,
            ((y1 - self.min_y) / self.cell_size).floor() as i64,
        )
    }

    /// All pairs `(i, j)` with `i < j` whose grid cells overlap and whose
    /// exact bounding boxes intersect. Every actually-intersecting pair of
    /// segments is included.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for bucket in self.cells.values() {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    let key = if i < j { (i, j) } else { (j, i) };
                    if seen.insert(key) && self.boxes[key.0].intersects(&self.boxes[key.1]) {
                        pairs.push(key);
                    }
                }
            }
        }
        pairs
    }

    /// Indices of segments whose bounding box intersects `query`.
    pub fn query_box(&self, query: &BBox) -> Vec<usize> {
        if self.boxes.is_empty() {
            return Vec::new();
        }
        let (cx0, cy0, cx1, cy1) = self.cell_range(query);
        let mut out = std::collections::HashSet::new();
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &i in bucket {
                        if self.boxes[i].intersects(query) {
                            out.insert(i);
                        }
                    }
                }
            }
        }
        let mut v: Vec<usize> = out.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::segment::SegmentIntersection;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::from_ints(ax, ay), Point::from_ints(bx, by))
    }

    #[test]
    fn grid_finds_all_intersecting_pairs() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut segments = Vec::new();
        for _ in 0..120 {
            let ax = rng.gen_range(-50..50);
            let ay = rng.gen_range(-50..50);
            let mut bx = rng.gen_range(-50..50);
            let mut by = rng.gen_range(-50..50);
            if (ax, ay) == (bx, by) {
                bx += 1;
                by += 1;
            }
            segments.push(seg(ax, ay, bx, by));
        }
        // Ground truth by brute force.
        let mut truth = std::collections::HashSet::new();
        for i in 0..segments.len() {
            for j in i + 1..segments.len() {
                if segments[i].intersect(&segments[j]) != SegmentIntersection::None {
                    truth.insert((i, j));
                }
            }
        }
        let grid = SegmentGrid::build(&segments);
        let candidates: std::collections::HashSet<(usize, usize)> =
            grid.candidate_pairs().into_iter().collect();
        for pair in &truth {
            assert!(candidates.contains(pair), "missing intersecting pair {pair:?}");
        }
    }

    #[test]
    fn empty_grid() {
        let grid = SegmentGrid::build(&[]);
        assert!(grid.candidate_pairs().is_empty());
    }

    #[test]
    fn query_box_returns_overlapping() {
        let segments = vec![seg(0, 0, 1, 1), seg(10, 10, 11, 11), seg(0, 1, 1, 0)];
        let grid = SegmentGrid::build(&segments);
        let q = BBox::from_points(&[Point::from_ints(0, 0), Point::from_ints(2, 2)]);
        let hits = grid.query_box(&q);
        assert_eq!(hits, vec![0, 2]);
    }
}
