//! Uniform grid over segment bounding boxes.
//!
//! The arrangement builder needs all pairs of input segments that might
//! intersect. An all-pairs scan is quadratic and far too slow for the
//! cartography-scale workloads of the benchmark harness, so candidate pairs
//! are generated from a uniform grid keyed on `f64` approximations of the
//! segment bounding boxes. The grid is purely a *pruning* structure: every
//! candidate pair is verified with the exact predicates afterwards, and the
//! conservative box test guarantees no intersecting pair is missed.
//!
//! The cell lattice itself is the shared flat-CSR [`BoxLattice`];
//! deduplication uses sort + dedup on plain vectors instead of hash sets,
//! and queries can reuse a caller-provided scratch buffer
//! ([`SegmentGrid::query_box_into`]).

use crate::bbox::BBox;
use crate::lattice::BoxLattice;
use crate::segment::Segment;
use topo_parallel::Pool;

/// A uniform spatial hash over segments.
pub struct SegmentGrid {
    lattice: BoxLattice,
    boxes: Vec<BBox>,
}

impl SegmentGrid {
    /// Builds a grid over the given segments.
    ///
    /// The cell size is chosen so the expected number of segments per cell is
    /// a small constant for uniformly spread data (at most ~2048 cells per
    /// side, and a total cell count linear in the segment count).
    pub fn build(segments: &[Segment]) -> Self {
        let boxes: Vec<BBox> = segments.iter().map(|s| s.bbox()).collect();
        let f64_boxes: Vec<(f64, f64, f64, f64)> = boxes.iter().map(|b| b.to_f64()).collect();
        SegmentGrid { lattice: BoxLattice::build(&f64_boxes, 2048), boxes }
    }

    /// All pairs `(i, j)` with `i < j` whose grid cells overlap and whose
    /// exact bounding boxes intersect. Every actually-intersecting pair of
    /// segments is included.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        self.candidate_pairs_pooled(Pool::with_threads(1))
    }

    /// [`SegmentGrid::candidate_pairs`] fanned out over `pool`: bucket
    /// enumeration and the exact bounding-box filter run per contiguous
    /// bucket/pair chunk. The output is bit-identical at every thread count:
    /// chunked generation concatenated in chunk order yields the same pair
    /// sequence as the sequential scan, the global sort + dedup erases any
    /// remaining boundary sensitivity, and the filter preserves order.
    pub fn candidate_pairs_pooled(&self, pool: Pool) -> Vec<(usize, usize)> {
        let buckets: Vec<&[u32]> = self.lattice.occupied_buckets().collect();
        let per_chunk: Vec<Vec<(u32, u32)>> = pool.par_chunks(&buckets, 64, |_, chunk| {
            let mut pairs = Vec::new();
            for bucket in chunk {
                for (k, &i) in bucket.iter().enumerate() {
                    for &j in &bucket[k + 1..] {
                        pairs.push(if i < j { (i, j) } else { (j, i) });
                    }
                }
            }
            pairs
        });
        let mut pairs: Vec<(u32, u32)> = per_chunk.into_iter().flatten().collect();
        // Segments sharing several cells produce the same pair repeatedly;
        // sort + dedup replaces the hash set the seed used here.
        pairs.sort_unstable();
        pairs.dedup();
        let filtered: Vec<Vec<(usize, usize)>> = pool.par_chunks(&pairs, 1024, |_, chunk| {
            chunk
                .iter()
                .filter(|&&(i, j)| self.boxes[i as usize].intersects(&self.boxes[j as usize]))
                .map(|&(i, j)| (i as usize, j as usize))
                .collect()
        });
        filtered.into_iter().flatten().collect()
    }

    /// Indices of segments whose bounding box intersects `query`, sorted
    /// ascending.
    pub fn query_box(&self, query: &BBox) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_box_into(query, &mut out);
        out
    }

    /// Like [`SegmentGrid::query_box`], but clearing and filling a
    /// caller-provided buffer so repeated probes perform no allocation.
    pub fn query_box_into(&self, query: &BBox, out: &mut Vec<usize>) {
        out.clear();
        self.lattice.for_each_in_range(query.to_f64(), |i| {
            if self.boxes[i as usize].intersects(query) {
                out.push(i as usize);
            }
        });
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::segment::SegmentIntersection;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::from_ints(ax, ay), Point::from_ints(bx, by))
    }

    #[test]
    fn grid_finds_all_intersecting_pairs() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut segments = Vec::new();
        for _ in 0..120 {
            let ax = rng.gen_range(-50..50);
            let ay = rng.gen_range(-50..50);
            let mut bx = rng.gen_range(-50..50);
            let mut by = rng.gen_range(-50..50);
            if (ax, ay) == (bx, by) {
                bx += 1;
                by += 1;
            }
            segments.push(seg(ax, ay, bx, by));
        }
        // Ground truth by brute force.
        let mut truth = std::collections::HashSet::new();
        for i in 0..segments.len() {
            for j in i + 1..segments.len() {
                if segments[i].intersect(&segments[j]) != SegmentIntersection::None {
                    truth.insert((i, j));
                }
            }
        }
        let grid = SegmentGrid::build(&segments);
        let candidates: std::collections::HashSet<(usize, usize)> =
            grid.candidate_pairs().into_iter().collect();
        for pair in &truth {
            assert!(candidates.contains(pair), "missing intersecting pair {pair:?}");
        }
    }

    #[test]
    fn candidate_pairs_are_sorted_and_unique() {
        let segments =
            vec![seg(0, 0, 10, 10), seg(0, 10, 10, 0), seg(2, 2, 8, 8), seg(5, 0, 5, 10)];
        let pairs = grid_pairs(&segments);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
    }

    fn grid_pairs(segments: &[Segment]) -> Vec<(usize, usize)> {
        SegmentGrid::build(segments).candidate_pairs()
    }

    #[test]
    fn empty_grid() {
        let grid = SegmentGrid::build(&[]);
        assert!(grid.candidate_pairs().is_empty());
        assert!(grid.query_box(&BBox::from_points(&[Point::from_ints(0, 0)])).is_empty());
    }

    #[test]
    fn query_box_returns_overlapping() {
        let segments = vec![seg(0, 0, 1, 1), seg(10, 10, 11, 11), seg(0, 1, 1, 0)];
        let grid = SegmentGrid::build(&segments);
        let q = BBox::from_points(&[Point::from_ints(0, 0), Point::from_ints(2, 2)]);
        let hits = grid.query_box(&q);
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn query_box_reuses_scratch_buffer() {
        let segments = vec![seg(0, 0, 1, 1), seg(10, 10, 11, 11), seg(0, 1, 1, 0)];
        let grid = SegmentGrid::build(&segments);
        let mut scratch = vec![99usize; 8];
        let q1 = BBox::from_points(&[Point::from_ints(0, 0), Point::from_ints(2, 2)]);
        grid.query_box_into(&q1, &mut scratch);
        assert_eq!(scratch, vec![0, 2]);
        let q2 = BBox::from_points(&[Point::from_ints(10, 10)]);
        grid.query_box_into(&q2, &mut scratch);
        assert_eq!(scratch, vec![1]);
    }

    #[test]
    fn query_far_outside_the_data_is_cheap_and_empty() {
        let segments = vec![seg(0, 0, 1, 1)];
        let grid = SegmentGrid::build(&segments);
        // A box billions of cells away: the clamped cell range must not walk
        // the lattice, and the exact box filter must reject the lone segment.
        let q = BBox::from_points(&[
            Point::from_ints(5_000_000_000, 5_000_000_000),
            Point::from_ints(9_000_000_000, 9_000_000_000),
        ]);
        assert!(grid.query_box(&q).is_empty());
    }
}
