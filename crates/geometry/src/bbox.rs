//! Axis-aligned bounding boxes.

use crate::point::Point;
use crate::rational::Rational;

/// A closed axis-aligned rectangle used for conservative pruning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BBox {
    /// Minimum x coordinate.
    pub min_x: Rational,
    /// Minimum y coordinate.
    pub min_y: Rational,
    /// Maximum x coordinate.
    pub max_x: Rational,
    /// Maximum y coordinate.
    pub max_y: Rational,
}

impl BBox {
    /// Bounding box of a non-empty slice of points.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_points(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "bounding box of empty point set");
        let mut b =
            BBox { min_x: points[0].x, min_y: points[0].y, max_x: points[0].x, max_y: points[0].y };
        for p in &points[1..] {
            b.expand(p);
        }
        b
    }

    /// Enlarges the box to contain `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// True iff the two closed boxes share at least one point.
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// True iff the closed box contains the point.
    pub fn contains(&self, p: &Point) -> bool {
        self.min_x <= p.x && p.x <= self.max_x && self.min_y <= p.y && p.y <= self.max_y
    }

    /// Width of the box.
    pub fn width(&self) -> Rational {
        self.max_x - self.min_x
    }

    /// Height of the box.
    pub fn height(&self) -> Rational {
        self.max_y - self.min_y
    }

    /// Approximate corners for pruning structures.
    pub fn to_f64(&self) -> (f64, f64, f64, f64) {
        (self.min_x.to_f64(), self.min_y.to_f64(), self.max_x.to_f64(), self.max_y.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_and_contains() {
        let b = BBox::from_points(&[
            Point::from_ints(0, 0),
            Point::from_ints(4, 2),
            Point::from_ints(-1, 3),
        ]);
        assert_eq!(b.min_x, Rational::from_int(-1));
        assert_eq!(b.max_x, Rational::from_int(4));
        assert!(b.contains(&Point::from_ints(0, 1)));
        assert!(!b.contains(&Point::from_ints(5, 1)));
    }

    #[test]
    fn intersection_test() {
        let a = BBox::from_points(&[Point::from_ints(0, 0), Point::from_ints(2, 2)]);
        let b = BBox::from_points(&[Point::from_ints(2, 2), Point::from_ints(4, 4)]);
        let c = BBox::from_points(&[Point::from_ints(3, 0), Point::from_ints(5, 3)]);
        assert!(a.intersects(&b)); // touch at a corner
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
    }

    #[test]
    fn union_and_dims() {
        let a = BBox::from_points(&[Point::from_ints(0, 0), Point::from_ints(1, 1)]);
        let b = BBox::from_points(&[Point::from_ints(3, -2), Point::from_ints(4, 0)]);
        let u = a.union(&b);
        assert_eq!(u.width(), Rational::from_int(4));
        assert_eq!(u.height(), Rational::from_int(3));
    }
}
