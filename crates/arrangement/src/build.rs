//! Arrangement construction.
//!
//! The builder proceeds in the classical phases:
//!
//! 1. find all pairwise segment intersections (grid-pruned, exactly verified)
//!    and split every input segment at every vertex lying on it;
//! 2. intern vertices and create the undirected arrangement edges, merging
//!    coincident sub-segments and accumulating their source tags;
//! 3. build the rotation system (counterclockwise order of edges around each
//!    vertex) and the half-edge `next` pointers;
//! 4. trace face-boundary cycles, identify for every connected component of
//!    the 1-skeleton its *outer contour* (the cycle bounding the component
//!    from outside), and create one face per remaining cycle plus the
//!    exterior face;
//! 5. nest every component (and every isolated vertex) into the face that
//!    contains it, using exact even–odd tests;
//! 6. assemble incidences.

use crate::containment::{innermost, CycleGeometry, CycleIndex};
use crate::{ArrEdge, ArrFace, Arrangement, ArrangementInput, EdgeId, FaceId, VertexId};
use std::collections::HashMap;
use topo_geometry::{
    pseudo_angle_cmp, BBox, DirectionVector, Point, SegmentGrid, SegmentIntersection,
};
use topo_parallel::Pool;

/// Builds the planar arrangement induced by the input segments and points.
pub fn build_arrangement(input: &ArrangementInput) -> Arrangement {
    Builder::new(input).run()
}

/// Phase 1 alone: for every input segment, the points at which it must be
/// split — its endpoints, every intersection with another input segment, and
/// every isolated input point lying on it. `result[i]` belongs to
/// `input.segments[i]`; the points come in no particular order and may repeat
/// (the builder normalises with a per-segment sort + dedup).
///
/// Exposed so callers that already know a subset of the pairwise events (an
/// incremental maintainer with a pair cache, say) can assemble split lists
/// themselves and skip the quadratic phase via
/// [`build_arrangement_from_splits`].
pub fn compute_split_points(input: &ArrangementInput) -> Vec<Vec<Point>> {
    Builder::new(input).compute_splits()
}

/// Builds the arrangement from precomputed split lists, skipping phase 1.
///
/// Contract: `splits[i]` must contain segment `i`'s two endpoints plus every
/// interior event point (intersections with other segments, isolated points on
/// the segment), all lying on segment `i`. Order and duplicates are
/// irrelevant. Feeding the output of [`compute_split_points`] reproduces
/// [`build_arrangement`] exactly; feeding anything less yields an arrangement
/// of the *wrong* subdivision, so callers own the completeness argument.
pub fn build_arrangement_from_splits(
    input: &ArrangementInput,
    splits: Vec<Vec<Point>>,
) -> Arrangement {
    assert_eq!(splits.len(), input.segments.len(), "one split list per input segment");
    Builder::new(input).run_from_splits(splits)
}

/// An undirected arrangement edge before incidence wiring: its two endpoint
/// vertices and the encoded source tags of the input segments covering it.
type RawEdge = (VertexId, VertexId, Vec<u32>);

struct Builder<'a> {
    input: &'a ArrangementInput,
    vertex_ids: HashMap<Point, VertexId>,
    vertices: Vec<Point>,
    /// The pool the hot phases fan out over. Every parallel phase is
    /// bit-identical to its sequential form at any thread count (see the
    /// per-phase comments), so the builder takes the global pool
    /// unconditionally.
    pool: Pool,
}

impl<'a> Builder<'a> {
    fn new(input: &'a ArrangementInput) -> Self {
        Builder { input, vertex_ids: HashMap::new(), vertices: Vec::new(), pool: Pool::global() }
    }

    fn intern(&mut self, p: Point) -> VertexId {
        if let Some(&id) = self.vertex_ids.get(&p) {
            return id;
        }
        let id = self.vertices.len();
        self.vertices.push(p);
        self.vertex_ids.insert(p, id);
        id
    }

    fn run(mut self) -> Arrangement {
        let splits = self.compute_splits();
        self.run_from_splits(splits)
    }

    fn run_from_splits(mut self, splits: Vec<Vec<Point>>) -> Arrangement {
        let (edges, point_vertices) = self.build_edges(splits);
        let rotations = self.build_rotations(&edges);
        let (next, cycle_of, cycle_count) = self.trace_cycles(&edges, &rotations);
        let assembled =
            self.assemble_faces(edges, rotations, point_vertices, &next, &cycle_of, cycle_count);
        debug_assert!(assembled.validate().is_ok(), "{:?}", assembled.validate());
        assembled
    }

    /// Phase 1: for every input segment, the set of points at which it must be
    /// split (its endpoints, intersection points with other segments, and
    /// isolated input points lying on it).
    fn compute_splits(&mut self) -> Vec<Vec<Point>> {
        let segments: Vec<topo_geometry::Segment> =
            self.input.segments.iter().map(|(s, _)| *s).collect();
        let mut splits: Vec<Vec<Point>> = segments.iter().map(|s| vec![s.a, s.b]).collect();
        if !segments.is_empty() {
            let grid = SegmentGrid::build(&segments);
            let pairs = grid.candidate_pairs_pooled(self.pool);
            // Exact pairwise intersection fans out over contiguous pair
            // chunks; each chunk records `(segment, split point)` events in
            // pair order, so applying the chunks in order replays exactly
            // the sequential push sequence. (Order is erased again anyway by
            // the per-segment sort + dedup in `build_edges`.)
            let events: Vec<Vec<(usize, Point)>> = self.pool.par_chunks(&pairs, 256, |_, chunk| {
                let mut out: Vec<(usize, Point)> = Vec::new();
                for &(i, j) in chunk {
                    match segments[i].intersect(&segments[j]) {
                        SegmentIntersection::None => {}
                        SegmentIntersection::Point(p) => {
                            out.push((i, p));
                            out.push((j, p));
                        }
                        SegmentIntersection::Overlap(p, q) => {
                            out.push((i, p));
                            out.push((i, q));
                            out.push((j, p));
                            out.push((j, q));
                        }
                    }
                }
                out
            });
            for chunk in events {
                for (idx, p) in chunk {
                    splits[idx].push(p);
                }
            }
            // Isolated input points lying in the interior of a segment force a
            // split there as well. One scratch buffer serves every probe.
            let mut hits: Vec<usize> = Vec::new();
            for (p, _) in &self.input.points {
                let query = BBox::from_points(&[*p]);
                grid.query_box_into(&query, &mut hits);
                for &idx in &hits {
                    if segments[idx].contains_point(p) {
                        splits[idx].push(*p);
                    }
                }
            }
        }
        splits
    }

    /// Phase 2: intern vertices, split segments, and merge coincident
    /// sub-segments into undirected arrangement edges.
    fn build_edges(&mut self, splits: Vec<Vec<Point>>) -> (Vec<RawEdge>, Vec<VertexId>) {
        let mut edge_ids: HashMap<(VertexId, VertexId), EdgeId> = HashMap::new();
        let mut edges: Vec<RawEdge> = Vec::new();
        for ((segment, source), mut points) in self.input.segments.iter().zip(splits) {
            // Order split points along the segment (all are collinear with it,
            // so squared distance from `a` is monotone in the curve parameter).
            // The exact rational key is computed once per point, not once per
            // comparison.
            points.sort_by_cached_key(|p| segment.a.distance_sq(p));
            points.dedup();
            for pair in points.windows(2) {
                let u = self.intern(pair[0]);
                let w = self.intern(pair[1]);
                debug_assert_ne!(u, w);
                let key = (u.min(w), u.max(w));
                let edge = *edge_ids.entry(key).or_insert_with(|| {
                    edges.push((key.0, key.1, Vec::new()));
                    edges.len() - 1
                });
                edges[edge].2.push(*source);
            }
        }
        let point_vertices: Vec<VertexId> =
            self.input.points.iter().map(|(p, _)| self.intern(*p)).collect();
        (edges, point_vertices)
    }

    /// Phase 3: rotation system.
    fn build_rotations(&self, edges: &[(VertexId, VertexId, Vec<u32>)]) -> Vec<Vec<EdgeId>> {
        let mut rotations: Vec<Vec<EdgeId>> = vec![Vec::new(); self.vertices.len()];
        for (e, (v1, v2, _)) in edges.iter().enumerate() {
            rotations[*v1].push(e);
            rotations[*v2].push(e);
        }
        // Per-vertex comparator sorts are independent, so in-place chunked
        // fan-out is trivially deterministic.
        self.pool.par_chunks_mut(&mut rotations, 128, |offset, chunk| {
            for (k, rot) in chunk.iter_mut().enumerate() {
                let v = offset + k;
                let origin = self.vertices[v];
                rot.sort_by(|&e1, &e2| {
                    let d1 = self.outgoing_direction(edges, e1, v, origin);
                    let d2 = self.outgoing_direction(edges, e2, v, origin);
                    pseudo_angle_cmp(&d1, &d2)
                });
            }
        });
        rotations
    }

    fn outgoing_direction(
        &self,
        edges: &[(VertexId, VertexId, Vec<u32>)],
        e: EdgeId,
        v: VertexId,
        origin: Point,
    ) -> DirectionVector {
        let (v1, v2, _) = &edges[e];
        let other = if *v1 == v { *v2 } else { *v1 };
        DirectionVector::between(&origin, &self.vertices[other])
    }

    /// Phase 4a: half-edge `next` pointers and cycle tracing.
    ///
    /// Half-edge `2e` runs `v1 -> v2`, half-edge `2e+1` runs `v2 -> v1`.
    /// `next(h)` continues the face boundary keeping the face on the left.
    fn trace_cycles(
        &self,
        edges: &[(VertexId, VertexId, Vec<u32>)],
        rotations: &[Vec<EdgeId>],
    ) -> (Vec<usize>, Vec<usize>, usize) {
        let half_count = edges.len() * 2;
        let origin = |h: usize| -> VertexId {
            let (v1, v2, _) = &edges[h / 2];
            if h % 2 == 0 {
                *v1
            } else {
                *v2
            }
        };
        // Position of each edge in the rotation of each of its endpoints,
        // as flat per-edge slots (`[at v1, at v2]`) instead of a hash map.
        let mut rot_pos: Vec<[u32; 2]> = vec![[0, 0]; edges.len()];
        for (v, rot) in rotations.iter().enumerate() {
            for (idx, &e) in rot.iter().enumerate() {
                let slot = if edges[e].0 == v { 0 } else { 1 };
                rot_pos[e][slot] = idx as u32;
            }
        }
        let mut next = vec![usize::MAX; half_count];
        for h in 0..half_count {
            let twin = h ^ 1;
            let v = origin(twin); // target of h
            let rot = &rotations[v];
            let slot = if edges[h / 2].0 == v { 0 } else { 1 };
            let pos = rot_pos[h / 2][slot] as usize;
            // Clockwise successor of the twin around the target vertex.
            let prev_edge = rot[(pos + rot.len() - 1) % rot.len()];
            let (v1, _, _) = &edges[prev_edge];
            let out_half = if *v1 == v { prev_edge * 2 } else { prev_edge * 2 + 1 };
            next[h] = out_half;
        }
        // Trace cycles of `next`.
        let mut cycle_of = vec![usize::MAX; half_count];
        let mut cycle_count = 0usize;
        for start in 0..half_count {
            if cycle_of[start] != usize::MAX {
                continue;
            }
            let mut h = start;
            loop {
                cycle_of[h] = cycle_count;
                h = next[h];
                if h == start {
                    break;
                }
            }
            cycle_count += 1;
        }
        (next, cycle_of, cycle_count)
    }

    /// Phases 4b–6: components, outer contours, faces, nesting, assembly.
    #[allow(clippy::too_many_arguments)]
    fn assemble_faces(
        &mut self,
        edges: Vec<RawEdge>,
        rotations: Vec<Vec<EdgeId>>,
        point_vertices: Vec<VertexId>,
        _next: &[usize],
        cycle_of: &[usize],
        cycle_count: usize,
    ) -> Arrangement {
        let n = self.vertices.len();
        let origin = |h: usize| -> VertexId {
            let (v1, v2, _) = &edges[h / 2];
            if h % 2 == 0 {
                *v1
            } else {
                *v2
            }
        };

        // Connected components of the 1-skeleton (vertices with edges only).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let nxt = parent[cur];
                parent[cur] = root;
                cur = nxt;
            }
            root
        }
        for (v1, v2, _) in &edges {
            let (a, b) = (find(&mut parent, *v1), find(&mut parent, *v2));
            if a != b {
                parent[a] = b;
            }
        }
        // Component representative -> component index; minimal vertex per component.
        let mut comp_index: HashMap<usize, usize> = HashMap::new();
        let mut comp_min_vertex: Vec<VertexId> = Vec::new();
        for (v, rot) in rotations.iter().enumerate().take(n) {
            if rot.is_empty() {
                continue;
            }
            let root = find(&mut parent, v);
            let idx = *comp_index.entry(root).or_insert_with(|| {
                comp_min_vertex.push(v);
                comp_min_vertex.len() - 1
            });
            if self.vertices[v] < self.vertices[comp_min_vertex[idx]] {
                comp_min_vertex[idx] = v;
            }
        }
        let comp_of_vertex = |builder_parent: &mut [usize],
                              v: VertexId,
                              comp_index: &HashMap<usize, usize>|
         -> usize { comp_index[&find(builder_parent, v)] };

        // Outer contour of every component: the cycle bounding the angular
        // sector that faces "due left" at the component's minimal vertex.
        let comp_count = comp_min_vertex.len();
        let mut outer_cycle_of_comp: Vec<usize> = vec![usize::MAX; comp_count];
        for (c, &v) in comp_min_vertex.iter().enumerate() {
            let rot = &rotations[v];
            debug_assert!(!rot.is_empty());
            let mut best: Option<(bool, DirectionVector, EdgeId)> = None;
            for &e in rot {
                let d = self.outgoing_direction(&edges, e, v, self.vertices[v]);
                // `v` is the lexicographic minimum of its component, so no
                // outgoing edge points left or straight down.
                let upper_half = d.dy.signum() > 0 || (d.dy.is_zero() && d.dx.signum() > 0);
                let better = match &best {
                    None => true,
                    Some((best_upper, best_dir, _)) => {
                        if upper_half != *best_upper {
                            // Prefer the upper half-plane: the sector that
                            // contains "due left" starts at the largest angle
                            // not exceeding 180 degrees when one exists.
                            upper_half
                        } else {
                            pseudo_angle_cmp(&d, best_dir) == std::cmp::Ordering::Greater
                        }
                    }
                };
                if better {
                    best = Some((upper_half, d, e));
                }
            }
            let (_, _, e) = best.unwrap();
            let (v1, _, _) = &edges[e];
            let out_half = if *v1 == v { e * 2 } else { e * 2 + 1 };
            outer_cycle_of_comp[c] = cycle_of[out_half];
        }
        let mut is_outer_cycle = vec![false; cycle_count];
        for &c in &outer_cycle_of_comp {
            is_outer_cycle[c] = true;
        }

        // Faces: the exterior face first, then one face per non-contour cycle.
        let exterior_face: FaceId = 0;
        let mut faces: Vec<ArrFace> = vec![ArrFace { bounded: false, ..Default::default() }];
        let mut face_of_cycle: Vec<Option<FaceId>> = vec![None; cycle_count];
        for cycle in 0..cycle_count {
            if !is_outer_cycle[cycle] {
                faces.push(ArrFace { bounded: true, ..Default::default() });
                face_of_cycle[cycle] = Some(faces.len() - 1);
            }
        }

        // Geometry of every bounded-face cycle, for nesting tests.
        let mut cycle_geometry: Vec<Option<CycleGeometry>> = vec![None; cycle_count];
        let mut cycle_component: Vec<Option<usize>> = vec![None; cycle_count];
        {
            let mut cycle_halves: Vec<Vec<usize>> = vec![Vec::new(); cycle_count];
            for h in 0..edges.len() * 2 {
                cycle_halves[cycle_of[h]].push(h);
            }
            for (cycle, halves) in cycle_halves.iter().enumerate() {
                if halves.is_empty() {
                    continue;
                }
                cycle_component[cycle] =
                    Some(comp_of_vertex(&mut parent, origin(halves[0]), &comp_index));
                if face_of_cycle[cycle].is_some() {
                    let directed: Vec<(Point, Point)> = halves
                        .iter()
                        .map(|&h| (self.vertices[origin(h)], self.vertices[origin(h ^ 1)]))
                        .collect();
                    cycle_geometry[cycle] = Some(CycleGeometry::new(directed));
                }
            }
        }
        let positive_cycles: Vec<usize> =
            (0..cycle_count).filter(|&c| face_of_cycle[c].is_some()).collect();
        let all_geometry: Vec<CycleGeometry> = positive_cycles
            .iter()
            .map(|&c| cycle_geometry[c].clone().expect("geometry for bounded cycle"))
            .collect();

        // Index of positive-cycle bounding boxes: each nesting probe below
        // only runs exact point-in-cycle tests against cycles whose box can
        // contain it, instead of scanning every positive cycle.
        let cycle_index = CycleIndex::build(&all_geometry);

        // Nest every component: its outer contour becomes a boundary cycle of
        // the face that contains the component. Each probe only reads the
        // immutable cycle tables, so the probes fan out per chunk (one
        // candidate scratch buffer per chunk) and the per-component answers
        // flatten back in component order.
        let parent_face_chunks: Vec<Vec<FaceId>> =
            self.pool.par_chunks(&comp_min_vertex, 32, |offset, chunk| {
                let mut candidates: Vec<usize> = Vec::new();
                let mut out = Vec::with_capacity(chunk.len());
                for (k, &min_v) in chunk.iter().enumerate() {
                    let c = offset + k;
                    let probe = self.vertices[min_v];
                    cycle_index.candidates_into(&probe, &mut candidates);
                    let containers: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&k| {
                            cycle_component[positive_cycles[k]] != Some(c)
                                && all_geometry[k].contains(&probe)
                        })
                        .collect();
                    out.push(if containers.is_empty() {
                        exterior_face
                    } else {
                        let inner = innermost(&containers, &all_geometry);
                        face_of_cycle[positive_cycles[inner]].unwrap()
                    });
                }
                out
            });
        let parent_face_of_comp: Vec<FaceId> = parent_face_chunks.into_iter().flatten().collect();
        debug_assert_eq!(parent_face_of_comp.len(), comp_count);
        for cycle in 0..cycle_count {
            if face_of_cycle[cycle].is_none() && cycle_component[cycle].is_some() {
                let comp = cycle_component[cycle].unwrap();
                face_of_cycle[cycle] = Some(parent_face_of_comp[comp]);
            }
        }

        // Isolated vertices: same read-only probe shape as the component
        // nesting above, fanned out over the isolated-vertex list.
        let isolated_vertices: Vec<VertexId> = rotations
            .iter()
            .enumerate()
            .take(n)
            .filter(|(_, rot)| rot.is_empty())
            .map(|(v, _)| v)
            .collect();
        let isolated_chunks: Vec<Vec<(VertexId, FaceId)>> =
            self.pool.par_chunks(&isolated_vertices, 32, |_, chunk| {
                let mut candidates: Vec<usize> = Vec::new();
                let mut out = Vec::with_capacity(chunk.len());
                for &v in chunk {
                    let probe = self.vertices[v];
                    cycle_index.candidates_into(&probe, &mut candidates);
                    let containers: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&k| all_geometry[k].contains(&probe))
                        .collect();
                    let face = if containers.is_empty() {
                        exterior_face
                    } else {
                        face_of_cycle[positive_cycles[innermost(&containers, &all_geometry)]]
                            .unwrap()
                    };
                    out.push((v, face));
                }
                out
            });
        let isolated: Vec<(VertexId, FaceId)> = isolated_chunks.into_iter().flatten().collect();

        // Edge incidences and face boundaries.
        let mut arr_edges: Vec<ArrEdge> = Vec::with_capacity(edges.len());
        for (e, (v1, v2, sources)) in edges.iter().enumerate() {
            let face_left = face_of_cycle[cycle_of[2 * e]].unwrap();
            let face_right = face_of_cycle[cycle_of[2 * e + 1]].unwrap();
            arr_edges.push(ArrEdge {
                v1: *v1,
                v2: *v2,
                sources: sources.clone(),
                face_left,
                face_right,
            });
        }
        // Face boundaries accumulate on flat vectors and deduplicate with
        // sort + dedup; the boundary lists come out sorted as before.
        let mut face_edge_lists: Vec<Vec<EdgeId>> = vec![Vec::new(); faces.len()];
        let mut face_vertex_lists: Vec<Vec<VertexId>> = vec![Vec::new(); faces.len()];
        for h in 0..edges.len() * 2 {
            let face = face_of_cycle[cycle_of[h]].unwrap();
            face_edge_lists[face].push(h / 2);
            face_vertex_lists[face].push(origin(h));
        }
        for &(v, face) in &isolated {
            face_vertex_lists[face].push(v);
        }
        for (f, face) in faces.iter_mut().enumerate() {
            let mut es = std::mem::take(&mut face_edge_lists[f]);
            es.sort_unstable();
            es.dedup();
            let mut vs = std::mem::take(&mut face_vertex_lists[f]);
            vs.sort_unstable();
            vs.dedup();
            face.boundary_edges = es;
            face.boundary_vertices = vs;
        }

        Arrangement {
            vertices: std::mem::take(&mut self.vertices),
            edges: arr_edges,
            faces,
            exterior_face,
            rotations,
            isolated,
            point_vertices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_geometry::Segment;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> topo_geometry::Segment {
        Segment::new(p(ax, ay), p(bx, by))
    }

    fn square(input: &mut ArrangementInput, x0: i64, y0: i64, size: i64, source: u32) {
        let a = p(x0, y0);
        let b = p(x0 + size, y0);
        let c = p(x0 + size, y0 + size);
        let d = p(x0, y0 + size);
        for (u, w) in [(a, b), (b, c), (c, d), (d, a)] {
            input.add_segment(Segment::new(u, w), source);
        }
    }

    #[test]
    fn empty_input() {
        let arr = build_arrangement(&ArrangementInput::new());
        assert_eq!(arr.vertex_count(), 0);
        assert_eq!(arr.edge_count(), 0);
        assert_eq!(arr.face_count(), 1);
        assert!(!arr.faces[arr.exterior_face].bounded);
        assert!(arr.validate().is_ok());
    }

    #[test]
    fn single_square() {
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 10, 0);
        let arr = build_arrangement(&input);
        assert_eq!(arr.vertex_count(), 4);
        assert_eq!(arr.edge_count(), 4);
        assert_eq!(arr.face_count(), 2);
        assert!(arr.validate().is_ok());
        // Every vertex has degree 2.
        for v in 0..4 {
            assert_eq!(arr.degree(v), 2);
        }
        // The bounded face has all four edges on its boundary.
        let bounded: Vec<_> = arr.faces.iter().filter(|f| f.bounded).collect();
        assert_eq!(bounded.len(), 1);
        assert_eq!(bounded[0].boundary_edges.len(), 4);
        // The exterior face also has all four edges on its boundary.
        assert_eq!(arr.faces[arr.exterior_face].boundary_edges.len(), 4);
    }

    #[test]
    fn crossing_segments() {
        let mut input = ArrangementInput::new();
        input.add_segment(seg(0, 0, 10, 10), 0);
        input.add_segment(seg(0, 10, 10, 0), 1);
        let arr = build_arrangement(&input);
        // 4 endpoints + 1 crossing, 4 edges, 1 face.
        assert_eq!(arr.vertex_count(), 5);
        assert_eq!(arr.edge_count(), 4);
        assert_eq!(arr.face_count(), 1);
        assert!(arr.validate().is_ok());
        let center =
            arr.vertices.iter().position(|q| *q == p(5, 5)).expect("crossing vertex exists");
        assert_eq!(arr.degree(center), 4);
    }

    #[test]
    fn nested_squares() {
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 100, 0);
        square(&mut input, 10, 10, 10, 1);
        let arr = build_arrangement(&input);
        assert_eq!(arr.vertex_count(), 8);
        assert_eq!(arr.edge_count(), 8);
        // exterior, inside-outer-minus-inner, inside-inner
        assert_eq!(arr.face_count(), 3);
        assert!(arr.validate().is_ok());
        // The ring face (between the squares) must have all 8 edges on its
        // boundary; the innermost face only 4; the exterior only 4.
        let mut edge_counts: Vec<usize> =
            arr.faces.iter().map(|f| f.boundary_edges.len()).collect();
        edge_counts.sort_unstable();
        assert_eq!(edge_counts, vec![4, 4, 8]);
    }

    #[test]
    fn disjoint_squares_in_exterior() {
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 10, 0);
        square(&mut input, 100, 100, 10, 1);
        let arr = build_arrangement(&input);
        assert_eq!(arr.face_count(), 3);
        assert!(arr.validate().is_ok());
        // Exterior face touches all 8 edges.
        assert_eq!(arr.faces[arr.exterior_face].boundary_edges.len(), 8);
    }

    #[test]
    fn shared_edge_squares() {
        // Two squares sharing a full edge: 6 vertices, 7 edges, 3 faces.
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 10, 0);
        square(&mut input, 10, 0, 10, 1);
        let arr = build_arrangement(&input);
        assert_eq!(arr.vertex_count(), 6);
        assert_eq!(arr.edge_count(), 7);
        assert_eq!(arr.face_count(), 3);
        assert!(arr.validate().is_ok());
        // The shared edge carries both sources.
        let shared =
            arr.edges.iter().find(|e| e.sources.len() == 2).expect("shared edge has two sources");
        let mut s = shared.sources.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn isolated_points_and_segment() {
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 10, 0);
        input.add_point(p(5, 5), 1); // inside the square
        input.add_point(p(50, 50), 2); // outside
        input.add_point(p(5, 0), 3); // on the square boundary: splits an edge
        let arr = build_arrangement(&input);
        assert!(arr.validate().is_ok());
        assert_eq!(arr.vertex_count(), 4 + 2 + 1);
        assert_eq!(arr.edge_count(), 5);
        // Two isolated vertices, one in the bounded face and one outside.
        assert_eq!(arr.isolated.len(), 2);
        let inside_vertex = arr.point_vertices[0];
        let outside_vertex = arr.point_vertices[1];
        let inside_face = arr.isolated_face(inside_vertex).unwrap();
        let outside_face = arr.isolated_face(outside_vertex).unwrap();
        assert!(arr.faces[inside_face].bounded);
        assert_eq!(outside_face, arr.exterior_face);
        // The on-boundary point became a degree-2 vertex, not an isolated one.
        assert_eq!(arr.degree(arr.point_vertices[2]), 2);
    }

    #[test]
    fn antenna_edge() {
        // A square with a segment dangling into its interior.
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 10, 0);
        input.add_segment(seg(0, 0, 5, 5), 1);
        let arr = build_arrangement(&input);
        assert!(arr.validate().is_ok());
        assert_eq!(arr.face_count(), 2);
        let antenna = arr.edges.iter().find(|e| e.sources == vec![1]).unwrap();
        // Both sides of the antenna edge are the same bounded face.
        assert_eq!(antenna.face_left, antenna.face_right);
        assert!(arr.faces[antenna.face_left].bounded);
    }

    #[test]
    fn deep_nesting_three_levels() {
        let mut input = ArrangementInput::new();
        square(&mut input, 0, 0, 100, 0);
        square(&mut input, 10, 10, 60, 1);
        square(&mut input, 20, 20, 20, 2);
        let arr = build_arrangement(&input);
        assert_eq!(arr.face_count(), 4);
        assert!(arr.validate().is_ok());
        // The middle ring face's boundary must touch both the outer square of
        // level 2 and the inner square of level 3.
        let ring_face = arr
            .faces
            .iter()
            .find(|f| f.bounded && f.boundary_edges.len() == 8 && f.boundary_vertices.len() == 8)
            .map(|f| f.boundary_edges.clone());
        assert!(ring_face.is_some());
    }

    #[test]
    fn overlapping_collinear_segments() {
        let mut input = ArrangementInput::new();
        input.add_segment(seg(0, 0, 10, 0), 0);
        input.add_segment(seg(4, 0, 14, 0), 1);
        let arr = build_arrangement(&input);
        assert!(arr.validate().is_ok());
        assert_eq!(arr.vertex_count(), 4);
        assert_eq!(arr.edge_count(), 3);
        let shared = arr.edges.iter().find(|e| e.sources.len() == 2).unwrap();
        assert_eq!(
            arr.vertices[shared.v1].x.min(arr.vertices[shared.v2].x),
            topo_geometry::Rational::from_int(4)
        );
    }

    #[test]
    fn rotation_order_is_counterclockwise() {
        // A plus sign centred at the origin.
        let mut input = ArrangementInput::new();
        input.add_segment(seg(-10, 0, 10, 0), 0);
        input.add_segment(seg(0, -10, 0, 10), 0);
        let arr = build_arrangement(&input);
        let center = arr.vertices.iter().position(|q| *q == p(0, 0)).unwrap();
        assert_eq!(arr.degree(center), 4);
        // Directions of the four incident edges in rotation order must be a
        // cyclic shift of +x, +y, -x, -y.
        let dirs: Vec<(i32, i32)> = arr
            .incident_edges(center)
            .iter()
            .map(|&e| {
                let other = arr.edges[e].other_endpoint(center);
                let (dx, dy) = arr.vertices[other].sub(&arr.vertices[center]);
                (dx.signum(), dy.signum())
            })
            .collect();
        let expected = [(1, 0), (0, 1), (-1, 0), (0, -1)];
        let start = expected.iter().position(|d| *d == dirs[0]).unwrap();
        for i in 0..4 {
            assert_eq!(dirs[i], expected[(start + i) % 4]);
        }
    }
}
