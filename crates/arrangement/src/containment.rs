//! Exact point-in-cycle tests used to nest connected components into faces.
//!
//! A *cycle* here is the closed walk of directed half-edges bounding a face
//! (traced by the builder). Containment is decided with the classical
//! even–odd ray-crossing rule, made exact by rational arithmetic and made
//! degeneracy-free by the half-open convention on edge endpoints. Callers
//! guarantee that the query point never lies on the tested cycle (the point
//! belongs to a different connected component of the arrangement, and
//! distinct components are disjoint point sets).

use topo_geometry::{point_on_segment, BoxLattice, Point, Rational};

/// A face-boundary cycle given by its sequence of directed edges
/// (`from` -> `to` coordinates).
#[derive(Clone, Debug)]
pub(crate) struct CycleGeometry {
    /// Directed edges of the cycle, in traversal order.
    pub directed: Vec<(Point, Point)>,
    /// Conservative bounding box, in `f64`, used only to prune tests.
    pub bbox: (f64, f64, f64, f64),
}

impl CycleGeometry {
    pub(crate) fn new(directed: Vec<(Point, Point)>) -> Self {
        let mut bbox = (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (a, b) in &directed {
            for p in [a, b] {
                let (x, y) = p.to_f64();
                bbox.0 = bbox.0.min(x);
                bbox.1 = bbox.1.min(y);
                bbox.2 = bbox.2.max(x);
                bbox.3 = bbox.3.max(y);
            }
        }
        CycleGeometry { directed, bbox }
    }

    /// Safety margin compensating for `f64` rounding of rational coordinates:
    /// widening a box by this much makes the float box test conservative.
    fn bbox_eps(&self) -> f64 {
        1e-6 * (1.0 + self.bbox.2.abs().max(self.bbox.3.abs()))
    }

    /// The cycle's bounding box widened by [`CycleGeometry::bbox_eps`]; a
    /// point outside this box is certainly not enclosed by the cycle.
    fn widened_bbox(&self) -> (f64, f64, f64, f64) {
        let eps = self.bbox_eps();
        (self.bbox.0 - eps, self.bbox.1 - eps, self.bbox.2 + eps, self.bbox.3 + eps)
    }

    /// Quick conservative rejection: true if the point may lie inside.
    fn bbox_may_contain(&self, p: &Point) -> bool {
        let (x, y) = p.to_f64();
        let (x0, y0, x1, y1) = self.widened_bbox();
        x >= x0 && x <= x1 && y >= y0 && y <= y1
    }

    /// Even–odd containment of `p` in the region enclosed by the cycle.
    ///
    /// The caller must guarantee that `p` does not lie on the cycle itself.
    pub(crate) fn contains(&self, p: &Point) -> bool {
        if !self.bbox_may_contain(p) {
            return false;
        }
        let mut crossings = 0usize;
        for (u, w) in &self.directed {
            // Half-open rule: the edge is crossed by the rightward horizontal
            // ray from p iff exactly one endpoint is strictly above the ray
            // (treating an endpoint at exactly p.y as "below").
            let u_above = u.y > p.y;
            let w_above = w.y > p.y;
            if u_above == w_above {
                continue;
            }
            // Crossing x coordinate of the supporting line at height p.y.
            let t = (p.y - u.y) / (w.y - u.y);
            let x_cross = u.x + (w.x - u.x) * t;
            if x_cross > p.x {
                crossings += 1;
            }
        }
        crossings % 2 == 1
    }

    /// True iff `p` lies on the cycle (on one of its edges or vertices).
    pub(crate) fn on_boundary(&self, p: &Point) -> bool {
        self.directed
            .iter()
            .any(|(u, w)| *u == *p || *w == *p || (u != w && point_on_segment(p, u, w)))
    }

    /// A point of this cycle that does not lie on `other`'s boundary, if any.
    /// Candidates are the cycle's vertices and edge midpoints.
    pub(crate) fn witness_off(&self, other: &CycleGeometry) -> Option<Point> {
        for (u, w) in &self.directed {
            if !other.on_boundary(u) {
                return Some(*u);
            }
            if u != w {
                let mid = u.midpoint(w);
                if !other.on_boundary(&mid) {
                    return Some(mid);
                }
            }
        }
        None
    }
}

/// A pruning index over the (widened) `f64` bounding boxes of a set of
/// cycles, backed by the shared flat-CSR [`BoxLattice`].
///
/// Nesting a component or an isolated vertex into a face requires exact
/// point-in-cycle tests against every candidate container. Scanning all
/// positive cycles per probe is `O(components × cycles)`; this index narrows
/// each probe to the cycles whose bounding box can actually contain the probe
/// point, so exact tests only run against genuine candidates. Purely a
/// pruning structure: registration uses each cycle's conservatively widened
/// box, so no true container is ever missed, and callers re-check every
/// candidate exactly.
pub(crate) struct CycleIndex {
    lattice: BoxLattice,
}

impl CycleIndex {
    /// Builds the index over the given cycles (indices into the slice are
    /// what queries report).
    pub(crate) fn build(cycles: &[CycleGeometry]) -> Self {
        let boxes: Vec<(f64, f64, f64, f64)> = cycles.iter().map(|c| c.widened_bbox()).collect();
        // Outer contours span the whole map and register everywhere, so the
        // lattice stays coarse (at most 512 cells per side).
        CycleIndex { lattice: BoxLattice::build(&boxes, 512) }
    }

    /// Fills `out` with the indices of every cycle whose widened bounding box
    /// may contain `p` (a superset of the cycles actually enclosing `p`:
    /// each cycle is registered in every cell its widened box overlaps, and
    /// out-of-lattice probes clamp to the border cell, which cannot lose a
    /// container because a point outside the global bounds is outside every
    /// cycle).
    pub(crate) fn candidates_into(&self, p: &Point, out: &mut Vec<usize>) {
        out.clear();
        let (x, y) = p.to_f64();
        out.extend(self.lattice.point_bucket(x, y).iter().map(|&i| i as usize));
    }
}

/// Among the cycles in `containers` (all of which even-odd contain the probe
/// point and are therefore totally ordered by region nesting), returns the
/// index of the innermost one.
pub(crate) fn innermost(containers: &[usize], cycles: &[CycleGeometry]) -> usize {
    debug_assert!(!containers.is_empty());
    let mut best = containers[0];
    for &c in &containers[1..] {
        if cycle_nested_in(&cycles[c], &cycles[best]) {
            best = c;
        }
    }
    best
}

/// True iff the region enclosed by `a` is nested inside the region enclosed by
/// `b` (the two regions are known to be comparable).
fn cycle_nested_in(a: &CycleGeometry, b: &CycleGeometry) -> bool {
    if let Some(p) = a.witness_off(b) {
        return b.contains(&p);
    }
    if let Some(p) = b.witness_off(a) {
        return !a.contains(&p);
    }
    // Identical boundaries cannot happen for two distinct face cycles that
    // both contain a common probe point; treat as "not nested" defensively.
    false
}

/// Convenience: exact horizontal-crossing parameter used by tests.
#[allow(dead_code)]
pub(crate) fn crossing_x(u: &Point, w: &Point, y: Rational) -> Rational {
    let t = (y - u.y) / (w.y - u.y);
    u.x + (w.x - u.x) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    fn square_cycle(x0: i64, y0: i64, size: i64) -> CycleGeometry {
        let a = p(x0, y0);
        let b = p(x0 + size, y0);
        let c = p(x0 + size, y0 + size);
        let d = p(x0, y0 + size);
        CycleGeometry::new(vec![(a, b), (b, c), (c, d), (d, a)])
    }

    #[test]
    fn contains_basic() {
        let sq = square_cycle(0, 0, 10);
        assert!(sq.contains(&p(5, 5)));
        assert!(!sq.contains(&p(15, 5)));
        assert!(!sq.contains(&p(-1, -1)));
    }

    #[test]
    fn antenna_edges_cancel() {
        // A square with an antenna edge traversed twice: parity unchanged.
        let a = p(0, 0);
        let b = p(10, 0);
        let c = p(10, 10);
        let d = p(0, 10);
        let tip = p(5, 5);
        let centerish = p(5, 0);
        let cycle = CycleGeometry::new(vec![
            (a, centerish),
            (centerish, tip),
            (tip, centerish),
            (centerish, b),
            (b, c),
            (c, d),
            (d, a),
        ]);
        assert!(cycle.contains(&p(2, 2)));
        assert!(cycle.contains(&p(8, 8)));
        assert!(!cycle.contains(&p(12, 2)));
    }

    #[test]
    fn nesting() {
        let outer = square_cycle(0, 0, 100);
        let inner = square_cycle(10, 10, 10);
        let cycles = vec![outer, inner];
        assert_eq!(innermost(&[0, 1], &cycles), 1);
        assert_eq!(innermost(&[1, 0], &cycles), 1);
        assert_eq!(innermost(&[0], &cycles), 0);
    }

    #[test]
    fn on_boundary_detection() {
        let sq = square_cycle(0, 0, 10);
        assert!(sq.on_boundary(&p(5, 0)));
        assert!(sq.on_boundary(&p(0, 0)));
        assert!(!sq.on_boundary(&p(5, 5)));
    }

    #[test]
    fn crossing_x_exact() {
        let x = crossing_x(&p(0, 0), &p(10, 10), Rational::from_int(5));
        assert_eq!(x, Rational::from_int(5));
    }

    #[test]
    fn cycle_index_candidates_are_a_superset_of_containers() {
        // A field of small squares plus one map-spanning outer square.
        let mut cycles = Vec::new();
        for i in 0..8i64 {
            for j in 0..8i64 {
                cycles.push(square_cycle(i * 100, j * 100, 60));
            }
        }
        cycles.push(square_cycle(-10, -10, 900));
        let index = CycleIndex::build(&cycles);
        let mut candidates = Vec::new();
        for probe in [p(30, 30), p(130, 430), p(770, 50), p(-5, -5), p(2000, 2000)] {
            index.candidates_into(&probe, &mut candidates);
            for (k, cycle) in cycles.iter().enumerate() {
                if cycle.contains(&probe) {
                    assert!(
                        candidates.contains(&k),
                        "index missed container {k} for probe {probe:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_index_empty() {
        let index = CycleIndex::build(&[]);
        let mut candidates = vec![7usize];
        index.candidates_into(&p(0, 0), &mut candidates);
        assert!(candidates.is_empty());
    }
}
