//! Planar arrangements of straight-line segments and isolated points.
//!
//! Given a set of labelled input segments and points, this crate computes the
//! induced planar subdivision: the set of arrangement **vertices** (input
//! endpoints, isolated points and pairwise intersection points), **edges**
//! (maximal straight sub-segments whose interiors meet no vertex), and
//! **faces** (connected components of the plane minus the segments), together
//! with
//!
//! * the *rotation system* — the counterclockwise cyclic order of edges around
//!   every vertex (the raw material of the invariant's `Orientation`
//!   relation),
//! * the two faces incident to each edge,
//! * the boundary cycles of every face, including the outer contours of
//!   connected components nested inside the face and isolated vertices, and
//! * for every edge the multiset of input sources that cover it (used by the
//!   invariant construction to classify cells against regions).
//!
//! All topological decisions are made with the exact predicates of
//! [`topo_geometry`]; floating point is used only inside the candidate-pair
//! grid, which is conservative.
//!
//! This subdivision is the *maximal topological cell decomposition* from
//! which Theorem 2.1's invariant `top(I)` is assembled by `topo-invariant`.
//! It is the semi-linear stand-in for the algebraic cell-complex algorithms
//! of Kozen–Yap / Ben-Or–Kozen–Reif that the paper relies on (see DESIGN.md,
//! "Substitutions").

mod build;
mod containment;
#[cfg(feature = "naive-reference")]
pub mod naive;

pub use build::{build_arrangement, build_arrangement_from_splits, compute_split_points};
#[cfg(feature = "naive-reference")]
pub use naive::build_arrangement_naive;

use topo_geometry::Point;

/// Index of an arrangement vertex.
pub type VertexId = usize;
/// Index of an arrangement edge.
pub type EdgeId = usize;
/// Index of an arrangement face.
pub type FaceId = usize;

/// Labelled input to the arrangement builder.
///
/// `source` tags are opaque to this crate; the invariant construction uses
/// them to remember which region contributed which piece of geometry.
#[derive(Clone, Debug, Default)]
pub struct ArrangementInput {
    /// Straight segments, each with a caller-defined source tag.
    pub segments: Vec<(topo_geometry::Segment, u32)>,
    /// Isolated points, each with a caller-defined source tag.
    pub points: Vec<(Point, u32)>,
}

impl ArrangementInput {
    /// Creates an empty input.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment with a source tag.
    pub fn add_segment(&mut self, segment: topo_geometry::Segment, source: u32) {
        self.segments.push((segment, source));
    }

    /// Adds an isolated point with a source tag.
    pub fn add_point(&mut self, point: Point, source: u32) {
        self.points.push((point, source));
    }
}

/// An undirected arrangement edge: a maximal open sub-segment containing no
/// vertex.
#[derive(Clone, Debug)]
pub struct ArrEdge {
    /// First endpoint.
    pub v1: VertexId,
    /// Second endpoint.
    pub v2: VertexId,
    /// Source tags of all input segments covering this edge, with
    /// multiplicity.
    pub sources: Vec<u32>,
    /// Face to the left when walking from `v1` to `v2`.
    pub face_left: FaceId,
    /// Face to the right when walking from `v1` to `v2`.
    pub face_right: FaceId,
}

impl ArrEdge {
    /// The endpoint other than `v`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of the edge.
    pub fn other_endpoint(&self, v: VertexId) -> VertexId {
        if v == self.v1 {
            self.v2
        } else {
            assert_eq!(v, self.v2, "vertex is not an endpoint of this edge");
            self.v1
        }
    }

    /// The two faces incident to the edge (possibly equal for antenna edges).
    pub fn incident_faces(&self) -> (FaceId, FaceId) {
        (self.face_left, self.face_right)
    }
}

/// A face of the arrangement.
#[derive(Clone, Debug, Default)]
pub struct ArrFace {
    /// True for every face except the unbounded exterior face.
    pub bounded: bool,
    /// All edges on the topological boundary of the face, including edges of
    /// connected components nested inside it.
    pub boundary_edges: Vec<EdgeId>,
    /// All vertices on the topological boundary of the face, including
    /// isolated vertices lying inside it.
    pub boundary_vertices: Vec<VertexId>,
}

/// A planar subdivision induced by the input segments and points.
#[derive(Clone, Debug)]
pub struct Arrangement {
    /// Coordinates of every arrangement vertex.
    pub vertices: Vec<Point>,
    /// Arrangement edges.
    pub edges: Vec<ArrEdge>,
    /// Arrangement faces. `faces[exterior_face]` is the unbounded face.
    pub faces: Vec<ArrFace>,
    /// Index of the unbounded face.
    pub exterior_face: FaceId,
    /// For every vertex, the incident edges in counterclockwise angular order
    /// of the outgoing direction. Empty for isolated vertices.
    pub rotations: Vec<Vec<EdgeId>>,
    /// For every isolated (degree-zero) vertex, the face containing it.
    pub isolated: Vec<(VertexId, FaceId)>,
    /// For every input point (in input order), the vertex it maps to.
    pub point_vertices: Vec<VertexId>,
}

impl Arrangement {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of faces (including the exterior face).
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Total number of cells (vertices + edges + faces).
    pub fn cell_count(&self) -> usize {
        self.vertex_count() + self.edge_count() + self.face_count()
    }

    /// Degree of a vertex (number of incident edges).
    pub fn degree(&self, v: VertexId) -> usize {
        self.rotations[v].len()
    }

    /// The edges incident to `v` in counterclockwise order.
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.rotations[v]
    }

    /// The face containing an isolated vertex, if the vertex is isolated.
    pub fn isolated_face(&self, v: VertexId) -> Option<FaceId> {
        self.isolated.iter().find(|(u, _)| *u == v).map(|(_, f)| *f)
    }

    /// Checks internal consistency; used by tests and debug assertions.
    ///
    /// Verified properties:
    /// * every edge endpoint is a valid vertex and appears in its rotation,
    /// * every edge's incident faces are valid,
    /// * Euler's formula `V - E + F = 1 + C` holds, where `C` is the number of
    ///   connected components of the vertex/edge graph (isolated vertices
    ///   count as components),
    /// * every bounded face has a non-empty boundary.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.v1 >= self.vertices.len() || e.v2 >= self.vertices.len() {
                return Err(format!("edge {i} has out-of-range endpoint"));
            }
            if e.face_left >= self.faces.len() || e.face_right >= self.faces.len() {
                return Err(format!("edge {i} has out-of-range face"));
            }
            if !self.rotations[e.v1].contains(&i) || !self.rotations[e.v2].contains(&i) {
                return Err(format!("edge {i} missing from endpoint rotation"));
            }
        }
        // Count connected components of the 1-skeleton.
        let n = self.vertices.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            let (a, b) = (find(&mut parent, e.v1), find(&mut parent, e.v2));
            if a != b {
                parent[a] = b;
            }
        }
        let mut roots = std::collections::HashSet::new();
        for v in 0..n {
            roots.insert(find(&mut parent, v));
        }
        let components = roots.len().max(1);
        let euler = self.vertices.len() as i64 - self.edges.len() as i64 + self.faces.len() as i64;
        if n > 0 && euler != 1 + components as i64 {
            return Err(format!(
                "Euler formula violated: V-E+F = {euler}, expected {}",
                1 + components
            ));
        }
        for (i, f) in self.faces.iter().enumerate() {
            if f.bounded && f.boundary_edges.is_empty() {
                return Err(format!("bounded face {i} has empty boundary"));
            }
        }
        Ok(())
    }
}
