//! Frozen pre-optimisation reference implementation of the arrangement
//! builder, compiled only with the `naive-reference` feature.
//!
//! This module is a faithful copy of the builder as it stood before the
//! allocation-lean overhaul: a hash-map-of-buckets segment grid with
//! hash-set deduplication, split points re-sorted with a fresh exact
//! `distance_sq` per comparison, a `(vertex, edge) -> position` hash map in
//! the cycle tracer, hash-set face-boundary accumulation, and
//! `O(components × cycles)` nesting scans. [`build_arrangement_naive`] also
//! holds a [`topo_geometry::slow_mode`] guard for its whole run, so
//! `Rational` arithmetic takes the seed (always-canonicalising,
//! always-256-bit-comparison) code paths as well.
//!
//! It exists for two consumers and must not be used elsewhere:
//!
//! * the perf harness (`topo-bench`'s `bench_runner`), which measures the
//!   optimised pipeline against this reference and records the speedup in
//!   `BENCH_2.json`;
//! * the equivalence tests (`tests/perf_equivalence.rs`), which prove the
//!   optimised pipeline produces identical arrangements and canonical codes.

// Frozen seed code: silence style lints instead of editing the reference.
#![allow(clippy::needless_range_loop, clippy::type_complexity, clippy::unnecessary_sort_by)]
//!
//! Keep it frozen: when the optimised builder changes behaviour, the
//! equivalence tests comparing the two are the alarm that should ring.

use crate::containment::{innermost, CycleGeometry};
use crate::{ArrEdge, ArrFace, Arrangement, ArrangementInput, EdgeId, FaceId, VertexId};
use std::collections::{HashMap, HashSet};
use topo_geometry::{pseudo_angle_cmp, BBox, DirectionVector, Point, Segment, SegmentIntersection};

/// Builds the planar arrangement with the pre-optimisation reference code
/// path, including seed-style `Rational` arithmetic (see module docs).
///
/// Observationally identical to [`crate::build_arrangement`]; only the cost
/// profile differs.
pub fn build_arrangement_naive(input: &ArrangementInput) -> Arrangement {
    let _slow = topo_geometry::slow_mode::SlowGuard::new();
    NaiveBuilder::new(input).run()
}

/// The seed's uniform grid: hash map of cell buckets, hash-set dedup.
struct NaiveGrid {
    cell_size: f64,
    min_x: f64,
    min_y: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    boxes: Vec<BBox>,
}

impl NaiveGrid {
    fn build(segments: &[Segment]) -> Self {
        let boxes: Vec<BBox> = segments.iter().map(|s| s.bbox()).collect();
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut total_extent = 0.0f64;
        for b in &boxes {
            let (x0, y0, x1, y1) = b.to_f64();
            min_x = min_x.min(x0);
            min_y = min_y.min(y0);
            max_x = max_x.max(x1);
            max_y = max_y.max(y1);
            total_extent += (x1 - x0).max(y1 - y0);
        }
        if boxes.is_empty() {
            return NaiveGrid {
                cell_size: 1.0,
                min_x: 0.0,
                min_y: 0.0,
                cells: HashMap::new(),
                boxes,
            };
        }
        let avg_extent = (total_extent / boxes.len() as f64).max(1e-9);
        let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
        let cell_size = avg_extent.max(span / 2048.0);
        let mut grid = NaiveGrid { cell_size, min_x, min_y, cells: HashMap::new(), boxes };
        for i in 0..segments.len() {
            let (cx0, cy0, cx1, cy1) = grid.cell_range(&grid.boxes[i]);
            for cx in cx0..=cx1 {
                for cy in cy0..=cy1 {
                    grid.cells.entry((cx, cy)).or_default().push(i);
                }
            }
        }
        grid
    }

    fn cell_range(&self, b: &BBox) -> (i64, i64, i64, i64) {
        let (x0, y0, x1, y1) = b.to_f64();
        (
            ((x0 - self.min_x) / self.cell_size).floor() as i64,
            ((y0 - self.min_y) / self.cell_size).floor() as i64,
            ((x1 - self.min_x) / self.cell_size).floor() as i64,
            ((y1 - self.min_y) / self.cell_size).floor() as i64,
        )
    }

    fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut seen = HashSet::new();
        for bucket in self.cells.values() {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    let key = if i < j { (i, j) } else { (j, i) };
                    if seen.insert(key) && self.boxes[key.0].intersects(&self.boxes[key.1]) {
                        pairs.push(key);
                    }
                }
            }
        }
        pairs
    }

    fn query_box(&self, query: &BBox) -> Vec<usize> {
        if self.boxes.is_empty() {
            return Vec::new();
        }
        let (cx0, cy0, cx1, cy1) = self.cell_range(query);
        let mut out = HashSet::new();
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &i in bucket {
                        if self.boxes[i].intersects(query) {
                            out.insert(i);
                        }
                    }
                }
            }
        }
        let mut v: Vec<usize> = out.into_iter().collect();
        v.sort_unstable();
        v
    }
}

struct NaiveBuilder<'a> {
    input: &'a ArrangementInput,
    vertex_ids: HashMap<Point, VertexId>,
    vertices: Vec<Point>,
}

impl<'a> NaiveBuilder<'a> {
    fn new(input: &'a ArrangementInput) -> Self {
        NaiveBuilder { input, vertex_ids: HashMap::new(), vertices: Vec::new() }
    }

    fn intern(&mut self, p: Point) -> VertexId {
        if let Some(&id) = self.vertex_ids.get(&p) {
            return id;
        }
        let id = self.vertices.len();
        self.vertices.push(p);
        self.vertex_ids.insert(p, id);
        id
    }

    fn run(mut self) -> Arrangement {
        let splits = self.compute_splits();
        let (edges, point_vertices) = self.build_edges(splits);
        let rotations = self.build_rotations(&edges);
        let (cycle_of, cycle_count) = self.trace_cycles(&edges, &rotations);
        let assembled =
            self.assemble_faces(edges, rotations, point_vertices, &cycle_of, cycle_count);
        debug_assert!(assembled.validate().is_ok(), "{:?}", assembled.validate());
        assembled
    }

    fn compute_splits(&mut self) -> Vec<Vec<Point>> {
        let segments: Vec<Segment> = self.input.segments.iter().map(|(s, _)| *s).collect();
        let mut splits: Vec<Vec<Point>> = segments.iter().map(|s| vec![s.a, s.b]).collect();
        if !segments.is_empty() {
            let grid = NaiveGrid::build(&segments);
            for (i, j) in grid.candidate_pairs() {
                match segments[i].intersect(&segments[j]) {
                    SegmentIntersection::None => {}
                    SegmentIntersection::Point(p) => {
                        splits[i].push(p);
                        splits[j].push(p);
                    }
                    SegmentIntersection::Overlap(p, q) => {
                        splits[i].push(p);
                        splits[i].push(q);
                        splits[j].push(p);
                        splits[j].push(q);
                    }
                }
            }
            for (p, _) in &self.input.points {
                let query = BBox::from_points(&[*p]);
                for idx in grid.query_box(&query) {
                    if segments[idx].contains_point(p) {
                        splits[idx].push(*p);
                    }
                }
            }
        }
        splits
    }

    fn build_edges(
        &mut self,
        splits: Vec<Vec<Point>>,
    ) -> (Vec<(VertexId, VertexId, Vec<u32>)>, Vec<VertexId>) {
        let mut edge_ids: HashMap<(VertexId, VertexId), EdgeId> = HashMap::new();
        let mut edges: Vec<(VertexId, VertexId, Vec<u32>)> = Vec::new();
        for ((segment, source), mut points) in self.input.segments.iter().zip(splits) {
            // Seed behaviour: the exact key is recomputed in every comparison.
            points.sort_by(|p, q| segment.a.distance_sq(p).cmp(&segment.a.distance_sq(q)));
            points.dedup();
            for pair in points.windows(2) {
                let u = self.intern(pair[0]);
                let w = self.intern(pair[1]);
                debug_assert_ne!(u, w);
                let key = (u.min(w), u.max(w));
                let edge = *edge_ids.entry(key).or_insert_with(|| {
                    edges.push((key.0, key.1, Vec::new()));
                    edges.len() - 1
                });
                edges[edge].2.push(*source);
            }
        }
        let point_vertices: Vec<VertexId> =
            self.input.points.iter().map(|(p, _)| self.intern(*p)).collect();
        (edges, point_vertices)
    }

    fn build_rotations(&self, edges: &[(VertexId, VertexId, Vec<u32>)]) -> Vec<Vec<EdgeId>> {
        let mut rotations: Vec<Vec<EdgeId>> = vec![Vec::new(); self.vertices.len()];
        for (e, (v1, v2, _)) in edges.iter().enumerate() {
            rotations[*v1].push(e);
            rotations[*v2].push(e);
        }
        for (v, rot) in rotations.iter_mut().enumerate() {
            let origin = self.vertices[v];
            rot.sort_by(|&e1, &e2| {
                let d1 = self.outgoing_direction(edges, e1, v, origin);
                let d2 = self.outgoing_direction(edges, e2, v, origin);
                pseudo_angle_cmp(&d1, &d2)
            });
        }
        rotations
    }

    fn outgoing_direction(
        &self,
        edges: &[(VertexId, VertexId, Vec<u32>)],
        e: EdgeId,
        v: VertexId,
        origin: Point,
    ) -> DirectionVector {
        let (v1, v2, _) = &edges[e];
        let other = if *v1 == v { *v2 } else { *v1 };
        DirectionVector::between(&origin, &self.vertices[other])
    }

    fn trace_cycles(
        &self,
        edges: &[(VertexId, VertexId, Vec<u32>)],
        rotations: &[Vec<EdgeId>],
    ) -> (Vec<usize>, usize) {
        let half_count = edges.len() * 2;
        let origin = |h: usize| -> VertexId {
            let (v1, v2, _) = &edges[h / 2];
            if h % 2 == 0 {
                *v1
            } else {
                *v2
            }
        };
        // Seed behaviour: rotation positions live in a hash map keyed on
        // (vertex, edge).
        let mut rot_pos: HashMap<(VertexId, EdgeId), usize> = HashMap::new();
        for (v, rot) in rotations.iter().enumerate() {
            for (idx, &e) in rot.iter().enumerate() {
                rot_pos.insert((v, e), idx);
            }
        }
        let mut next = vec![usize::MAX; half_count];
        for h in 0..half_count {
            let twin = h ^ 1;
            let v = origin(twin);
            let rot = &rotations[v];
            let pos = rot_pos[&(v, h / 2)];
            let prev_edge = rot[(pos + rot.len() - 1) % rot.len()];
            let (v1, _, _) = &edges[prev_edge];
            let out_half = if *v1 == v { prev_edge * 2 } else { prev_edge * 2 + 1 };
            next[h] = out_half;
        }
        let mut cycle_of = vec![usize::MAX; half_count];
        let mut cycle_count = 0usize;
        for start in 0..half_count {
            if cycle_of[start] != usize::MAX {
                continue;
            }
            let mut h = start;
            loop {
                cycle_of[h] = cycle_count;
                h = next[h];
                if h == start {
                    break;
                }
            }
            cycle_count += 1;
        }
        (cycle_of, cycle_count)
    }

    fn assemble_faces(
        &mut self,
        edges: Vec<(VertexId, VertexId, Vec<u32>)>,
        rotations: Vec<Vec<EdgeId>>,
        point_vertices: Vec<VertexId>,
        cycle_of: &[usize],
        cycle_count: usize,
    ) -> Arrangement {
        let n = self.vertices.len();
        let origin = |h: usize| -> VertexId {
            let (v1, v2, _) = &edges[h / 2];
            if h % 2 == 0 {
                *v1
            } else {
                *v2
            }
        };

        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let nxt = parent[cur];
                parent[cur] = root;
                cur = nxt;
            }
            root
        }
        for (v1, v2, _) in &edges {
            let (a, b) = (find(&mut parent, *v1), find(&mut parent, *v2));
            if a != b {
                parent[a] = b;
            }
        }
        let mut comp_index: HashMap<usize, usize> = HashMap::new();
        let mut comp_min_vertex: Vec<VertexId> = Vec::new();
        for v in 0..n {
            if rotations[v].is_empty() {
                continue;
            }
            let root = find(&mut parent, v);
            let idx = *comp_index.entry(root).or_insert_with(|| {
                comp_min_vertex.push(v);
                comp_min_vertex.len() - 1
            });
            if self.vertices[v] < self.vertices[comp_min_vertex[idx]] {
                comp_min_vertex[idx] = v;
            }
        }
        let comp_of_vertex = |builder_parent: &mut [usize],
                              v: VertexId,
                              comp_index: &HashMap<usize, usize>|
         -> usize { comp_index[&find(builder_parent, v)] };

        let comp_count = comp_min_vertex.len();
        let mut outer_cycle_of_comp: Vec<usize> = vec![usize::MAX; comp_count];
        for (c, &v) in comp_min_vertex.iter().enumerate() {
            let rot = &rotations[v];
            debug_assert!(!rot.is_empty());
            let mut best: Option<(bool, DirectionVector, EdgeId)> = None;
            for &e in rot {
                let d = self.outgoing_direction(&edges, e, v, self.vertices[v]);
                let upper_half = d.dy.signum() > 0 || (d.dy.is_zero() && d.dx.signum() > 0);
                let better = match &best {
                    None => true,
                    Some((best_upper, best_dir, _)) => {
                        if upper_half != *best_upper {
                            upper_half
                        } else {
                            pseudo_angle_cmp(&d, best_dir) == std::cmp::Ordering::Greater
                        }
                    }
                };
                if better {
                    best = Some((upper_half, d, e));
                }
            }
            let (_, _, e) = best.unwrap();
            let (v1, _, _) = &edges[e];
            let out_half = if *v1 == v { e * 2 } else { e * 2 + 1 };
            outer_cycle_of_comp[c] = cycle_of[out_half];
        }
        let outer_cycles: HashSet<usize> = outer_cycle_of_comp.iter().copied().collect();

        let exterior_face: FaceId = 0;
        let mut faces: Vec<ArrFace> = vec![ArrFace { bounded: false, ..Default::default() }];
        let mut face_of_cycle: Vec<Option<FaceId>> = vec![None; cycle_count];
        for cycle in 0..cycle_count {
            if !outer_cycles.contains(&cycle) {
                faces.push(ArrFace { bounded: true, ..Default::default() });
                face_of_cycle[cycle] = Some(faces.len() - 1);
            }
        }

        let mut cycle_geometry: Vec<Option<CycleGeometry>> = vec![None; cycle_count];
        let mut cycle_component: Vec<Option<usize>> = vec![None; cycle_count];
        {
            let mut cycle_halves: Vec<Vec<usize>> = vec![Vec::new(); cycle_count];
            for h in 0..edges.len() * 2 {
                cycle_halves[cycle_of[h]].push(h);
            }
            for (cycle, halves) in cycle_halves.iter().enumerate() {
                if halves.is_empty() {
                    continue;
                }
                cycle_component[cycle] =
                    Some(comp_of_vertex(&mut parent, origin(halves[0]), &comp_index));
                if face_of_cycle[cycle].is_some() {
                    let directed: Vec<(Point, Point)> = halves
                        .iter()
                        .map(|&h| (self.vertices[origin(h)], self.vertices[origin(h ^ 1)]))
                        .collect();
                    cycle_geometry[cycle] = Some(CycleGeometry::new(directed));
                }
            }
        }
        let positive_cycles: Vec<usize> =
            (0..cycle_count).filter(|&c| face_of_cycle[c].is_some()).collect();
        let all_geometry: Vec<CycleGeometry> = positive_cycles
            .iter()
            .map(|&c| cycle_geometry[c].clone().expect("geometry for bounded cycle"))
            .collect();

        // Seed behaviour: every nesting probe scans every positive cycle.
        let mut parent_face_of_comp: Vec<FaceId> = vec![exterior_face; comp_count];
        for (c, &min_v) in comp_min_vertex.iter().enumerate() {
            let probe = self.vertices[min_v];
            let containers: Vec<usize> = (0..positive_cycles.len())
                .filter(|&k| {
                    cycle_component[positive_cycles[k]] != Some(c)
                        && all_geometry[k].contains(&probe)
                })
                .collect();
            if !containers.is_empty() {
                let inner = innermost(&containers, &all_geometry);
                parent_face_of_comp[c] = face_of_cycle[positive_cycles[inner]].unwrap();
            }
        }
        for cycle in 0..cycle_count {
            if face_of_cycle[cycle].is_none() && cycle_component[cycle].is_some() {
                let comp = cycle_component[cycle].unwrap();
                face_of_cycle[cycle] = Some(parent_face_of_comp[comp]);
            }
        }

        let mut isolated: Vec<(VertexId, FaceId)> = Vec::new();
        for v in 0..n {
            if !rotations[v].is_empty() {
                continue;
            }
            let probe = self.vertices[v];
            let containers: Vec<usize> =
                (0..positive_cycles.len()).filter(|&k| all_geometry[k].contains(&probe)).collect();
            let face = if containers.is_empty() {
                exterior_face
            } else {
                face_of_cycle[positive_cycles[innermost(&containers, &all_geometry)]].unwrap()
            };
            isolated.push((v, face));
        }

        let mut arr_edges: Vec<ArrEdge> = Vec::with_capacity(edges.len());
        for (e, (v1, v2, sources)) in edges.iter().enumerate() {
            let face_left = face_of_cycle[cycle_of[2 * e]].unwrap();
            let face_right = face_of_cycle[cycle_of[2 * e + 1]].unwrap();
            arr_edges.push(ArrEdge {
                v1: *v1,
                v2: *v2,
                sources: sources.clone(),
                face_left,
                face_right,
            });
        }
        let mut face_edge_sets: Vec<HashSet<EdgeId>> = vec![HashSet::new(); faces.len()];
        let mut face_vertex_sets: Vec<HashSet<VertexId>> = vec![HashSet::new(); faces.len()];
        for h in 0..edges.len() * 2 {
            let face = face_of_cycle[cycle_of[h]].unwrap();
            face_edge_sets[face].insert(h / 2);
            face_vertex_sets[face].insert(origin(h));
        }
        for &(v, face) in &isolated {
            face_vertex_sets[face].insert(v);
        }
        for (f, face) in faces.iter_mut().enumerate() {
            let mut es: Vec<EdgeId> = face_edge_sets[f].iter().copied().collect();
            es.sort_unstable();
            let mut vs: Vec<VertexId> = face_vertex_sets[f].iter().copied().collect();
            vs.sort_unstable();
            face.boundary_edges = es;
            face.boundary_vertices = vs;
        }

        Arrangement {
            vertices: std::mem::take(&mut self.vertices),
            edges: arr_edges,
            faces,
            exterior_face,
            rotations,
            isolated,
            point_vertices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_arrangement;
    use topo_geometry::Segment;

    fn p(x: i64, y: i64) -> Point {
        Point::from_ints(x, y)
    }

    /// The naive and optimised builders must produce structurally identical
    /// arrangements (same ids, same incidences, same rotation orders).
    #[test]
    fn naive_and_optimized_builders_agree() {
        let mut input = ArrangementInput::new();
        // Overlapping squares, a crossing diagonal, an antenna, isolated
        // points inside and outside.
        for (x0, y0, size, source) in [(0, 0, 100, 0), (50, 50, 100, 1), (20, 20, 10, 2)] {
            let a = p(x0, y0);
            let b = p(x0 + size, y0);
            let c = p(x0 + size, y0 + size);
            let d = p(x0, y0 + size);
            for (u, w) in [(a, b), (b, c), (c, d), (d, a)] {
                input.add_segment(Segment::new(u, w), source);
            }
        }
        input.add_segment(Segment::new(p(-20, -20), p(80, 130)), 3);
        input.add_point(p(40, 7), 4);
        input.add_point(p(-500, -500), 4);
        let fast = build_arrangement(&input);
        let naive = build_arrangement_naive(&input);
        assert_eq!(fast.vertices, naive.vertices);
        assert_eq!(fast.faces.len(), naive.faces.len());
        assert_eq!(fast.exterior_face, naive.exterior_face);
        assert_eq!(fast.rotations, naive.rotations);
        assert_eq!(fast.isolated, naive.isolated);
        assert_eq!(fast.point_vertices, naive.point_vertices);
        assert_eq!(fast.edges.len(), naive.edges.len());
        for (a, b) in fast.edges.iter().zip(&naive.edges) {
            assert_eq!((a.v1, a.v2, &a.sources), (b.v1, b.v2, &b.sources));
            assert_eq!((a.face_left, a.face_right), (b.face_left, b.face_right));
        }
        for (a, b) in fast.faces.iter().zip(&naive.faces) {
            assert_eq!(a.bounded, b.bounded);
            assert_eq!(a.boundary_edges, b.boundary_edges);
            assert_eq!(a.boundary_vertices, b.boundary_vertices);
        }
    }
}
