//! A library of topological queries, evaluable on both sides of the paper's
//! translation:
//!
//! * **directly on the spatial data** (strategy (i) of the
//!   practical-considerations section) — geometric algorithms and, for the
//!   first-order queries, `FO(P, <x, <y)` sentences evaluated by the
//!   sample-point evaluator of `topo-spatial`;
//! * **on the topological invariant** (strategies (ii)/(iii)) — combinatorial
//!   algorithms on [`TopologicalInvariant`](topo_invariant::TopologicalInvariant) and, for a representative subset,
//!   genuine Datalog¬ / fixpoint(+counting) programs executed by
//!   `topo-relational` on the exported relational structure.
//!
//! The test suites check that every evaluation route gives the same answer on
//! the same instance — which is exactly the content of the paper's claim that
//! topological queries can be answered on the invariant alone.

pub mod invariant_side;
pub mod library;
pub mod programs;
pub mod spatial_side;

pub use invariant_side::{
    component_count, euler_characteristic, evaluate_goal_directed, evaluate_on_classes,
    evaluate_on_invariant, isomorphism_classes,
};
pub use library::TopologicalQuery;
pub use programs::{
    datalog_program, linear_connectivity_program, program_structure, quadratic_connectivity_program,
};
pub use spatial_side::{evaluate_direct, point_formula};
