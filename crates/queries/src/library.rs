//! The query library: Boolean topological properties of spatial instances.

use topo_spatial::RegionId;

/// A Boolean topological query over the regions of a schema.
///
/// Every variant is invariant under plane homeomorphisms, so by Theorem 2.1
/// it can be answered on the topological invariant alone; the first five are
/// first-order (they appear, in one form or another, in the paper's examples),
/// the remaining ones need recursion (fixpoint) or counting. Queries hash
/// cheaply, so they can key memo tables such as `topo-store`'s
/// per-(class, query) cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologicalQuery {
    /// The two regions share at least one point.
    Intersects(RegionId, RegionId),
    /// The two regions share no point.
    Disjoint(RegionId, RegionId),
    /// The second region is contained in the first.
    Contains(RegionId, RegionId),
    /// The two regions are equal as point sets.
    Equal(RegionId, RegionId),
    /// The regions intersect only on their boundaries (the paper's running
    /// example `(-)` in Section 4).
    BoundaryOnlyIntersection(RegionId, RegionId),
    /// The interiors of the two regions share a point.
    InteriorsOverlap(RegionId, RegionId),
    /// The region is a connected point set.
    IsConnected(RegionId),
    /// The region has an even number of connected components (requires
    /// counting on top of fixpoint — the paper's separating example).
    ComponentCountEven(RegionId),
    /// The complement of the region has a bounded connected component ("the
    /// region has a hole").
    HasHole(RegionId),
}

impl TopologicalQuery {
    /// The regions mentioned by the query.
    pub fn regions(&self) -> Vec<RegionId> {
        match *self {
            TopologicalQuery::Intersects(a, b)
            | TopologicalQuery::Disjoint(a, b)
            | TopologicalQuery::Contains(a, b)
            | TopologicalQuery::Equal(a, b)
            | TopologicalQuery::BoundaryOnlyIntersection(a, b)
            | TopologicalQuery::InteriorsOverlap(a, b) => vec![a, b],
            TopologicalQuery::IsConnected(a)
            | TopologicalQuery::ComponentCountEven(a)
            | TopologicalQuery::HasHole(a) => vec![a],
        }
    }

    /// True iff the query is expressible in first-order logic over the
    /// invariant (the others need fixpoint or fixpoint+counting).
    pub fn is_first_order(&self) -> bool {
        !matches!(
            self,
            TopologicalQuery::IsConnected(_)
                | TopologicalQuery::ComponentCountEven(_)
                | TopologicalQuery::HasHole(_)
        )
    }

    /// A human-readable description.
    pub fn describe(&self, schema: &topo_spatial::Schema) -> String {
        let name = |r: RegionId| schema.name(r).to_string();
        match *self {
            TopologicalQuery::Intersects(a, b) => format!("{} intersects {}", name(a), name(b)),
            TopologicalQuery::Disjoint(a, b) => format!("{} is disjoint from {}", name(a), name(b)),
            TopologicalQuery::Contains(a, b) => format!("{} contains {}", name(a), name(b)),
            TopologicalQuery::Equal(a, b) => format!("{} equals {}", name(a), name(b)),
            TopologicalQuery::BoundaryOnlyIntersection(a, b) => {
                format!("{} and {} intersect only on their boundaries", name(a), name(b))
            }
            TopologicalQuery::InteriorsOverlap(a, b) => {
                format!("the interiors of {} and {} overlap", name(a), name(b))
            }
            TopologicalQuery::IsConnected(a) => format!("{} is connected", name(a)),
            TopologicalQuery::ComponentCountEven(a) => {
                format!("{} has an even number of connected components", name(a))
            }
            TopologicalQuery::HasHole(a) => format!("{} has a hole", name(a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_spatial::Schema;

    #[test]
    fn regions_and_classification() {
        let q = TopologicalQuery::BoundaryOnlyIntersection(0, 1);
        assert_eq!(q.regions(), vec![0, 1]);
        assert!(q.is_first_order());
        assert!(!TopologicalQuery::IsConnected(0).is_first_order());
        assert!(!TopologicalQuery::ComponentCountEven(0).is_first_order());
    }

    #[test]
    fn descriptions_use_names() {
        let schema = Schema::from_names(["forest", "lake"]);
        let text = TopologicalQuery::Contains(0, 1).describe(&schema);
        assert_eq!(text, "forest contains lake");
    }
}
