//! Invariant-side logical programs for the query library.
//!
//! These are genuine Datalog¬ / fixpoint(+counting) programs, executed by the
//! `topo-relational` engine on the relational export of the invariant. They
//! are the concrete counterpart of the paper's Section 3: first-order queries
//! need no recursion, connectivity needs fixpoint, and parity of a set of
//! components needs counting on top of fixpoint.
//!
//! The programs run unchanged on the delta-driven engine behind
//! [`Program::run`]: connectivity's recursion is exactly the shape the
//! semi-naive rewrite accelerates (each round joins only the newly reached
//! cells against the adjacency relation; see DESIGN.md, "Datalog engine").
//! Every program carries an explicit goal annotation ([`Program::goal`], the
//! nullary `Answer` atom), so goal-directed evaluation
//! ([`Program::run_goal`], DESIGN.md "Demand-driven evaluation") knows what
//! to demand without relying on naming conventions. Programs expect their
//! input prepared by [`program_structure`]: the invariant export plus the
//! linear successor scaffolding the connectivity walk seeds from.

use crate::library::TopologicalQuery;
use topo_invariant::TopologicalInvariant;
use topo_relational::{Formula, Goal, Literal, Program, Rule, Structure, Term};
use topo_spatial::Schema;

fn region_relation(schema: &Schema, region: usize) -> String {
    format!("Region_{}", schema.name(region))
}

fn v(i: u32) -> Term {
    Term::Var(i)
}

fn pos(relation: &str, terms: Vec<Term>) -> Literal {
    Literal::Pos { relation: relation.to_string(), terms }
}

fn neg(relation: &str, terms: Vec<Term>) -> Literal {
    Literal::Neg { relation: relation.to_string(), terms }
}

/// Rules defining `Adj(x, y)`: two cells are adjacent when one is incident to
/// the other (Edge–Vertex, Face–Edge or Face–Vertex), in either direction.
fn adjacency_rules() -> Vec<Rule> {
    let mut rules = Vec::new();
    for relation in ["EdgeVertex", "FaceEdge", "FaceVertex"] {
        rules.push(Rule::new("Adj", vec![v(0), v(1)], vec![pos(relation, vec![v(0), v(1)])]));
        rules.push(Rule::new("Adj", vec![v(1), v(0)], vec![pos(relation, vec![v(0), v(1)])]));
    }
    rules
}

/// The relational input the query-library programs run on: the invariant
/// export ([`TopologicalInvariant::to_structure`]) plus the linear successor
/// scaffolding (`Zero`/`Succ`/`MaxNum`/`Even`) the connectivity program
/// seeds its component walk from.
///
/// The scaffolding is added here, not inside `to_structure()`, because the
/// export must stay order-free: `Succ` encodes the (arbitrary) cell
/// numbering, and baking it into the export would make isomorphic invariants
/// export non-isomorphic structures.
pub fn program_structure(invariant: &TopologicalInvariant) -> Structure {
    let mut structure = invariant.to_structure();
    structure.add_successor_relations();
    structure
}

/// The Datalog¬ (fixpoint) program answering a query of the library on the
/// exported invariant, when one is provided. Programs are evaluated with
/// stratified semantics (which inflationary fixpoint subsumes), carry their
/// goal atom explicitly (the nullary `Answer`), and expect input prepared by
/// [`program_structure`].
///
/// ```
/// use topo_queries::{datalog_program, program_structure, TopologicalQuery};
/// use topo_relational::Semantics;
/// use topo_spatial::{Region, SpatialInstance};
///
/// // Two nested rectangles: is the outer region connected?
/// let instance = SpatialInstance::from_regions([
///     ("park", Region::rectangle(0, 0, 100, 100)),
///     ("lake", Region::rectangle(30, 30, 70, 70)),
/// ]);
/// let program =
///     datalog_program(&TopologicalQuery::IsConnected(0), instance.schema()).unwrap();
/// let structure = program_structure(&topo_invariant::top(&instance));
/// // Goal-directed evaluation answers the annotated goal atom.
/// assert!(program.run_goal_boolean(&structure, Semantics::Stratified));
/// ```
pub fn datalog_program(query: &TopologicalQuery, schema: &Schema) -> Option<Program> {
    // A region id beyond the schema names no `Region_*` relation in the
    // export; the native algorithms answer such queries (vacuously false
    // region extents), so the datalog route declines instead of fabricating
    // a relation name — `schema.name` would panic.
    if query.regions().into_iter().any(|region| region >= schema.len()) {
        return None;
    }
    let answer = || Goal::nullary("Answer");
    match *query {
        TopologicalQuery::Intersects(a, b) => {
            let (ra, rb) = (region_relation(schema, a), region_relation(schema, b));
            Some(
                Program::new("Answer")
                    .rule(Rule::new(
                        "Answer",
                        vec![],
                        vec![pos(&ra, vec![v(0)]), pos(&rb, vec![v(0)])],
                    ))
                    .with_goal(answer()),
            )
        }
        TopologicalQuery::Disjoint(a, b) => {
            let (ra, rb) = (region_relation(schema, a), region_relation(schema, b));
            Some(
                Program::new("Answer")
                    .rule(Rule::new(
                        "HasCommon",
                        vec![],
                        vec![pos(&ra, vec![v(0)]), pos(&rb, vec![v(0)])],
                    ))
                    .rule(Rule::new("Answer", vec![], vec![neg("HasCommon", vec![])]))
                    .with_goal(answer()),
            )
        }
        TopologicalQuery::Contains(a, b) => {
            let (ra, rb) = (region_relation(schema, a), region_relation(schema, b));
            Some(
                Program::new("Answer")
                    .rule(Rule::new(
                        "HasViolation",
                        vec![],
                        vec![pos(&rb, vec![v(0)]), neg(&ra, vec![v(0)])],
                    ))
                    .rule(Rule::new("Answer", vec![], vec![neg("HasViolation", vec![])]))
                    .with_goal(answer()),
            )
        }
        TopologicalQuery::IsConnected(a) => Some(linear_connectivity_program(schema, a)),
        TopologicalQuery::HasHole(a) => {
            let ra = region_relation(schema, a);
            Some(
                Program::new("Answer")
                    .rule(Rule::new("ReachFace", vec![v(0)], vec![pos("ExteriorFace", vec![v(0)])]))
                    .rule(Rule::new(
                        "ReachFace",
                        vec![v(2)],
                        vec![
                            pos("ReachFace", vec![v(0)]),
                            pos("FaceEdge", vec![v(0), v(1)]),
                            neg(&ra, vec![v(1)]),
                            pos("FaceEdge", vec![v(2), v(1)]),
                        ],
                    ))
                    .rule(Rule::new(
                        "Answer",
                        vec![],
                        vec![
                            pos("Face", vec![v(0)]),
                            neg(&ra, vec![v(0)]),
                            neg("ReachFace", vec![v(0)]),
                        ],
                    ))
                    .with_goal(answer()),
            )
        }
        _ => None,
    }
}

/// Linear-size connectivity: instead of the quadratic all-pairs `Reach`, the
/// program walks the successor order to the *first* cell of the region (its
/// component representative), floods one single-source reachability from it,
/// and asks whether any region cell was missed:
///
/// ```text
/// InR(x)        ← Region_a(x)
/// Probe(z)      ← Zero(z)
/// Probe(y)      ← Probe(x), ¬InR(x), Succ(x, y)
/// Seed(x)       ← Probe(x), InR(x)
/// ReachS(x)     ← Seed(x)
/// ReachS(y)     ← ReachS(x), Adj(x, y), InR(y)
/// Disconnected  ← InR(x), ¬ReachS(x)
/// Answer        ← ¬Disconnected
/// ```
///
/// `Probe` stops at the first region cell (its recursion requires `¬InR`),
/// so `Seed` is a single representative and every derived relation is
/// `O(cells + adjacencies)` — against `O(cells²)` for the all-pairs program
/// ([`quadratic_connectivity_program`]). An empty region derives no
/// `Disconnected` and counts as connected, exactly like the all-pairs
/// program. Needs the `Zero`/`Succ` scaffolding of [`program_structure`].
pub fn linear_connectivity_program(schema: &Schema, region: usize) -> Program {
    let ra = region_relation(schema, region);
    let mut program = Program::new("Answer");
    for rule in adjacency_rules() {
        program.rules.push(rule);
    }
    program
        .rule(Rule::new("InR", vec![v(0)], vec![pos(&ra, vec![v(0)])]))
        .rule(Rule::new("Probe", vec![v(0)], vec![pos("Zero", vec![v(0)])]))
        .rule(Rule::new(
            "Probe",
            vec![v(1)],
            vec![pos("Probe", vec![v(0)]), neg("InR", vec![v(0)]), pos("Succ", vec![v(0), v(1)])],
        ))
        .rule(Rule::new("Seed", vec![v(0)], vec![pos("Probe", vec![v(0)]), pos("InR", vec![v(0)])]))
        .rule(Rule::new("ReachS", vec![v(0)], vec![pos("Seed", vec![v(0)])]))
        .rule(Rule::new(
            "ReachS",
            vec![v(1)],
            vec![pos("ReachS", vec![v(0)]), pos("Adj", vec![v(0), v(1)]), pos("InR", vec![v(1)])],
        ))
        .rule(Rule::new(
            "Disconnected",
            vec![],
            vec![pos("InR", vec![v(0)]), neg("ReachS", vec![v(0)])],
        ))
        .rule(Rule::new("Answer", vec![], vec![neg("Disconnected", vec![])]))
        .with_goal(Goal::nullary("Answer"))
}

/// The all-pairs connectivity program the query library shipped before the
/// linear derivation replaced it: `Reach(x, y)` materialises every pair of
/// mutually reachable region cells, so it is quadratic in the region size.
/// Kept as the measured reference for the bench runner's `demand` stage and
/// as the natural host for bound-goal demonstrations (`Reach(c, y)` under
/// [`Program::run_goal`] derives only the component of `c`). Runs on a bare
/// invariant export; no successor scaffolding needed.
pub fn quadratic_connectivity_program(schema: &Schema, region: usize) -> Program {
    let ra = region_relation(schema, region);
    let mut program = Program::new("Answer");
    for rule in adjacency_rules() {
        program.rules.push(rule);
    }
    program
        .rule(Rule::new("InR", vec![v(0)], vec![pos(&ra, vec![v(0)])]))
        .rule(Rule::new("Reach", vec![v(0), v(0)], vec![pos("InR", vec![v(0)])]))
        .rule(Rule::new(
            "Reach",
            vec![v(0), v(2)],
            vec![
                pos("Reach", vec![v(0), v(1)]),
                pos("Adj", vec![v(1), v(2)]),
                pos("InR", vec![v(2)]),
            ],
        ))
        .rule(Rule::new(
            "Disconnected",
            vec![],
            vec![pos("InR", vec![v(0)]), pos("InR", vec![v(1)]), neg("Reach", vec![v(0), v(1)])],
        ))
        .rule(Rule::new("Answer", vec![], vec![neg("Disconnected", vec![])]))
        .with_goal(Goal::nullary("Answer"))
}

/// A fixpoint+counting program deciding whether a region consisting of
/// pairwise disjoint simple closed curves (for example the `islands` layer of
/// the hydrography workload) has an even number of components. Each component
/// of such a region is a single vertex-free closed curve plus its inside, so
/// counting the closed curves counts the components; the parity test then
/// uses the numeric `Even` relation of the auxiliary ordered domain — this is
/// the paper's separating example between fixpoint and fixpoint+counting.
///
/// ```
/// use topo_queries::programs::even_closed_curves_program;
/// use topo_relational::Semantics;
///
/// let instance = topo_datagen::scattered_islands(4);
/// let mut structure = topo_invariant::top(&instance).to_structure();
/// structure.add_numeric_relations(); // the domain the count lands in
/// let program = even_closed_curves_program(instance.schema(), 0);
/// let result = program.run(&structure, Semantics::Stratified, usize::MAX).unwrap();
/// // 4 islands: the component count is even.
/// assert!(!result.relation("Answer").unwrap().is_empty());
/// ```
pub fn even_closed_curves_program(schema: &Schema, region: usize) -> Program {
    let ra = region_relation(schema, region);
    Program::new("Answer")
        .rule(Rule::new("HasEndpoint", vec![v(0)], vec![pos("EdgeVertex", vec![v(0), v(1)])]))
        .rule(Rule::new(
            "ClosedCurve",
            vec![v(0)],
            vec![pos("Edge", vec![v(0)]), pos(&ra, vec![v(0)]), neg("HasEndpoint", vec![v(0)])],
        ))
        .rule(Rule::new(
            "Answer",
            vec![],
            vec![
                pos("ExteriorFace", vec![v(3)]),
                Literal::Count {
                    relation: "ClosedCurve".into(),
                    terms: vec![v(0)],
                    counted: vec![0],
                    result: v(1),
                },
                pos("Even", vec![v(1)]),
            ],
        ))
        .with_goal(Goal::nullary("Answer"))
}

/// The paper's Section 4 example `(**)`: the first-order sentence over the
/// invariant expressing "regions P and Q intersect only on their boundaries"
/// for two-dimensional regions — every common cell is a vertex or an edge.
///
/// ```
/// use topo_queries::programs::boundary_only_fo_sentence;
/// use topo_spatial::{Region, SpatialInstance};
///
/// // P and Q share exactly one boundary edge.
/// let instance = SpatialInstance::from_regions([
///     ("P", Region::rectangle(0, 0, 100, 100)),
///     ("Q", Region::rectangle(100, 0, 200, 100)),
/// ]);
/// let sentence = boundary_only_fo_sentence(instance.schema(), 0, 1);
/// assert!(sentence.holds(&topo_invariant::top(&instance).to_structure()));
/// ```
pub fn boundary_only_fo_sentence(schema: &Schema, a: usize, b: usize) -> Formula {
    let ra = region_relation(schema, a);
    let rb = region_relation(schema, b);
    Formula::Forall(
        0,
        Box::new(
            Formula::And(vec![
                Formula::atom(&ra, vec![Term::Var(0)]),
                Formula::atom(&rb, vec![Term::Var(0)]),
            ])
            .implies(Formula::Or(vec![
                Formula::atom("Vertex", vec![Term::Var(0)]),
                Formula::atom("Edge", vec![Term::Var(0)]),
            ])),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant_side::evaluate_on_invariant;
    use topo_invariant::top;
    use topo_relational::Semantics;
    use topo_spatial::{Region, SpatialInstance};

    fn instance() -> SpatialInstance {
        SpatialInstance::from_regions([
            ("P", Region::rectangle(0, 0, 100, 100)),
            ("Q", Region::rectangle(20, 20, 80, 80)),
            ("R", Region::rectangle(100, 0, 200, 100)),
        ])
    }

    fn run(program: &Program, structure: &topo_relational::Structure) -> bool {
        let result = program.run(structure, Semantics::Stratified, usize::MAX).unwrap();
        result.relation(&program.output).map(|r| !r.is_empty()).unwrap_or(false)
    }

    #[test]
    fn datalog_programs_agree_with_direct_algorithms() {
        let instance = instance();
        let invariant = top(&instance);
        let structure = program_structure(&invariant);
        let queries = [
            TopologicalQuery::Intersects(0, 1),
            TopologicalQuery::Intersects(1, 2),
            TopologicalQuery::Disjoint(1, 2),
            TopologicalQuery::Disjoint(0, 1),
            TopologicalQuery::Contains(0, 1),
            TopologicalQuery::Contains(1, 0),
            TopologicalQuery::IsConnected(0),
            TopologicalQuery::HasHole(0),
        ];
        for query in queries {
            let program = datalog_program(&query, instance.schema()).expect("program available");
            let direct = evaluate_on_invariant(&query, &invariant);
            assert_eq!(run(&program, &structure), direct, "disagreement on {query:?}");
            // The goal-directed path answers the same goal identically.
            assert_eq!(
                program.run_goal_boolean(&structure, Semantics::Stratified),
                direct,
                "goal-directed disagreement on {query:?}"
            );
        }
    }

    #[test]
    fn linear_and_quadratic_connectivity_agree() {
        // Connected, disconnected and empty regions, cross-checked against
        // the direct geometric evaluation and the invariant-side fast path.
        let mut split = Region::rectangle(0, 0, 40, 40);
        split.rings.extend(Region::rectangle(60, 0, 100, 40).rings);
        let cases = [
            SpatialInstance::from_regions([("a", Region::rectangle(0, 0, 50, 50))]),
            SpatialInstance::from_regions([("a", split)]),
            instance(),
        ];
        for spatial in &cases {
            let invariant = top(spatial);
            let prepared = program_structure(&invariant);
            let bare = invariant.to_structure();
            let query = TopologicalQuery::IsConnected(0);
            let direct = crate::spatial_side::evaluate_direct(&query, spatial);
            let fast = evaluate_on_invariant(&query, &invariant);
            let linear = linear_connectivity_program(spatial.schema(), 0);
            let quadratic = quadratic_connectivity_program(spatial.schema(), 0);
            assert_eq!(fast, direct);
            assert_eq!(run(&linear, &prepared), direct);
            assert_eq!(run(&quadratic, &bare), direct);
            assert_eq!(linear.run_goal_boolean(&prepared, Semantics::Stratified), direct);
            assert_eq!(quadratic.run_goal_boolean(&bare, Semantics::Stratified), direct);
        }
    }

    #[test]
    fn counting_program_detects_parity() {
        let schema = Schema::from_names(["islands"]);
        for count in [2usize, 3, 4, 5] {
            let instance = topo_datagen::scattered_islands(count);
            let invariant = top(&instance);
            let mut structure = invariant.to_structure();
            structure.add_numeric_relations();
            let program = even_closed_curves_program(&schema, 0);
            assert_eq!(run(&program, &structure), count % 2 == 0, "count = {count}");
        }
    }

    #[test]
    fn fo_sentence_matches_query() {
        let instance = instance();
        let invariant = top(&instance);
        let structure = invariant.to_structure();
        // P and R share only a boundary edge; P and Q overlap on interiors.
        let yes = boundary_only_fo_sentence(instance.schema(), 0, 2);
        let no = boundary_only_fo_sentence(instance.schema(), 0, 1);
        assert!(yes.holds(&structure));
        assert!(!no.holds(&structure));
    }
}
