//! Query evaluation on the topological invariant (strategies (ii)/(iii)).
//!
//! All queries of the library are PTIME topological properties, so by
//! Theorem 3.4 they are expressible in fixpoint+counting over the invariant;
//! this module evaluates them with direct combinatorial algorithms on the
//! invariant structure (the algorithms the logical programs of
//! [`crate::programs`] simulate).

use crate::library::TopologicalQuery;
use std::borrow::Borrow;
use std::collections::HashMap;
use topo_invariant::{CellKind, CodeHash, TopologicalInvariant};
use topo_spatial::RegionId;

/// A cell reference used by the connectivity computations.
type Cell = (CellKind, usize);

/// Evaluates a query of the library on a topological invariant.
pub fn evaluate_on_invariant(query: &TopologicalQuery, invariant: &TopologicalInvariant) -> bool {
    match *query {
        TopologicalQuery::Intersects(a, b) => cells_in_both(invariant, a, b).next().is_some(),
        TopologicalQuery::Disjoint(a, b) => cells_in_both(invariant, a, b).next().is_none(),
        TopologicalQuery::Contains(a, b) => {
            cells_in_region(invariant, b).all(|(kind, id)| invariant.cell_in_region(kind, id, a))
        }
        TopologicalQuery::Equal(a, b) => {
            cells_in_region(invariant, a).all(|(kind, id)| invariant.cell_in_region(kind, id, b))
                && cells_in_region(invariant, b)
                    .all(|(kind, id)| invariant.cell_in_region(kind, id, a))
        }
        TopologicalQuery::BoundaryOnlyIntersection(a, b) => {
            let mut any = false;
            for (kind, id) in cells_in_both(invariant, a, b) {
                any = true;
                if !on_boundary(invariant, kind, id, a) || !on_boundary(invariant, kind, id, b) {
                    return false;
                }
            }
            any
        }
        TopologicalQuery::InteriorsOverlap(a, b) => {
            cells_in_both(invariant, a, b).any(|(kind, id)| {
                !on_boundary(invariant, kind, id, a) && !on_boundary(invariant, kind, id, b)
            })
        }
        TopologicalQuery::IsConnected(a) => component_count(invariant, a) <= 1,
        TopologicalQuery::ComponentCountEven(a) => component_count(invariant, a) % 2 == 0,
        TopologicalQuery::HasHole(a) => has_hole(invariant, a),
    }
}

/// Number of connected components of the point set of a region, computed as
/// the number of connected components of the sub-complex of cells contained
/// in the region (cells are adjacent when incident).
pub fn component_count(invariant: &TopologicalInvariant, region: RegionId) -> usize {
    let cells: Vec<Cell> = cells_in_region(invariant, region).collect();
    if cells.is_empty() {
        return 0;
    }
    let index: std::collections::HashMap<Cell, usize> =
        cells.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut parent: Vec<usize> = (0..cells.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut Vec<usize>, a: Cell, b: Cell| {
        if let (Some(&x), Some(&y)) = (index.get(&a), index.get(&b)) {
            let (rx, ry) = (find(parent, x), find(parent, y));
            if rx != ry {
                parent[rx] = ry;
            }
        }
    };
    for e in 0..invariant.edge_count() {
        if !invariant.cell_in_region(CellKind::Edge, e, region) {
            continue;
        }
        if let Some((v, w)) = invariant.edge_endpoints(e) {
            union(&mut parent, (CellKind::Edge, e), (CellKind::Vertex, v));
            union(&mut parent, (CellKind::Edge, e), (CellKind::Vertex, w));
        }
        let (fa, fb) = invariant.edge_faces(e);
        for f in [fa, fb] {
            union(&mut parent, (CellKind::Edge, e), (CellKind::Face, f));
        }
    }
    for f in 0..invariant.face_count() {
        if !invariant.cell_in_region(CellKind::Face, f, region) {
            continue;
        }
        for v in invariant.face_vertices(f) {
            union(&mut parent, (CellKind::Face, f), (CellKind::Vertex, v));
        }
    }
    let mut roots = std::collections::HashSet::new();
    for i in 0..cells.len() {
        roots.insert(find(&mut parent, i));
    }
    roots.len()
}

/// Euler characteristic of a region, computed cell by cell from the invariant
/// using the compactly-supported Euler characteristic (which is additive over
/// the cell partition): a vertex contributes 1, an open interval edge −1, a
/// vertex-free closed curve 0, and an open face `2 − b` where `b` is the
/// number of its boundary components.
pub fn euler_characteristic(invariant: &TopologicalInvariant, region: RegionId) -> i64 {
    let mut chi = 0i64;
    for (kind, id) in cells_in_region(invariant, region) {
        chi += match kind {
            CellKind::Vertex => 1,
            CellKind::Edge => {
                if invariant.edge_endpoints(id).is_some() {
                    -1
                } else {
                    0
                }
            }
            CellKind::Face => 2 - invariant.boundary_components(id).len() as i64,
        };
    }
    chi
}

fn has_hole(invariant: &TopologicalInvariant, region: RegionId) -> bool {
    // A face outside the region's interior is "free" if it can reach the
    // exterior face by crossing only edges not in the region. A hole is a
    // non-interior face that cannot.
    let nf = invariant.face_count();
    let mut reachable = vec![false; nf];
    let mut queue = std::collections::VecDeque::new();
    let exterior = invariant.exterior_face();
    reachable[exterior] = true;
    queue.push_back(exterior);
    while let Some(f) = queue.pop_front() {
        for e in 0..invariant.edge_count() {
            if invariant.cell_in_region(CellKind::Edge, e, region) {
                continue;
            }
            let (fa, fb) = invariant.edge_faces(e);
            let other = if fa == f {
                fb
            } else if fb == f {
                fa
            } else {
                continue;
            };
            if !reachable[other] {
                reachable[other] = true;
                queue.push_back(other);
            }
        }
    }
    (0..nf).any(|f| !invariant.cell_in_region(CellKind::Face, f, region) && !reachable[f])
}

fn on_boundary(
    invariant: &TopologicalInvariant,
    kind: CellKind,
    id: usize,
    region: RegionId,
) -> bool {
    match kind {
        CellKind::Vertex => invariant.vertex_boundary_regions(id).contains(region),
        CellKind::Edge => invariant.edge_boundary_regions(id).contains(region),
        CellKind::Face => false,
    }
}

fn cells_in_region(
    invariant: &TopologicalInvariant,
    region: RegionId,
) -> impl Iterator<Item = Cell> + '_ {
    let vertices = (0..invariant.vertex_count())
        .filter(move |&v| invariant.cell_in_region(CellKind::Vertex, v, region))
        .map(|v| (CellKind::Vertex, v));
    let edges = (0..invariant.edge_count())
        .filter(move |&e| invariant.cell_in_region(CellKind::Edge, e, region))
        .map(|e| (CellKind::Edge, e));
    let faces = (0..invariant.face_count())
        .filter(move |&f| invariant.cell_in_region(CellKind::Face, f, region))
        .map(|f| (CellKind::Face, f));
    vertices.chain(edges).chain(faces)
}

fn cells_in_both(
    invariant: &TopologicalInvariant,
    a: RegionId,
    b: RegionId,
) -> impl Iterator<Item = Cell> + '_ {
    cells_in_region(invariant, a).filter(move |&(kind, id)| invariant.cell_in_region(kind, id, b))
}

/// Partitions invariants into isomorphism classes via their cached canonical
/// codes: candidate classes are found by [`CodeHash`] and confirmed by exact
/// code comparison, so classifying `n` invariants costs `n` canonicalisations
/// (each cached on its invariant) plus hash-map lookups — no pairwise
/// backtracking search.
///
/// Returns the classes as index lists into `invariants`, in order of first
/// appearance. Every query answer is a topological property (Theorem 2.1), so
/// members of one class answer every [`TopologicalQuery`] identically; this
/// is the primitive that makes consistency-style query answering over many
/// candidate instances tractable.
///
/// Generic over any owned-or-borrowed invariant holder (`&T`, `Arc<T>`,
/// `Box<T>`, `T` itself), so callers that keep shared `Arc`s — like
/// `topo-store` — classify without cloning a single invariant.
pub fn isomorphism_classes<I: Borrow<TopologicalInvariant>>(invariants: &[I]) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut by_hash: HashMap<CodeHash, Vec<usize>> = HashMap::new();
    for (i, invariant) in invariants.iter().enumerate() {
        let invariant = invariant.borrow();
        let candidates = by_hash.entry(invariant.code_hash()).or_default();
        let class = candidates.iter().copied().find(|&c| {
            invariants[classes[c][0]].borrow().canonical_code() == invariant.canonical_code()
        });
        match class {
            Some(c) => classes[c].push(i),
            None => {
                candidates.push(classes.len());
                classes.push(vec![i]);
            }
        }
    }
    classes
}

/// Evaluates a query on an invariant through the goal-directed Datalog path:
/// when the query library provides a fixpoint program
/// ([`crate::programs::datalog_program`]), the program's annotated goal is
/// answered by [`topo_relational::Program::run_goal`] on the prepared export
/// ([`crate::programs::program_structure`]); the four queries without
/// programs (equality, the boundary-intersection pair, component parity)
/// fall back to the direct combinatorial algorithms. Bit-for-bit equal to
/// [`evaluate_on_invariant`] on every query (`tests/demand_equivalence.rs`
/// and the store equivalence suites pin this), so callers can switch paths
/// freely.
pub fn evaluate_goal_directed(query: &TopologicalQuery, invariant: &TopologicalInvariant) -> bool {
    match crate::programs::datalog_program(query, invariant.schema()) {
        Some(program) => {
            let structure = crate::programs::program_structure(invariant);
            program.run_goal_boolean(&structure, topo_relational::Semantics::Stratified)
        }
        None => evaluate_on_invariant(query, invariant),
    }
}

/// Evaluates a query on many invariants, once per isomorphism class: the
/// cached canonical codes group the invariants, the query runs on one
/// representative per class — through the goal-directed Datalog path
/// ([`evaluate_goal_directed`]) — and the answer is shared across the class.
/// Accepts the same owned-or-borrowed holders as [`isomorphism_classes`].
pub fn evaluate_on_classes<I: Borrow<TopologicalInvariant>>(
    query: &TopologicalQuery,
    invariants: &[I],
) -> Vec<bool> {
    let mut answers = vec![false; invariants.len()];
    for class in isomorphism_classes(invariants) {
        let answer = evaluate_goal_directed(query, invariants[class[0]].borrow());
        for i in class {
            answers[i] = answer;
        }
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_invariant::top;
    use topo_spatial::{Region, SpatialInstance};

    fn instance() -> SpatialInstance {
        // P: big square; Q: square inside P; R: square sharing a boundary edge
        // with P from outside; S: two disjoint squares far away.
        let mut s_region = Region::rectangle(1000, 0, 1100, 100);
        s_region.add_ring(vec![
            topo_geometry::Point::from_ints(1200, 0),
            topo_geometry::Point::from_ints(1300, 0),
            topo_geometry::Point::from_ints(1300, 100),
            topo_geometry::Point::from_ints(1200, 100),
        ]);
        SpatialInstance::from_regions([
            ("P", Region::rectangle(0, 0, 100, 100)),
            ("Q", Region::rectangle(20, 20, 80, 80)),
            ("R", Region::rectangle(100, 0, 200, 100)),
            ("S", s_region),
        ])
    }

    #[test]
    fn first_order_queries() {
        let invariant = top(&instance());
        assert!(evaluate_on_invariant(&TopologicalQuery::Intersects(0, 1), &invariant));
        assert!(evaluate_on_invariant(&TopologicalQuery::Contains(0, 1), &invariant));
        assert!(!evaluate_on_invariant(&TopologicalQuery::Contains(1, 0), &invariant));
        assert!(evaluate_on_invariant(&TopologicalQuery::Disjoint(1, 2), &invariant));
        assert!(evaluate_on_invariant(
            &TopologicalQuery::BoundaryOnlyIntersection(0, 2),
            &invariant
        ));
        assert!(!evaluate_on_invariant(
            &TopologicalQuery::BoundaryOnlyIntersection(0, 1),
            &invariant
        ));
        assert!(evaluate_on_invariant(&TopologicalQuery::InteriorsOverlap(0, 1), &invariant));
        assert!(!evaluate_on_invariant(&TopologicalQuery::InteriorsOverlap(0, 2), &invariant));
        assert!(!evaluate_on_invariant(&TopologicalQuery::Equal(0, 1), &invariant));
        assert!(evaluate_on_invariant(&TopologicalQuery::Equal(0, 0), &invariant));
    }

    #[test]
    fn connectivity_queries() {
        let invariant = top(&instance());
        assert!(evaluate_on_invariant(&TopologicalQuery::IsConnected(0), &invariant));
        assert!(!evaluate_on_invariant(&TopologicalQuery::IsConnected(3), &invariant));
        assert_eq!(component_count(&invariant, 3), 2);
        assert!(evaluate_on_invariant(&TopologicalQuery::ComponentCountEven(3), &invariant));
        assert!(!evaluate_on_invariant(&TopologicalQuery::ComponentCountEven(0), &invariant));
    }

    #[test]
    fn hole_detection() {
        let mut annulus = Region::rectangle(0, 0, 100, 100);
        annulus.add_ring(vec![
            topo_geometry::Point::from_ints(30, 30),
            topo_geometry::Point::from_ints(70, 30),
            topo_geometry::Point::from_ints(70, 70),
            topo_geometry::Point::from_ints(30, 70),
        ]);
        let with_hole = SpatialInstance::from_regions([("A", annulus)]);
        let without_hole =
            SpatialInstance::from_regions([("A", Region::rectangle(0, 0, 100, 100))]);
        assert!(evaluate_on_invariant(&TopologicalQuery::HasHole(0), &top(&with_hole)));
        assert!(!evaluate_on_invariant(&TopologicalQuery::HasHole(0), &top(&without_hole)));
    }

    #[test]
    fn isomorphism_classes_group_by_cached_codes() {
        use topo_spatial::transform::AffineMap;
        // Three topologies: a disk (twice, one transformed), an annulus
        // (twice), and two disjoint squares (once).
        let disk = SpatialInstance::from_regions([("A", Region::rectangle(0, 0, 100, 100))]);
        let disk2 = AffineMap::translation(1000, -300).apply_instance(&disk);
        let mut annulus_region = Region::rectangle(0, 0, 100, 100);
        annulus_region.add_ring(vec![
            topo_geometry::Point::from_ints(30, 30),
            topo_geometry::Point::from_ints(70, 30),
            topo_geometry::Point::from_ints(70, 70),
            topo_geometry::Point::from_ints(30, 70),
        ]);
        let annulus = SpatialInstance::from_regions([("A", annulus_region)]);
        let annulus2 = AffineMap::rotation90().apply_instance(&annulus);
        let mut two_region = Region::rectangle(0, 0, 10, 10);
        two_region.add_ring(vec![
            topo_geometry::Point::from_ints(20, 0),
            topo_geometry::Point::from_ints(30, 0),
            topo_geometry::Point::from_ints(30, 10),
            topo_geometry::Point::from_ints(20, 10),
        ]);
        let two = SpatialInstance::from_regions([("A", two_region)]);
        let invariants: Vec<_> = [&disk, &annulus, &disk2, &two, &annulus2].map(top).to_vec();
        let refs: Vec<&TopologicalInvariant> = invariants.iter().collect();
        let classes = isomorphism_classes(&refs);
        assert_eq!(classes, vec![vec![0, 2], vec![1, 4], vec![3]]);
        // The class partition agrees with the generic relational isomorphism
        // (run through the code-keyed fast path and the backtracking search).
        for i in 0..refs.len() {
            for j in 0..refs.len() {
                let same_class = classes.iter().any(|c| c.contains(&i) && c.contains(&j));
                let (si, sj) = (refs[i].to_structure(), refs[j].to_structure());
                assert_eq!(
                    same_class,
                    topo_relational::isomorphic_with_keys(
                        &si,
                        &sj,
                        Some(refs[i].canonical_code()),
                        Some(refs[j].canonical_code()),
                    )
                );
                assert_eq!(same_class, topo_relational::isomorphic(&si, &sj));
            }
        }
        // Per-class evaluation matches per-invariant evaluation.
        let query = TopologicalQuery::HasHole(0);
        let per_class = evaluate_on_classes(&query, &refs);
        let per_invariant: Vec<bool> =
            refs.iter().map(|inv| evaluate_on_invariant(&query, inv)).collect();
        assert_eq!(per_class, per_invariant);
        assert_eq!(per_class, vec![false, true, false, false, true]);
    }

    #[test]
    fn euler_characteristic_values() {
        // A disk has Euler characteristic 1; two disjoint disks have 2; an
        // annulus has 0.
        let disk = SpatialInstance::from_regions([("A", Region::rectangle(0, 0, 10, 10))]);
        assert_eq!(euler_characteristic(&top(&disk), 0), 1);
        let mut two = Region::rectangle(0, 0, 10, 10);
        two.add_ring(vec![
            topo_geometry::Point::from_ints(20, 0),
            topo_geometry::Point::from_ints(30, 0),
            topo_geometry::Point::from_ints(30, 10),
            topo_geometry::Point::from_ints(20, 10),
        ]);
        assert_eq!(euler_characteristic(&top(&SpatialInstance::from_regions([("A", two)])), 0), 2);
        let mut annulus = Region::rectangle(0, 0, 100, 100);
        annulus.add_ring(vec![
            topo_geometry::Point::from_ints(30, 30),
            topo_geometry::Point::from_ints(70, 30),
            topo_geometry::Point::from_ints(70, 70),
            topo_geometry::Point::from_ints(30, 70),
        ]);
        assert_eq!(
            euler_characteristic(&top(&SpatialInstance::from_regions([("A", annulus)])), 0),
            0
        );
    }
}
